//! Offline stand-in for the subset of `parking_lot` this workspace
//! uses: `Mutex` (guard returned without `Result`), `Condvar` with
//! `wait(&mut guard)` / `wait_for`, and `RwLock`.
//!
//! Backed by `std::sync`; poisoning is swallowed (parking_lot has no
//! poisoning), which matches how the runtime uses these types: a
//! panicking goroutine must not wedge the scheduler lock.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds an `Option` internally so a
/// [`Condvar`] can temporarily take ownership during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during condvar wait")
    }
}

/// Result of a timed wait (subset of `parking_lot::WaitTimeoutResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait time out (as opposed to being notified)?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable (subset of `parking_lot::Condvar`).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Reader–writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        t.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
