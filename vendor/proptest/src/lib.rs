//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!`/`prop_assert*`/`prop_oneof!` macros, `Strategy` with
//! `prop_map`/`prop_flat_map`, tuple and range strategies, a mini
//! regex string strategy, `any`, `Just`, `collection::vec`,
//! `sample::select`, and `ProptestConfig`.
//!
//! No shrinking: a failing case panics with its assertion message.
//! Generation is fully deterministic — each test's RNG is seeded from
//! an FNV-1a hash of the test name, so failures reproduce exactly.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore};

    /// The generation half of proptest's `Strategy` (no shrinking).
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform produced values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each produced value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation facade used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut SmallRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut SmallRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut SmallRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from the macro's boxed arms.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    /// `&str` strategies interpret the string as a mini regex (char
    /// classes, `{n}`/`{m,n}` repetition, escapes, literals).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    /// One parsed regex atom: the characters it may produce.
    enum Atom {
        Class(Vec<(char, char)>),
        Literal(char),
    }

    fn generate_from_pattern(pattern: &str, rng: &mut SmallRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((chars[i], chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((chars[i], chars[i]));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated char class in {pattern:?}");
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "trailing backslash in {pattern:?}");
                    let c = chars[i + 1];
                    i += 2;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional {n} / {m,n} repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("bad repetition"),
                        n.parse::<usize>().expect("bad repetition"),
                    ),
                    None => {
                        let n = spec.parse::<usize>().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if lo == hi { lo } else { rng.gen_range(lo..hi + 1) };
            for _ in 0..count {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                        let span = b as u32 - a as u32 + 1;
                        let pick = a as u32 + rng.gen_range(0..span);
                        out.push(char::from_u32(pick).expect("bad class range"));
                    }
                }
            }
        }
        out
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Produce an arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for [`Arbitrary`] types; see [`any`].
    pub struct Any<T>(::std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(::std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Uniform choice from a fixed set of values.
    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select(values)`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "cannot select from an empty set");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-`proptest!` settings (subset of the real struct).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections tolerated across a
        /// whole test before giving up (mirrors the real crate's knob).
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65536 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic per-test RNG, seeded from the test's name so runs
    /// reproduce without any persisted state.
    pub fn rng_for_test(test_name: &str) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among heterogeneous strategy expressions.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a proptest case; failure aborts only this case with a
/// message (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Discard the current case and generate a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests (subset of proptest's macro: named-binding
/// `arg in strategy` inputs, optional `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let mut __rejects: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(20);
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest {}: too many rejected cases ({} attempts)",
                    stringify!($name),
                    __attempts,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= __config.max_global_rejects,
                            "proptest {}: exceeded max_global_rejects ({})",
                            stringify!($name),
                            __config.max_global_rejects,
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __passed + 1,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_pattern_shapes() {
        let mut rng = crate::test_runner::rng_for_test("regex_pattern_shapes");
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&"[a-z]{1,8}\\.rs", &mut rng);
            let stem = s.strip_suffix(".rs").expect("suffix");
            assert!((1..=8).contains(&stem.len()), "{s:?}");
            assert!(stem.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn union_and_collections_generate() {
        let mut rng = crate::test_runner::rng_for_test("union_and_collections");
        let strat = prop::collection::vec(
            prop_oneof![Just(1u8), Just(2u8), (5..9u8).prop_map(|x| x)],
            2..6,
        );
        for _ in 0..100 {
            let v = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1 || x == 2 || (5..9).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(x in 0..100u64, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x, x, "copies diverged at {}", x);
            } else {
                prop_assert_eq!(x + 1, x + 1);
            }
        }
    }
}
