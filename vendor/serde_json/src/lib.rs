//! Offline stand-in for the subset of `serde_json` this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], [`Error`].
//!
//! Values flow through the vendored `serde` stub's `Content` tree.
//! Output formatting mirrors real `serde_json`: compact form has no
//! whitespace, pretty form indents with two spaces, floats always
//! carry a decimal point, map keys stringify.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e)
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0)?;
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

// ---- writer ----------------------------------------------------------

fn write_content(
    out: &mut String,
    c: &Content,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            if x.fract() == 0.0 && x.abs() < 1e16 {
                // serde_json always keeps a decimal point on floats.
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a paired \uXXXX.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| Error::new("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::new("invalid codepoint"))?
                            };
                            s.push(ch);
                            continue; // parse_hex4 already advanced pos
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Content::F64).map_err(|_| Error::new("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Content::I64).map_err(|_| Error::new("invalid number"))
        } else {
            text.parse::<u64>().map(Content::U64).map_err(|_| Error::new("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_and_pretty_shapes() {
        let mut m: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2]);
        m.insert("b".into(), vec![]);
        assert_eq!(to_string(&m).unwrap(), r#"{"a":[1,2],"b":[]}"#);
        assert_eq!(
            to_string_pretty(&m).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": []\n}"
        );
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&0.0f64).unwrap(), "0.0");
        assert_eq!(to_string(&12.5f64).unwrap(), "12.5");
        assert_eq!(to_string(&100.0f64).unwrap(), "100.0");
    }

    #[test]
    fn roundtrip_with_escapes() {
        let s = "line\n\"quoted\"\\ tab\t unicode \u{1F600} end".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_nested_structures() {
        let v: Vec<(u64, Option<String>)> = from_str(r#"[[1, "x"], [2, null]]"#).unwrap();
        assert_eq!(v, vec![(1, Some("x".into())), (2, None)]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("7 x").is_err());
    }
}
