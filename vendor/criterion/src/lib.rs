//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion` with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Timing model: a warm-up phase estimates the per-iteration cost, the
//! iteration count per sample is sized so the configured measurement
//! time is split across `sample_size` samples, and the reported numbers
//! are the min/median/max of the per-iteration sample means. Results
//! print to stdout in a criterion-like format and are also appended as
//! JSON lines to `target/goat-bench/<bench>.jsonl` (override the
//! directory with `GOAT_BENCH_DIR`) so runs can be recorded.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Set the total measurement duration per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), config: self.snapshot() };
        f(&mut b);
        report(&id, &b.samples);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let saved = self.snapshot();
        BenchmarkGroup { criterion: self, name: name.into(), saved }
    }

    fn snapshot(&self) -> Config {
        Config {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        }
    }
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Parent settings restored when the group ends, so per-group
    /// builder tweaks stay scoped to the group (as in real criterion).
    saved: Config,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for benchmarks in this group (clamped ≥ 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Set the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Set the warm-up budget for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Run one benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Finish the group (report-only in the stub; kept for API parity).
    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.criterion.sample_size = self.saved.sample_size;
        self.criterion.warm_up_time = self.saved.warm_up_time;
        self.criterion.measurement_time = self.saved.measurement_time;
    }
}

/// Runs the measured closure and collects timing samples.
pub struct Bencher {
    samples: Vec<f64>, // nanoseconds per iteration
    config: Config,
}

impl Bencher {
    /// Measure `routine`, preventing the optimizer from deleting its
    /// result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so all samples together fill the measurement
        // budget.
        let per_sample =
            self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / iters as f64);
        }
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples collected)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = sorted[sorted.len() / 2];
    println!("{id:<40} time: [{} {} {}]", fmt_ns(min), fmt_ns(median), fmt_ns(max));
    write_record(id, min, median, max, samples.len());
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Append a JSON-line record of this measurement under the bench output
/// directory; failures to write are ignored (reporting is best-effort).
fn write_record(id: &str, min: f64, median: f64, max: f64, samples: usize) {
    let dir = std::env::var("GOAT_BENCH_DIR").unwrap_or_else(|_| "target/goat-bench".to_string());
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let bench = std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p).file_stem().map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_string());
    // Strip the `-<hash>` suffix cargo appends to bench executables.
    let bench = match bench.rfind('-') {
        Some(i) if bench[i + 1..].chars().all(|c| c.is_ascii_hexdigit()) => bench[..i].to_string(),
        _ => bench,
    };
    let line = format!(
        "{{\"id\":\"{}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"max_ns\":{max:.1},\"samples\":{samples}}}\n",
        id.replace('\\', "\\\\").replace('"', "\\\""),
    );
    use std::io::Write;
    if let Ok(mut f) =
        std::fs::OpenOptions::new().create(true).append(true).open(format!("{dir}/{bench}.jsonl"))
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Define a benchmark group runner (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_names_prefix() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(6));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(0)));
        g.finish();
    }
}
