//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Instead of the real crate's streaming serializer/deserializer
//! architecture, values convert to and from a [`Content`] tree, and
//! `serde_json` renders that tree as JSON text. The derive macro
//! (`serde_derive`) generates `to_content` / `from_content` impls with
//! the same externally-tagged data model real serde uses, so the JSON
//! shape matches what the real crates would produce:
//!
//! - named struct     -> map of fields in declaration order
//! - newtype struct   -> the inner value, untagged
//! - tuple struct     -> sequence
//! - unit enum variant   -> `"Name"`
//! - data enum variant   -> `{"Name": payload}`
//! - `#[serde(skip)]` field -> omitted on write, defaulted on read

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A parsed/serialized value tree (stand-in for serde's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; insertion order is preserved on output.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrow as a map's entry list, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Render this value as a JSON object key (strings pass through,
    /// integers stringify — mirrors `serde_json` map-key behaviour).
    pub fn into_key(self) -> String {
        match self {
            Content::Str(s) => s,
            Content::U64(n) => n.to_string(),
            Content::I64(n) => n.to_string(),
            Content::Bool(b) => b.to_string(),
            other => panic!("unsupported map key type: {other:?}"),
        }
    }

    /// Parse a JSON object key back into the value it came from.
    pub fn from_key(key: &str) -> Content {
        if let Ok(n) = key.parse::<u64>() {
            return Content::U64(n);
        }
        if let Ok(n) = key.parse::<i64>() {
            return Content::I64(n);
        }
        Content::Str(key.to_string())
    }
}

/// Deserialization error (stand-in for per-format error types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Construct an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// A value that can render itself into a [`Content`] tree.
pub trait Serialize {
    /// Convert to the data-model tree.
    fn to_content(&self) -> Content;
}

/// A value that can rebuild itself from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Convert from the data-model tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Look up `name` in a struct's field map and deserialize it; missing
/// fields deserialize from `Null` so `Option` fields default to `None`.
pub fn de_field<T: Deserialize>(fields: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_content(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
        }
        None => T::from_content(&Content::Null)
            .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
    }
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let n = match c {
                    Content::U64(n) => *n,
                    Content::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(DeError::custom("expected unsigned integer")),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let n: i64 = match c {
                    Content::I64(n) => *n,
                    Content::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    _ => return Err(DeError::custom("expected integer")),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(x) => Ok(*x),
            Content::U64(n) => Ok(*n as f64),
            Content::I64(n) => Ok(*n as f64),
            _ => Err(DeError::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

// ---- generic container impls -----------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            Content::Null => Ok(Vec::new()),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            Content::Null => Ok(BTreeSet::new()),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter().map(|(k, v)| (k.to_content().into_key(), v.to_content())).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(&Content::from_key(k))?, V::from_content(v)?)))
                .collect(),
            Content::Null => Ok(BTreeMap::new()),
            _ => Err(DeError::custom("expected object")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let items = c.as_seq().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(DeError::custom("tuple length mismatch"));
                }
                Ok(($($t::from_content(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let v: Option<u64> = Some(3);
        assert_eq!(Option::<u64>::from_content(&v.to_content()).unwrap(), v);
        let n: Option<u64> = None;
        assert_eq!(Option::<u64>::from_content(&n.to_content()).unwrap(), n);
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(7u64, "x".to_string());
        let c = m.to_content();
        assert_eq!(c, Content::Map(vec![("7".into(), Content::Str("x".into()))]));
        assert_eq!(BTreeMap::<u64, String>::from_content(&c).unwrap(), m);
    }
}
