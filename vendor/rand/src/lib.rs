//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`.
//!
//! The container this repository builds in has no crates.io access, so
//! external dependencies are vendored as minimal API-compatible stubs
//! (see `vendor/README.md`). The generator is xoshiro256** seeded via
//! splitmix64 — high-quality, fully deterministic for a given seed,
//! which is the only property the GoAT runtime relies on.

use std::ops::Range;

/// Core random-number source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, exactly like rand's Bernoulli.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible and determinism is all that matters here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + x * (self.end - self.start)
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use super::SmallRng;
}

/// A small, fast, deterministic generator (xoshiro256**), API-compatible
/// with `rand::rngs::SmallRng` for the operations this workspace uses.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        SmallRng {
            s: [splitmix64(&mut st), splitmix64(&mut st), splitmix64(&mut st), splitmix64(&mut st)],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
