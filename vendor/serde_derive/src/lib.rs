//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde` stub's `Serialize` /
//! `Deserialize` traits (`to_content` / `from_content` over a
//! `Content` tree) using the same externally-tagged data model as real
//! serde, so JSON output matches what the real crates would produce.
//!
//! The parser walks raw `TokenTree`s instead of depending on
//! `syn`/`quote` (unavailable offline). Supported input shapes — the
//! only ones this workspace uses — are non-generic structs (named,
//! tuple, unit) and enums (unit, newtype, tuple, struct variants),
//! plus the `#[serde(skip)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    body: Body,
}

// ---- token-stream parsing --------------------------------------------

/// Consume any leading `#[...]` attributes; report whether one of them
/// was `#[serde(skip)]`.
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (toks.get(*i), toks.get(*i + 1))
    {
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        if attr_is_serde_skip(g.stream()) {
            skip = true;
        }
        *i += 2;
    }
    skip
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consume `pub`, `pub(crate)`, `pub(in ...)` etc.
fn eat_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected {what}, found {other:?}"),
    }
}

/// Parse `{ field: Type, ... }` contents into named fields. Commas
/// nested in `<...>` belong to the type and are skipped by tracking
/// angle-bracket depth; commas inside parens/brackets live in their own
/// `Group` and are invisible at this level.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i);
        eat_vis(&toks, &mut i);
        let name = expect_ident(&toks, &mut i, "field name");
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after field, found {other:?}"),
        }
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Count the fields of a tuple struct/variant `(Type, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut pending = false; // a trailing comma does not start a new field
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => pending = true,
            _ => {
                if pending {
                    count += 1;
                    pending = false;
                }
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        eat_attrs(&toks, &mut i);
        let name = expect_ident(&toks, &mut i, "variant name");
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&toks, &mut i);
    eat_vis(&toks, &mut i);
    let keyword = expect_ident(&toks, &mut i, "`struct` or `enum`");
    let name = expect_ident(&toks, &mut i, "type name");
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (type `{name}`)");
    }
    let body = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!("serde_derive stub: unexpected struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: unexpected enum body {other:?}"),
        },
        kw => panic!("serde_derive stub: cannot derive for `{kw}` items"),
    };
    Input { name, body }
}

// ---- code generation -------------------------------------------------

/// `vec![("a".to_string(), ...to_content(&EXPR)), ...]` for named
/// fields, honouring `#[serde(skip)]`. `access` maps a field name to
/// the expression that borrows it (`&self.a` or a match binding).
fn ser_named_entries(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::from("::std::vec![");
    for f in fields.iter().filter(|f| !f.skip) {
        let _ = write!(
            out,
            "(\"{n}\".to_string(), ::serde::Serialize::to_content({a})),",
            n = f.name,
            a = access(&f.name),
        );
    }
    out.push(']');
    out
}

fn de_named_inits(fields: &[Field], map_var: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            let _ = write!(out, "{}: ::core::default::Default::default(),", f.name);
        } else {
            let _ = write!(out, "{n}: ::serde::de_field({m}, \"{n}\")?,", n = f.name, m = map_var,);
        }
    }
    out
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => format!(
            "::serde::Content::Map({})",
            ser_named_entries(fields, |n| format!("&self.{n}"))
        ),
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let mut items = String::new();
            for idx in 0..*n {
                let _ = write!(items, "::serde::Serialize::to_content(&self.{idx}),");
            }
            format!("::serde::Content::Seq(::std::vec![{items}])")
        }
        Body::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_content(__f0)".to_string()
                        } else {
                            let mut items = String::new();
                            for b in &binds {
                                let _ = write!(items, "::serde::Serialize::to_content({b}),");
                            }
                            format!("::serde::Content::Seq(::std::vec![{items}])")
                        };
                        let _ = write!(
                            arms,
                            "{name}::{vn}({pat}) => ::serde::Content::Map(::std::vec![(\"{vn}\".to_string(), {payload})]),",
                            pat = binds.join(","),
                        );
                    }
                    Fields::Named(fields) => {
                        let pat: Vec<String> = fields
                            .iter()
                            .map(|f| if f.skip { format!("{}: _", f.name) } else { f.name.clone() })
                            .collect();
                        let entries = ser_named_entries(fields, |n| n.to_string());
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {pat} }} => ::serde::Content::Map(::std::vec![(\"{vn}\".to_string(), ::serde::Content::Map({entries}))]),",
                            pat = pat.join(","),
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_content(&self) -> ::serde::Content {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => format!(
            "let __m = __c.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for struct {name}\"))?; \
             ::core::result::Result::Ok({name} {{ {inits} }})",
            inits = de_named_inits(fields, "__m"),
        ),
        Body::Struct(Fields::Tuple(1)) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
        ),
        Body::Struct(Fields::Tuple(n)) => {
            let mut items = String::new();
            for idx in 0..*n {
                let _ = write!(items, "::serde::Deserialize::from_content(&__s[{idx}])?,");
            }
            format!(
                "let __s = __c.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for {name}\"))?; \
                 if __s.len() != {n} {{ return ::core::result::Result::Err(::serde::DeError::custom(\"wrong number of fields for {name}\")); }} \
                 ::core::result::Result::Ok({name}({items}))"
            )
        }
        Body::Struct(Fields::Unit) => {
            format!("::core::result::Result::Ok({name})")
        }
        Body::Enum(variants) => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .collect();
            let data: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();
            let mut arms = String::new();
            if !unit.is_empty() {
                let mut inner = String::new();
                for v in &unit {
                    let _ = write!(
                        inner,
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    );
                }
                let _ = write!(
                    arms,
                    "::serde::Content::Str(__s) => match __s.as_str() {{ {inner} \
                       _ => ::core::result::Result::Err(::serde::DeError::custom(\"unknown variant of {name}\")), }},"
                );
            }
            if !data.is_empty() {
                let mut inner = String::new();
                for v in &data {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => {
                            let _ = write!(
                                inner,
                                "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(__v)?)),"
                            );
                        }
                        Fields::Tuple(n) => {
                            let mut items = String::new();
                            for idx in 0..*n {
                                let _ = write!(
                                    items,
                                    "::serde::Deserialize::from_content(&__s[{idx}])?,"
                                );
                            }
                            let _ = write!(
                                inner,
                                "\"{vn}\" => {{ \
                                   let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for {name}::{vn}\"))?; \
                                   if __s.len() != {n} {{ return ::core::result::Result::Err(::serde::DeError::custom(\"wrong number of fields for {name}::{vn}\")); }} \
                                   ::core::result::Result::Ok({name}::{vn}({items})) \
                                 }},"
                            );
                        }
                        Fields::Named(fields) => {
                            let _ = write!(
                                inner,
                                "\"{vn}\" => {{ \
                                   let __m = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for {name}::{vn}\"))?; \
                                   ::core::result::Result::Ok({name}::{vn} {{ {inits} }}) \
                                 }},",
                                inits = de_named_inits(fields, "__m"),
                            );
                        }
                    }
                }
                let _ = write!(
                    arms,
                    "::serde::Content::Map(__entries) if __entries.len() == 1 => {{ \
                       let (__k, __v) = &__entries[0]; \
                       match __k.as_str() {{ {inner} \
                         _ => ::core::result::Result::Err(::serde::DeError::custom(\"unknown variant of {name}\")), }} \
                     }},"
                );
            }
            format!(
                "match __c {{ {arms} \
                   _ => ::core::result::Result::Err(::serde::DeError::custom(\"expected enum {name}\")), }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_content(__c: &::serde::Content) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("serde_derive stub: generated invalid Deserialize impl")
}
