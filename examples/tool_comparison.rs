//! Tool comparison on one bug: run GoAT and the three baseline dynamic
//! detectors of §IV-A on the same kernel and contrast what each sees.
//!
//! ```text
//! cargo run --release --example tool_comparison [kernel-name]
//! ```

use goat::core::{GoatTool, Program};
use goat::detectors::{BuiltinDetector, Detector, GoleakDetector, LockdlDetector};
use goat::runtime::Config;
use std::sync::Arc;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "moby28462".to_string());
    let kernel = goat::goker::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel {name}; available:");
        for k in goat::goker::all_kernels() {
            eprintln!("  {}", k.name);
        }
        std::process::exit(1);
    });
    println!("kernel {name} [{} / {}]: {}\n", kernel.project, kernel.cause, kernel.description);

    let tools: Vec<Box<dyn Detector>> = vec![
        Box::new(GoatTool::new(0)),
        Box::new(GoatTool::new(2)),
        Box::new(BuiltinDetector::new()),
        Box::new(LockdlDetector::new()),
        Box::new(GoleakDetector::new()),
    ];
    let budget = 300usize;
    for tool in tools {
        let program: goat::detectors::ProgramFn = Arc::new(move || Program::main(kernel));
        let mut found = None;
        for i in 0..budget {
            let v = tool.run_once(Config::new(1 + i as u64), Arc::clone(&program));
            if v.detected {
                found = Some((i + 1, v));
                break;
            }
        }
        match found {
            Some((iter, v)) => println!(
                "{:<10} detected {:<8} after {:>3} execution(s): {}",
                tool.name(),
                v.symptom.code(),
                iter,
                v.detail
            ),
            None => println!("{:<10} nothing detected in {budget} executions", tool.name()),
        }
    }
}
