//! Coverage-guided testing: measure how thoroughly a campaign explored
//! the schedule space of a concurrent program (paper §III-C), including
//! the global goroutine tree that accumulates per-goroutine coverage
//! vectors across runs.
//!
//! ```text
//! cargo run --example coverage_analysis
//! ```

use goat::core::{coverage_table, uncovered_report, FnProgram, Goat, GoatConfig};
use goat::runtime::{go_named, Chan, Select, WaitGroup};
use std::sync::Arc;

fn main() {
    // A correct fan-in pipeline: workers produce, a merger selects over
    // two lanes, a consumer drains. Correct — but how much of its
    // concurrency behaviour does a test campaign actually exercise?
    let program = Arc::new(FnProgram::new("fan-in-pipeline", || {
        let lane_a: Chan<u64> = Chan::new(1);
        let lane_b: Chan<u64> = Chan::new(1);
        let merged: Chan<u64> = Chan::new(2);
        let wg = WaitGroup::new();
        for (i, lane) in [lane_a.clone(), lane_b.clone()].into_iter().enumerate() {
            wg.add(1);
            let wg = wg.clone();
            go_named(&format!("producer{i}"), move || {
                lane.send(i as u64 * 10);
                lane.send(i as u64 * 10 + 1);
                wg.done();
            });
        }
        {
            let (lane_a, lane_b, merged) = (lane_a.clone(), lane_b.clone(), merged.clone());
            go_named("merger", move || {
                let mut got = 0;
                while got < 4 {
                    let v = Select::new().recv(&lane_a, |v| v).recv(&lane_b, |v| v).run();
                    if let Some(v) = v {
                        merged.send(v);
                        got += 1;
                    }
                }
                merged.close();
            });
        }
        let mut sum = 0;
        for v in merged.range() {
            sum += v;
        }
        assert_eq!(sum, 22);
        wg.wait();
    }));

    for (label, iters, d) in [("2 runs, D0", 2, 0), ("25 runs, D2", 25, 2)] {
        let goat = Goat::new(
            GoatConfig::default().with_iterations(iters).with_delay_bound(d).keep_running(),
        );
        let result = goat.test(Arc::clone(&program) as _);
        println!(
            "=== {label}: coverage {:.1}% ({} of {} requirements) ===",
            result.coverage_percent(),
            result.covered.len(),
            result.universe.len()
        );
    }

    // Full detail for the larger campaign.
    let goat =
        Goat::new(GoatConfig::default().with_iterations(25).with_delay_bound(2).keep_running());
    let result = goat.test(program);
    println!("\n{}", coverage_table(&result.universe, &result.covered));
    println!("--- uncovered requirements (actions for the tester) ---");
    println!("{}", uncovered_report(&result.universe, &result.covered));
    println!("--- global goroutine tree (instances accumulated across runs) ---");
    println!("{}", result.global_tree.render());
    assert!(!result.detected(), "the pipeline is correct: no bug should be reported");
}
