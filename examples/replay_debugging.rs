//! Replay debugging: find a schedule-dependent bug once, then
//! re-trigger it deterministically as many times as you like from the
//! recorded schedule — even though the bug only manifests on a rare
//! interleaving (the paper's "replaying the program's ECT" mode and the
//! §VI future-work "full control over the scheduler", combined).
//!
//! ```text
//! cargo run --release --example replay_debugging
//! ```

use goat::core::{interleaving_lanes, Goat, GoatConfig, GoatVerdict, Program};
use std::sync::Arc;

struct KernelProgram(&'static goat::goker::BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

fn main() {
    let kernel = goat::goker::by_name("moby28462").expect("kernel");
    let program: Arc<dyn Program> = Arc::new(KernelProgram(kernel));

    // Phase 1: hunt. The bug needs an unlucky preemption; iterate until
    // it manifests.
    let goat = Goat::new(GoatConfig::default().with_iterations(200));
    let result = goat.test(Arc::clone(&program));
    let Some(iter) = result.first_detection else {
        println!("bug did not manifest; raise the iteration budget");
        return;
    };
    let bug = result.bug.clone().expect("verdict");
    let schedule = result.bug_schedule.clone().expect("schedule recorded");
    println!(
        "hunt: exposed {bug} on iteration {iter}; recorded {} scheduling decisions\n",
        schedule.len()
    );

    // Phase 2: replay. The recorded decision log forces the exact same
    // interleaving — no luck required, run after run.
    for attempt in 1..=3 {
        let (verdict, run) = Goat::replay(Arc::clone(&program), schedule.clone());
        assert!(!run.replay_diverged, "the same program must follow its log");
        assert_eq!(verdict, bug, "replay must reproduce the same bug");
        println!("replay #{attempt}: reproduced {verdict} deterministically");
    }

    // Phase 3: inspect. Swim-lane view of the fatal interleaving.
    let (_, run) = Goat::replay(program, schedule);
    let ect = run.ect.expect("traced");
    println!("\n--- fatal interleaving (swim lanes, last 25 events) ---");
    println!("{}", interleaving_lanes(&ect, 25));
    if let GoatVerdict::PartialDeadlock { leaked } = bug {
        println!("leaked goroutines: {leaked:?}");
    }
}
