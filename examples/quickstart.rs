//! Quickstart: write a Go-style concurrent program, let GoAT hunt the
//! blocking bug, and read the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use goat::core::{bug_report, FnProgram, Goat, GoatConfig};
use goat::runtime::{go_named, gosched, Chan, Mutex};
use std::sync::Arc;

fn main() {
    // A small service with a classic mixed deadlock: the worker holds
    // the state mutex while performing a rendezvous send; the shutdown
    // path needs the same mutex before it drains the channel.
    let program = Arc::new(FnProgram::new("quickstart-service", || {
        let state = Mutex::new();
        let updates: Chan<u64> = Chan::new(0);
        {
            let (state, updates) = (state.clone(), updates.clone());
            go_named("worker", move || {
                state.lock();
                updates.send(42); // blocks while holding the lock
                state.unlock();
            });
        }
        {
            let (state, updates) = (state.clone(), updates.clone());
            go_named("shutdown", move || {
                state.lock(); // blocked by the worker forever
                let _ = updates.recv();
                state.unlock();
            });
        }
        gosched(); // main gives the goroutines a chance, then exits
    }));

    // GoAT: iterate instrumented executions until the bug is exposed.
    let goat = Goat::new(GoatConfig::default().with_iterations(50).with_delay_bound(1));
    let result = goat.test(program);

    match (&result.bug, &result.bug_ect) {
        (Some(verdict), Some(ect)) => {
            println!(
                "bug exposed on iteration {} of {} (coverage reached {:.1}%)\n",
                result.first_detection.expect("detected"),
                result.records.len(),
                result.coverage_percent()
            );
            println!("{}", bug_report("quickstart-service", verdict, ect));
        }
        _ => println!("no bug detected — try more iterations or a different delay bound"),
    }
}
