//! Schedule-space exploration: how bounded yield injection accelerates
//! rare-bug exposure (paper §II-C / §IV-A).
//!
//! Runs GOAT with delay bounds D ∈ {0..4} on two of the benchmark's
//! rare kernels and reports the iterations needed to expose each bug.
//!
//! ```text
//! cargo run --release --example schedule_exploration
//! ```

use goat::core::{Goat, GoatConfig, Program};
use std::sync::Arc;

struct KernelProgram(&'static goat::goker::BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

fn main() {
    // moby33781: needs a narrow native preemption window.
    // kubernetes6632: needs two coinciding preemptions — essentially
    // unreachable natively, found only via injected yields.
    for name in ["moby33781", "kubernetes6632"] {
        let kernel = goat::goker::by_name(name).expect("benchmark kernel");
        println!("=== {name}: {} ===", kernel.description);
        for d in 0..=4u32 {
            let goat = Goat::new(
                GoatConfig::default().with_delay_bound(d).with_iterations(600).with_seed0(1),
            );
            let result = goat.test(Arc::new(KernelProgram(kernel)));
            match result.first_detection {
                Some(iter) => {
                    let yields: u32 = result.records.last().map(|r| r.yields).unwrap_or(0);
                    println!(
                        "  D{d}: exposed after {iter:>4} iterations \
                         ({yields} yields injected in the buggy run)"
                    );
                }
                None => println!("  D{d}: not exposed within 600 iterations"),
            }
        }
        println!();
    }
    println!(
        "Shape to observe (paper): D ≥ 1 exposes the bugs orders of magnitude \
         faster than native D0, and fewer than three yields suffice — but \
         larger D is not monotonically better."
    );
}
