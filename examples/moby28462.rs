//! The paper's listing 1 — the Docker `moby/moby#28462` leak — as a
//! standalone program, analysed end to end:
//!
//! 1. the static scanner builds the CU model `M` from *this very file*;
//! 2. GoAT iterates executions until the leak manifests;
//! 3. the report shows the goroutine tree (paper figure 3) and the
//!    executed interleaving.
//!
//! ```text
//! cargo run --example moby28462
//! ```

use goat::core::{bug_report, coverage_table, FnProgram, Goat, GoatConfig};
use goat::runtime::{go_named, time, Chan, Mutex, Select};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Listing 1, simplified version of bug moby28462.
fn container_monitor() {
    let mu = Mutex::new(); // Container.Lock
    let status_ch: Chan<u32> = Chan::new(0);
    {
        let (mu, status_ch) = (mu.clone(), status_ch.clone());
        go_named("Monitor", move || loop {
            let got = Select::new()
                .recv(&status_ch, |v| v) // case <-c.ch
                .default(|| None) // default: keep monitoring
                .run();
            if got.is_some() {
                return;
            }
            mu.lock(); // probe container health
            mu.unlock();
        });
    }
    {
        let (mu, status_ch) = (mu.clone(), status_ch.clone());
        go_named("StatusChange", move || {
            mu.lock();
            status_ch.send(1); // send while holding the lock
            mu.unlock();
        });
    }
    time::sleep(Duration::from_millis(40)); // main exits regardless
}

fn main() {
    let src = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/moby28462.rs"));
    let program = Arc::new(FnProgram::new("moby28462", container_monitor).with_sources(vec![src]));

    // The static model M: every concurrency usage in this file.
    let model = Goat::static_model(program.as_ref());
    println!("static model M: {} concurrency usages found in this file", model.len());
    for (id, cu) in model.iter() {
        println!("  {id}: {cu}");
    }

    let goat = Goat::new(GoatConfig::default().with_iterations(100));
    let result = goat.test(program);

    println!();
    match (&result.bug, &result.bug_ect) {
        (Some(verdict), Some(ect)) => {
            println!("leak exposed on iteration {}\n", result.first_detection.expect("detected"));
            println!("{}", bug_report("moby28462", verdict, ect));
        }
        _ => println!("bug did not manifest; increase the iteration budget"),
    }

    println!("--- coverage after the campaign ---");
    println!("{}", coverage_table(&result.universe, &result.covered));
}
