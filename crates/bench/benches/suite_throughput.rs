//! Suite-scale throughput: wall-clock of a whole multi-kernel sweep
//! through the suite orchestrator's global work-stealing iteration
//! queue, at jobs∈{1,4}, with the warm-resource path on and off, and
//! with adaptive budget reallocation.
//!
//! Custom harness (not criterion): each sample is a whole suite over a
//! real GoKer kernel subset, and what matters is end-to-end wall-clock
//! — exactly what `-target all -jobs N` pays. Before measuring, the
//! harness asserts per-kernel emit-stream identity between jobs=1 and
//! jobs=4 so the numbers can never come from divergent work. The
//! `campaign_24_iters/streaming_p4_pooled` guard leg re-measures the
//! BENCH_pool.json baseline under this build, pinning that suite-level
//! orchestration did not regress the per-campaign hot path.

use goat_core::{run_suite, Goat, GoatConfig, Program, SuiteConfig};
use std::sync::Arc;

struct KernelProgram(&'static goat_goker::BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

/// A deterministic subset of the benchmark: the first 8 kernels, a mix
/// of immediate detectors and full-budget explorers at D=1.
fn suite_kernels() -> Vec<Arc<dyn Program>> {
    goat_goker::all_kernels()
        .into_iter()
        .take(8)
        .map(|k| Arc::new(KernelProgram(k)) as Arc<dyn Program>)
        .collect()
}

const ITERATIONS: usize = 40;

/// `keep_running` makes every kernel spend its full budget — the
/// steady-state load the work-stealing queue multiplexes; the realloc
/// leg switches to `stop_on_bug` so early detectors actually donate.
fn base_cfg(stop_on_bug: bool) -> GoatConfig {
    let mut cfg =
        GoatConfig::default().with_delay_bound(1).with_iterations(ITERATIONS).with_seed0(7);
    if !stop_on_bug {
        cfg = cfg.keep_running();
    }
    cfg
}

fn emit_stream(base: &GoatConfig, suite: &SuiteConfig, kernels: &[Arc<dyn Program>]) -> String {
    let mut lines = String::new();
    run_suite(base, suite, kernels, &mut |idx, name, r| {
        lines.push_str(&format!(
            "{idx} {name} {:?} {:?} {} {:.3}\n",
            r.first_detection,
            r.quarantined,
            r.records.len(),
            r.coverage_percent()
        ));
    });
    lines
}

fn sample_suite(base: &GoatConfig, suite: &SuiteConfig, kernels: &[Arc<dyn Program>]) -> f64 {
    let t = std::time::Instant::now();
    run_suite(base, suite, kernels, &mut |_, _, _| {});
    t.elapsed().as_nanos() as f64
}

fn stats(mut vals: Vec<f64>) -> (f64, f64, f64) {
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = if vals.len() % 2 == 1 {
        vals[vals.len() / 2]
    } else {
        (vals[vals.len() / 2 - 1] + vals[vals.len() / 2]) / 2.0
    };
    (vals[0], median, *vals.last().expect("nonempty"))
}

fn result_line(id: &str, vals: Vec<f64>) {
    let n = vals.len();
    let (min, median, max) = stats(vals);
    println!(
        "  {{\"id\": \"{id}\", \"min_ns\": {min:.1}, \"median_ns\": {median:.1}, \"max_ns\": {max:.1}, \"samples\": {n}}},"
    );
}

/// The spawn_pool guard leg: suite orchestration must not regress the
/// pre-existing in-process campaign hot path (BENCH_pool.json
/// `streaming_p4_pooled` baseline).
fn streaming_guard() {
    use goat_runtime::{go, WaitGroup};
    let program = Arc::new(goat_core::FnProgram::new("bench", || {
        let wg = WaitGroup::new();
        for _ in 0..4 {
            wg.add(1);
            let wg = wg.clone();
            go(move || wg.done());
        }
        wg.wait();
    }));
    let mut samples = Vec::new();
    for _ in 0..10 {
        let cfg = GoatConfig::default().with_iterations(24).with_parallelism(4).keep_running();
        let t = std::time::Instant::now();
        let r = Goat::new(cfg).test(Arc::clone(&program) as Arc<dyn Program>);
        samples.push(t.elapsed().as_nanos() as f64);
        assert_eq!(r.records.len(), 24);
    }
    result_line("campaign_24_iters/streaming_p4_pooled", samples);
}

fn main() {
    let kernels = suite_kernels();

    // Sanity guard: the per-kernel results the legs below time must be
    // identical work — jobs and warmth may only move wall-clock.
    let keep = base_cfg(false);
    let j1 = emit_stream(&keep, &SuiteConfig::default().with_jobs(1), &kernels);
    for suite in
        [SuiteConfig::default().with_jobs(4), SuiteConfig::default().with_jobs(4).with_warm(false)]
    {
        assert_eq!(j1, emit_stream(&keep, &suite, &kernels), "suite legs diverged");
    }
    let stop = base_cfg(true);
    let r1 = emit_stream(&stop, &SuiteConfig::default().with_jobs(1).with_realloc(true), &kernels);
    assert_eq!(
        r1,
        emit_stream(&stop, &SuiteConfig::default().with_jobs(4).with_realloc(true), &kernels),
        "realloc legs diverged"
    );

    println!(
        "suite_throughput bench: {} kernels x {ITERATIONS} iterations (D=1), host cores: {}",
        kernels.len(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    println!("\"results\": [");
    streaming_guard();

    let legs: [(&str, GoatConfig, SuiteConfig); 5] = [
        ("jobs1_warm", base_cfg(false), SuiteConfig::default().with_jobs(1)),
        ("jobs4_warm", base_cfg(false), SuiteConfig::default().with_jobs(4)),
        ("jobs4_cold", base_cfg(false), SuiteConfig::default().with_jobs(4).with_warm(false)),
        ("jobs1_realloc", base_cfg(true), SuiteConfig::default().with_jobs(1).with_realloc(true)),
        ("jobs4_realloc", base_cfg(true), SuiteConfig::default().with_jobs(4).with_realloc(true)),
    ];
    for (name, base, suite) in &legs {
        // One warm-up suite, then timed samples.
        sample_suite(base, suite, &kernels);
        let samples: Vec<f64> = (0..7).map(|_| sample_suite(base, suite, &kernels)).collect();
        result_line(&format!("suite_8x{ITERATIONS}/{name}"), samples);
    }
    println!("]");
}
