//! Tracing overhead: the same pipeline workload with ECT recording on
//! vs off, and with yield perturbation enabled — quantifying what GoAT's
//! "whole-program dynamic tracing" costs on this runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use goat_runtime::{go, Chan, Config, Mutex, Runtime, WaitGroup};
use std::time::Duration;

/// A busy little pipeline: 4 producers → shared queue → 2 consumers,
/// with a mutex-protected tally. ~1.5k traced events per run.
fn pipeline() {
    let queue: Chan<u64> = Chan::new(8);
    let tally = Mutex::new();
    let wg = WaitGroup::new();
    for p in 0..4u64 {
        wg.add(1);
        let (queue, wg) = (queue.clone(), wg.clone());
        go(move || {
            for i in 0..50 {
                queue.send(p * 1000 + i);
            }
            wg.done();
        });
    }
    let done: Chan<()> = Chan::new(2);
    for _ in 0..2 {
        let (queue, tally, done) = (queue.clone(), tally.clone(), done.clone());
        go(move || {
            while queue.recv().is_some() {
                tally.lock();
                tally.unlock();
            }
            done.send(());
        });
    }
    wg.wait();
    queue.close();
    done.recv();
    done.recv();
}

fn bench_tracing(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_200_items");
    g.bench_function("trace_off", |b| {
        b.iter(|| {
            let r = Runtime::run(
                Config::new(1).with_native_preempt_prob(0.0).with_trace(false),
                pipeline,
            );
            assert!(r.clean());
        })
    });
    g.bench_function("trace_on", |b| {
        b.iter(|| {
            let r = Runtime::run(
                Config::new(1).with_native_preempt_prob(0.0).with_trace(true),
                pipeline,
            );
            assert!(r.clean());
            assert!(r.ect.unwrap().len() > 500);
        })
    });
    g.bench_function("trace_on_with_yields_d4", |b| {
        b.iter(|| {
            let r = Runtime::run(
                Config::new(1).with_native_preempt_prob(0.0).with_trace(true).with_delay_bound(4),
                pipeline,
            );
            assert!(r.outcome.is_completed());
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tracing
}
criterion_main!(benches);
