//! Benchmarks of the execution hot path: token-handoff latency with the
//! adaptive spin-then-park parker vs. the park-only baseline
//! (`GOAT_SPIN=0`), the end-to-end campaign cost on top of the
//! out-of-lock trace append, and the duplicate-schedule analysis memo.
//!
//! `handoff_256_steps` is a two-goroutine rendezvous ping-pong: every
//! round is two scheduler handoffs with nothing else on the critical
//! path, so the per-step improvement is the parker's futex savings.
//! `campaign_24_iters/streaming_p4_pooled` reproduces the bench id from
//! `BENCH_pool.json` for a before/after end-to-end comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use goat_core::{FnProgram, Goat, GoatConfig, MemoMode};
use goat_runtime::{go, Chan, Config, Runtime, WaitGroup};
use std::sync::Arc;

fn quiet(seed: u64, spin: Option<u32>) -> Config {
    let cfg = Config::new(seed).with_native_preempt_prob(0.0).with_trace(false);
    match spin {
        Some(s) => cfg.with_spin(s),
        None => cfg, // host-adaptive default (GOAT_SPIN)
    }
}

/// Two goroutines rendezvous `rounds` times over unbuffered channels:
/// each round forces two token handoffs, so the run is dominated by
/// parker latency.
fn ping_pong(seed: u64, spin: Option<u32>, rounds: usize) {
    let r = Runtime::run(quiet(seed, spin), move || {
        let a: Chan<u8> = Chan::new(0);
        let b: Chan<u8> = Chan::new(0);
        let (a2, b2) = (a.clone(), b.clone());
        go(move || {
            for _ in 0..rounds {
                a2.recv();
                b2.send(1);
            }
        });
        for _ in 0..rounds {
            a.send(1);
            b.recv();
        }
    });
    assert!(r.clean());
}

fn bench_handoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("handoff_256_steps");
    // The host-adaptive default: GOAT_SPIN, else 100 on multi-core
    // hosts and 0 (park-only) on single-CPU hosts.
    g.bench_function("adaptive_default", |b| b.iter(|| ping_pong(1, None, 256)));
    g.bench_function("spin_100", |b| b.iter(|| ping_pong(1, Some(100), 256)));
    g.bench_function("park_only", |b| b.iter(|| ping_pong(1, Some(0), 256)));
    g.finish();
}

fn campaign_program() -> Arc<FnProgram> {
    Arc::new(FnProgram::new("bench", || {
        let wg = WaitGroup::new();
        for _ in 0..4 {
            wg.add(1);
            let wg = wg.clone();
            go(move || wg.done());
        }
        wg.wait();
    }))
}

fn run_campaign(parallelism: usize, memo: MemoMode) {
    let cfg = GoatConfig::default()
        .with_iterations(24)
        .with_parallelism(parallelism)
        .with_memo(memo)
        .keep_running();
    let r = Goat::new(cfg).test(campaign_program());
    assert_eq!(r.records.len(), 24);
}

/// The same end-to-end campaign as `spawn_pool`'s
/// `campaign_24_iters/streaming_p4_pooled` (its memo_on variant is the
/// default configuration), plus a memo-off leg isolating the analysis
/// memoization from the handoff/tracing gains.
fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_24_iters");
    g.sample_size(10);
    g.bench_function("streaming_p4_pooled", |b| b.iter(|| run_campaign(4, MemoMode::On)));
    g.bench_function("streaming_p4_memo_off", |b| b.iter(|| run_campaign(4, MemoMode::Off)));
    g.bench_function("sequential_pooled", |b| b.iter(|| run_campaign(1, MemoMode::On)));
    g.finish();
}

criterion_group!(benches, bench_handoff, bench_campaign);
criterion_main!(benches);
