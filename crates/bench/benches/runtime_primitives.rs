//! Micro-benchmarks of the Go-style runtime primitives: the cost of one
//! scheduled operation under the single-token scheduler. These quantify
//! the substrate the whole evaluation runs on (and explain the paper's
//! "ease of deployment" angle: tracing is always compiled in; the knob
//! is only whether events are recorded).

use criterion::{criterion_group, criterion_main, Criterion};
use goat_runtime::{go, gosched, Chan, Config, Mutex, Runtime, Select, WaitGroup};
use std::time::Duration;

fn quiet(seed: u64) -> Config {
    Config::new(seed).with_native_preempt_prob(0.0).with_trace(false)
}

fn bench_spawn_join(c: &mut Criterion) {
    c.bench_function("spawn_join_8_goroutines", |b| {
        b.iter(|| {
            let r = Runtime::run(quiet(1), || {
                let wg = WaitGroup::new();
                for _ in 0..8 {
                    wg.add(1);
                    let wg = wg.clone();
                    go(move || wg.done());
                }
                wg.wait();
            });
            assert!(r.clean());
        })
    });
}

fn bench_unbuffered_pingpong(c: &mut Criterion) {
    c.bench_function("unbuffered_pingpong_100", |b| {
        b.iter(|| {
            let r = Runtime::run(quiet(2), || {
                let ping: Chan<u32> = Chan::new(0);
                let pong: Chan<u32> = Chan::new(0);
                let (p1, p2) = (ping.clone(), pong.clone());
                go(move || {
                    for _ in 0..100 {
                        let v = p1.recv().unwrap();
                        p2.send(v + 1);
                    }
                });
                for i in 0..100 {
                    ping.send(i);
                    pong.recv().unwrap();
                }
            });
            assert!(r.clean());
        })
    });
}

fn bench_buffered_throughput(c: &mut Criterion) {
    c.bench_function("buffered_chan_1000_items_cap16", |b| {
        b.iter(|| {
            let r = Runtime::run(quiet(3), || {
                let ch: Chan<u64> = Chan::new(16);
                let tx = ch.clone();
                go(move || {
                    for i in 0..1000 {
                        tx.send(i);
                    }
                    tx.close();
                });
                let mut sum = 0u64;
                for v in ch.range() {
                    sum += v;
                }
                assert_eq!(sum, 499_500);
            });
            assert!(r.clean());
        })
    });
}

fn bench_mutex(c: &mut Criterion) {
    c.bench_function("uncontended_mutex_1000_cycles", |b| {
        b.iter(|| {
            let r = Runtime::run(quiet(4), || {
                let mu = Mutex::new();
                for _ in 0..1000 {
                    mu.lock();
                    mu.unlock();
                }
            });
            assert!(r.clean());
        })
    });
    c.bench_function("contended_mutex_4x100", |b| {
        b.iter(|| {
            let r = Runtime::run(quiet(5), || {
                let mu = Mutex::new();
                let wg = WaitGroup::new();
                for _ in 0..4 {
                    wg.add(1);
                    let (mu, wg) = (mu.clone(), wg.clone());
                    go(move || {
                        for _ in 0..100 {
                            mu.lock();
                            mu.unlock();
                        }
                        wg.done();
                    });
                }
                wg.wait();
            });
            assert!(r.clean());
        })
    });
}

fn bench_select(c: &mut Criterion) {
    c.bench_function("select_two_ready_cases_500", |b| {
        b.iter(|| {
            let r = Runtime::run(quiet(6), || {
                let a: Chan<u32> = Chan::new(1);
                let bch: Chan<u32> = Chan::new(1);
                for _ in 0..500 {
                    a.send(1);
                    bch.send(2);
                    let _ = Select::new().recv(&a, |v| v).recv(&bch, |v| v).run();
                    // drain whichever was not taken
                    let _ = a.try_recv();
                    let _ = bch.try_recv();
                }
            });
            assert!(r.clean());
        })
    });
}

fn bench_gosched(c: &mut Criterion) {
    c.bench_function("gosched_1000", |b| {
        b.iter(|| {
            let r = Runtime::run(quiet(7), || {
                for _ in 0..1000 {
                    gosched();
                }
            });
            assert!(r.clean());
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_spawn_join, bench_unbuffered_pingpong, bench_buffered_throughput,
              bench_mutex, bench_select, bench_gosched
}
criterion_main!(benches);
