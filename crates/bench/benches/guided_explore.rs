//! Guided-exploration benchmark: random-perturbation vs coverage-guided
//! campaigns on schedule-dependent GoKer kernels.
//!
//! Two quantities matter and both are printed before the criterion
//! timing legs run (they are deterministic properties of the seed, not
//! wall-clock measurements):
//!
//! * **iterations-to-first-detection** at an equal budget, and
//! * **coverage-at-budget** (final covered requirement count) when the
//!   campaign runs its whole budget.
//!
//! The timing legs then pin the *overhead* of guided mode: arm
//! selection + reward bookkeeping must stay in the noise next to the
//! executions themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use goat_core::{Goat, GoatConfig, Program};
use goat_goker::BugKernel;
use goat_runtime::StrategyKind;
use std::sync::Arc;
use std::time::Duration;

struct KernelProgram(&'static BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

/// The schedule-dependent kernels the quality comparison sweeps: two
/// Uncommon ones (detectable at the base config, measuring overhead)
/// and two Rare ones (needing perturbation the unguided base config
/// doesn't have, measuring the point of guided mode).
const KERNELS: [&str; 4] = ["etcd6708", "cockroach1462", "grpc1460", "moby33781"];
const BUDGET: usize = 60;
const SEED0: u64 = 101;

/// The unguided baseline deliberately runs at D=0: random-perturbation
/// strength is then *zero*, so any detection/coverage the guided leg
/// gains must come from the bandit steering budget into its
/// perturbation and PCT arms.
fn base_config() -> GoatConfig {
    GoatConfig::default()
        .with_iterations(BUDGET)
        .with_seed0(SEED0)
        .with_delay_bound(0)
        .with_parallelism(1)
        .with_strategy(StrategyKind::Native)
        .with_guided(false)
        .with_saturation_window(None)
        .keep_running()
}

/// Deterministic quality sweep, printed once: detection iteration and
/// covered-requirement count for the random baseline vs guided mode.
fn report_quality() {
    eprintln!("guided_explore quality sweep (budget {BUDGET}, seed0 {SEED0}, base D=0):");
    for name in KERNELS {
        let kernel = goat_goker::by_name(name).expect("kernel");
        let random = Goat::new(base_config()).test(Arc::new(KernelProgram(kernel)));
        let guided =
            Goat::new(base_config().with_guided(true)).test(Arc::new(KernelProgram(kernel)));
        eprintln!(
            "  {name}: random first_detection={:?} covered={}  |  guided first_detection={:?} covered={}",
            random.first_detection,
            random.covered.len(),
            guided.first_detection,
            guided.covered.len(),
        );
    }
}

fn bench_campaigns(c: &mut Criterion) {
    report_quality();
    let mut g = c.benchmark_group("guided_explore");
    for name in ["etcd6708", "cockroach1462"] {
        let kernel = goat_goker::by_name(name).expect("kernel");
        g.bench_function(format!("random_{BUDGET}_iters/{name}"), |b| {
            b.iter(|| {
                let mut r = Goat::new(base_config()).test(Arc::new(KernelProgram(kernel)));
                r.recycle_bug_trace();
                r.covered.len()
            })
        });
        g.bench_function(format!("guided_{BUDGET}_iters/{name}"), |b| {
            b.iter(|| {
                let mut r = Goat::new(base_config().with_guided(true))
                    .test(Arc::new(KernelProgram(kernel)));
                r.recycle_bug_trace();
                r.covered.len()
            })
        });
        g.bench_function(format!("guided_saturation_w8/{name}"), |b| {
            b.iter(|| {
                let mut r =
                    Goat::new(base_config().with_guided(true).with_saturation_window(Some(8)))
                        .test(Arc::new(KernelProgram(kernel)));
                r.recycle_bug_trace();
                r.records.len()
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_campaigns
}
criterion_main!(benches);
