//! The analysis data plane, old vs new: legacy multi-pass analysis
//! (separate gtree / coverage / sync-pair walks over the ECT, BTree
//! side tables, `BTreeSet<ReqKey>` coverage) against the fused
//! dense-ID single-pass driver (`EctBuffers::analyze`: one sweep,
//! flat goroutine slot tables, bitset coverage, recycled scratch) —
//! at 1k, 10k and 100k trace events. Plus the coverage-merge
//! micro-comparison: ordered-set union vs bitwise OR.
//!
//! Results are committed in `BENCH_analysis.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use goat_core::coverage::{extract_sync_pairs, reference};
use goat_core::{deadlock_check, EctBuffers};
use goat_model::{CoverageSet, ReqKey, RequirementUniverse};
use goat_runtime::{go, Chan, Config, Mutex, Runtime, WaitGroup};
use goat_trace::{Ect, GTree};
use std::collections::BTreeSet;
use std::time::Duration;

/// A representative mixed workload (channels + mutex + wait-group over
/// several goroutines); `rounds` scales the trace length linearly at
/// roughly 8 events per worker round.
fn trace_of(rounds: u64) -> Ect {
    let r = Runtime::run(Config::new(1).with_native_preempt_prob(0.0), move || {
        let queue: Chan<u64> = Chan::new(4);
        let mu = Mutex::new();
        let wg = WaitGroup::new();
        for _ in 0..6 {
            wg.add(1);
            let (queue, mu, wg) = (queue.clone(), mu.clone(), wg.clone());
            go(move || {
                for i in 0..rounds {
                    queue.send(i);
                    mu.lock();
                    mu.unlock();
                }
                wg.done();
            });
        }
        let rx = queue.clone();
        go(move || while rx.recv().is_some() {});
        wg.wait();
        queue.close();
    });
    r.ect.expect("traced")
}

fn bench_plane(c: &mut Criterion) {
    for (label, rounds, target) in
        [("1k", 20u64, 1_000usize), ("10k", 200, 10_000), ("100k", 2000, 100_000)]
    {
        let ect = trace_of(rounds);
        assert!(
            ect.len() >= target / 2 && ect.len() <= target * 2,
            "{label}: trace has {} events",
            ect.len()
        );
        let mut group = c.benchmark_group(format!("analysis_plane_{label}"));
        if target >= 100_000 {
            group.sample_size(10);
        }
        // The pre-dense-plane per-iteration pipeline as the campaign
        // runner drove it (sync pairs are a baseline-phase extra, not
        // part of the per-iteration merge): separate walks, BTree state,
        // fresh allocations every iteration.
        group.bench_function("multi_pass_btree", |b| {
            b.iter(|| {
                let mut universe = RequirementUniverse::new();
                let cov = reference::extract_coverage(&ect, &mut universe);
                let tree = GTree::from_ect(&ect);
                let verdict = deadlock_check(&tree);
                (cov.covered.len(), verdict)
            })
        });
        // The fused plane, buffers recycled across iterations exactly as
        // the campaign runner drives it.
        group.bench_function("fused_dense", |b| {
            let mut bufs = EctBuffers::new();
            b.iter(|| {
                let mut universe = RequirementUniverse::new();
                let analysis = bufs.analyze(&ect, &mut universe, false);
                let verdict = deadlock_check(&analysis.tree);
                let out = (analysis.coverage.covered.len(), verdict);
                bufs.reclaim(analysis.coverage);
                out
            })
        });
        // Supplementary arms with sync-pair extraction folded in (the
        // baseline-phase shape).
        group.bench_function("multi_pass_btree_with_pairs", |b| {
            b.iter(|| {
                let mut universe = RequirementUniverse::new();
                let cov = reference::extract_coverage(&ect, &mut universe);
                let tree = GTree::from_ect(&ect);
                let pairs = extract_sync_pairs(&ect);
                let verdict = deadlock_check(&tree);
                (cov.covered.len(), pairs.len(), verdict)
            })
        });
        group.bench_function("fused_dense_with_pairs", |b| {
            let mut bufs = EctBuffers::new();
            b.iter(|| {
                let mut universe = RequirementUniverse::new();
                let analysis = bufs.analyze(&ect, &mut universe, true);
                let verdict = deadlock_check(&analysis.tree);
                let out = (
                    analysis.coverage.covered.len(),
                    analysis.sync_pairs.as_ref().map_or(0, |p| p.len()),
                    verdict,
                );
                bufs.reclaim(analysis.coverage);
                out
            })
        });
        group.finish();
    }

    // Campaign-accumulator merge: 100 per-run set merges, ordered-set
    // union vs bitwise OR over the same covered requirements.
    let ect = trace_of(200);
    let mut universe = RequirementUniverse::new();
    let cov = goat_core::extract_coverage(&ect, &mut universe);
    let keys: BTreeSet<ReqKey> = cov.covered.iter().collect();
    assert!(!keys.is_empty());
    let mut group = c.benchmark_group("coverage_merge_x100");
    group.bench_function("btree_union", |b| {
        b.iter(|| {
            let mut acc: BTreeSet<ReqKey> = BTreeSet::new();
            for _ in 0..100 {
                acc.extend(keys.iter().copied());
            }
            acc.len()
        })
    });
    group.bench_function("bitset_or", |b| {
        b.iter(|| {
            let mut acc = CoverageSet::new();
            for _ in 0..100 {
                acc.merge(&cov.covered);
            }
            acc.len()
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_plane
}
criterion_main!(benches);
