//! Benchmarks of the pooled execution engine: goroutine spawn
//! throughput with and without the shared worker-thread pool, and a
//! small campaign under the sequential vs. the streaming parallel
//! executor. These quantify the PR's tentpole claim — removing
//! `pthread_create` from the per-goroutine path and barrier stalls from
//! the campaign loop.

use criterion::{criterion_group, criterion_main, Criterion};
use goat_core::{FnProgram, Goat, GoatConfig};
use goat_runtime::{go, Config, Runtime, WaitGroup};
use std::sync::Arc;

fn quiet(seed: u64, pool: bool) -> Config {
    Config::new(seed).with_native_preempt_prob(0.0).with_trace(false).with_pool(pool)
}

/// One run spawning `n` goroutines that immediately finish: dominated
/// by goroutine creation cost, i.e. by thread checkout vs. creation.
fn spawn_burst(seed: u64, pool: bool, n: usize) {
    let r = Runtime::run(quiet(seed, pool), move || {
        let wg = WaitGroup::new();
        for _ in 0..n {
            wg.add(1);
            let wg = wg.clone();
            go(move || wg.done());
        }
        wg.wait();
    });
    assert!(r.clean());
}

fn bench_spawn_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("spawn_64_goroutines");
    g.bench_function("pooled", |b| b.iter(|| spawn_burst(1, true, 64)));
    g.bench_function("fresh_threads", |b| b.iter(|| spawn_burst(1, false, 64)));
    g.finish();
}

fn campaign_program() -> Arc<FnProgram> {
    Arc::new(FnProgram::new("bench", || {
        let wg = WaitGroup::new();
        for _ in 0..4 {
            wg.add(1);
            let wg = wg.clone();
            go(move || wg.done());
        }
        wg.wait();
    }))
}

fn run_campaign(parallelism: usize, pool: bool) {
    let cfg = GoatConfig::default()
        .with_iterations(24)
        .with_parallelism(parallelism)
        .with_pool(pool)
        .keep_running();
    let r = Goat::new(cfg).test(campaign_program());
    assert_eq!(r.records.len(), 24);
}

fn bench_campaign_executors(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_24_iters");
    g.sample_size(10);
    g.bench_function("sequential_pooled", |b| b.iter(|| run_campaign(1, true)));
    g.bench_function("streaming_p4_pooled", |b| b.iter(|| run_campaign(4, true)));
    g.bench_function("streaming_p4_unpooled", |b| b.iter(|| run_campaign(4, false)));
    g.finish();
}

criterion_group!(benches, bench_spawn_throughput, bench_campaign_executors);
criterion_main!(benches);
