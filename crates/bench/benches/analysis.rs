//! Offline-analysis benchmarks: the cost of turning one ECT into a
//! verdict, a goroutine tree, a coverage set, and a serialized artifact
//! — the per-iteration overhead of GoAT's offline phase (§III-E).

use criterion::{criterion_group, criterion_main, Criterion};
use goat_core::{deadlock_check, extract_coverage};
use goat_model::RequirementUniverse;
use goat_runtime::{go, Chan, Config, Mutex, Runtime, WaitGroup};
use goat_trace::{Ect, GTree};
use std::time::Duration;

/// Record one representative trace (~2k events).
fn sample_trace() -> Ect {
    let r = Runtime::run(Config::new(1).with_native_preempt_prob(0.0), || {
        let queue: Chan<u64> = Chan::new(4);
        let mu = Mutex::new();
        let wg = WaitGroup::new();
        for _ in 0..6 {
            wg.add(1);
            let (queue, mu, wg) = (queue.clone(), mu.clone(), wg.clone());
            go(move || {
                for i in 0..40 {
                    queue.send(i);
                    mu.lock();
                    mu.unlock();
                }
                wg.done();
            });
        }
        let rx = queue.clone();
        go(move || while rx.recv().is_some() {});
        wg.wait();
        queue.close();
    });
    r.ect.expect("traced")
}

fn bench_analysis(c: &mut Criterion) {
    let ect = sample_trace();
    assert!(ect.len() > 1000, "trace too small: {}", ect.len());

    c.bench_function("gtree_from_ect", |b| {
        b.iter(|| {
            let tree = GTree::from_ect(&ect);
            assert!(tree.len() >= 8);
        })
    });
    c.bench_function("deadlock_check", |b| {
        let tree = GTree::from_ect(&ect);
        b.iter(|| deadlock_check(&tree))
    });
    c.bench_function("extract_coverage", |b| {
        b.iter(|| {
            let mut universe = RequirementUniverse::new();
            let cov = extract_coverage(&ect, &mut universe);
            assert!(cov.covered.len() > 5);
        })
    });
    c.bench_function("ect_json_roundtrip", |b| {
        b.iter(|| {
            let json = ect.to_json().expect("serialize");
            let back = Ect::from_json(&json).expect("parse");
            assert_eq!(back.len(), ect.len());
        })
    });
    c.bench_function("well_formed_check", |b| b.iter(|| ect.well_formed().expect("well-formed")));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_analysis
}
criterion_main!(benches);
