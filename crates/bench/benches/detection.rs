//! Detection benchmarks: the cost of one instrumented execution plus
//! offline analysis on representative benchmark kernels, and of a full
//! campaign-until-detection — the quantities behind Table IV's
//! "minimum executions" columns.

use criterion::{criterion_group, criterion_main, Criterion};
use goat_core::{GoatTool, Program};
use goat_detectors::{BuiltinDetector, Detector};
use goat_runtime::Config;
use std::sync::Arc;
use std::time::Duration;

fn bench_single_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_execution_plus_analysis");
    for name in ["moby28462", "etcd7443", "cockroach584"] {
        let kernel = goat_goker::by_name(name).expect("kernel");
        let program: goat_detectors::ProgramFn = Arc::new(move || Program::main(kernel));
        g.bench_function(format!("goat_d0/{name}"), |b| {
            let tool = GoatTool::new(0);
            b.iter(|| tool.run_once(Config::new(1), Arc::clone(&program)))
        });
        g.bench_function(format!("builtin/{name}"), |b| {
            let tool = BuiltinDetector::new();
            b.iter(|| tool.run_once(Config::new(1), Arc::clone(&program)))
        });
    }
    g.finish();
}

fn bench_campaign(c: &mut Criterion) {
    c.bench_function("campaign_until_detection/moby28462_d2", |b| {
        let kernel = goat_goker::by_name("moby28462").expect("kernel");
        let program: goat_detectors::ProgramFn = Arc::new(move || Program::main(kernel));
        let tool = GoatTool::new(2);
        b.iter(|| {
            let mut found = false;
            for i in 0..100u64 {
                let v = tool.run_once(Config::new(1 + i), Arc::clone(&program));
                if v.detected {
                    found = true;
                    break;
                }
            }
            assert!(found, "moby28462 must be detectable within 100 runs at D2");
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_single_run, bench_campaign
}
criterion_main!(benches);
