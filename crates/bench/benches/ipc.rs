//! IPC data-plane overhead: per-run serialize/transport/deserialize cost
//! and bytes-on-wire of the process-isolation channel under each codec —
//! JSON pipes (`GOAT_IPC=json`), binary pipes (`GOAT_IPC=bin`), the
//! shared-memory result ring (`GOAT_IPC_SHM=1`) and batched binary
//! frames (`GOAT_IPC_BATCH`). Campaigns run the real `etcd6708` kernel
//! through real worker processes; the numbers come from the
//! `isolate.ipc_*` metric deltas, so they measure exactly what the
//! orchestrator pays per run, not wall-clock noise around it.
//!
//! Custom harness (not criterion): each sample is a whole campaign, and
//! the statistic of interest is a metric-derived per-run quotient.
//! Needs a built `goat` worker binary; resolves `GOAT_WORKER_CMD`, then
//! `target/{release,debug}/goat`, and prints `SKIP` when neither exists
//! (e.g. `cargo bench` before any `cargo build`).

use goat_core::{Goat, GoatConfig, IpcMode, IsolateMode, Program};
use std::sync::Arc;

struct KernelProgram(&'static goat_goker::BugKernel);

impl Program for KernelProgram {
    fn name(&self) -> &str {
        Program::name(self.0)
    }
    fn main(&self) {
        Program::main(self.0)
    }
}

fn worker_cmd() -> Option<String> {
    if let Ok(c) = std::env::var("GOAT_WORKER_CMD") {
        if !c.is_empty() {
            return Some(c);
        }
    }
    let mut root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    for profile in ["release", "debug"] {
        let cand = root.join("target").join(profile).join("goat");
        if cand.exists() {
            return Some(cand.to_string_lossy().into_owned());
        }
    }
    None
}

#[derive(Clone, Copy)]
struct Leg {
    name: &'static str,
    ipc: IpcMode,
    shm: bool,
    batch: usize,
}

const LEGS: [Leg; 4] = [
    Leg { name: "json", ipc: IpcMode::Json, shm: false, batch: 1 },
    Leg { name: "bin", ipc: IpcMode::Bin, shm: false, batch: 1 },
    Leg { name: "bin+shm", ipc: IpcMode::Bin, shm: true, batch: 1 },
    Leg { name: "bin+shm+batch8", ipc: IpcMode::Bin, shm: true, batch: 8 },
];

fn campaign_cfg(worker: &str, iterations: usize) -> GoatConfig {
    GoatConfig::default()
        .with_delay_bound(1)
        .with_iterations(iterations)
        .with_seed0(11)
        .keep_running()
        .with_isolate(IsolateMode::Proc)
        .with_worker_cmd(worker)
}

/// Metric-delta sample of one campaign: per-run IPC overhead (ser +
/// transport + deser) in ns and bytes on the wire (tx + rx) per run.
struct Sample {
    overhead_ns_per_run: f64,
    bytes_per_run: f64,
}

fn run_leg(worker: &str, leg: Leg, iterations: usize) -> Sample {
    let reg = goat_metrics::global();
    let hists = ["isolate.ipc_ser_ns", "isolate.ipc_transport_ns", "isolate.ipc_deser_ns"];
    let before_ns: u64 = hists.iter().map(|h| reg.histogram(h).snapshot().sum).sum();
    let before_bytes =
        reg.counter("isolate.ipc_bytes_tx").get() + reg.counter("isolate.ipc_bytes_rx").get();
    let runs_before = reg.counter("isolate.runs").get();

    let cfg = campaign_cfg(worker, iterations)
        .with_ipc(leg.ipc)
        .with_ipc_shm(leg.shm)
        .with_ipc_batch(leg.batch);
    let kernel = goat_goker::by_name("etcd6708").expect("kernel");
    let r = Goat::new(cfg).test(Arc::new(KernelProgram(kernel)));
    assert_eq!(r.records.len(), iterations, "campaign ran its full budget");

    let after_ns: u64 = hists.iter().map(|h| reg.histogram(h).snapshot().sum).sum();
    let after_bytes =
        reg.counter("isolate.ipc_bytes_tx").get() + reg.counter("isolate.ipc_bytes_rx").get();
    let runs = (reg.counter("isolate.runs").get() - runs_before).max(1);
    Sample {
        overhead_ns_per_run: (after_ns - before_ns) as f64 / runs as f64,
        bytes_per_run: (after_bytes - before_bytes) as f64 / runs as f64,
    }
}

fn stats(mut vals: Vec<f64>) -> (f64, f64, f64) {
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = if vals.len() % 2 == 1 {
        vals[vals.len() / 2]
    } else {
        (vals[vals.len() / 2 - 1] + vals[vals.len() / 2]) / 2.0
    };
    (vals[0], median, *vals.last().expect("nonempty"))
}

fn result_line(id: &str, vals: Vec<f64>) {
    let n = vals.len();
    let (min, median, max) = stats(vals);
    println!(
        "  {{\"id\": \"{id}\", \"min_ns\": {min:.1}, \"median_ns\": {median:.1}, \"max_ns\": {max:.1}, \"samples\": {n}}},"
    );
}

/// The spawn_pool guard leg: the batching refactor of the sequential and
/// streaming executors must not regress the pre-existing in-process
/// campaign hot path (BENCH_pool.json `streaming_p4_pooled` baseline).
fn streaming_guard() {
    use goat_runtime::{go, WaitGroup};
    let program = Arc::new(goat_core::FnProgram::new("bench", || {
        let wg = WaitGroup::new();
        for _ in 0..4 {
            wg.add(1);
            let wg = wg.clone();
            go(move || wg.done());
        }
        wg.wait();
    }));
    let mut samples = Vec::new();
    for _ in 0..10 {
        let cfg = GoatConfig::default().with_iterations(24).with_parallelism(4).keep_running();
        let t = std::time::Instant::now();
        let r = Goat::new(cfg).test(Arc::clone(&program) as Arc<dyn Program>);
        samples.push(t.elapsed().as_nanos() as f64);
        assert_eq!(r.records.len(), 24);
    }
    result_line("campaign_24_iters/streaming_p4_pooled", samples);
}

fn main() {
    // Ignore the harness args cargo bench passes (--bench, filters).
    let Some(worker) = worker_cmd() else {
        println!("SKIP: no goat worker binary (set GOAT_WORKER_CMD or run cargo build --release)");
        return;
    };
    // Sanity guard: the data plane under measurement preserves reports.
    // Runs with telemetry still off — the telemetry block embeds wall
    // times, so report identity is only meaningful without it.
    let kernel = goat_goker::by_name("etcd6708").expect("kernel");
    let off = Goat::new(campaign_cfg(&worker, 50).with_isolate(IsolateMode::Off))
        .test(Arc::new(KernelProgram(kernel)))
        .to_json_summary()
        .expect("summary");
    for leg in LEGS {
        let got = Goat::new(
            campaign_cfg(&worker, 50)
                .with_ipc(leg.ipc)
                .with_ipc_shm(leg.shm)
                .with_ipc_batch(leg.batch),
        )
        .test(Arc::new(KernelProgram(kernel)))
        .to_json_summary()
        .expect("summary");
        assert_eq!(off, got, "{}: report changed under measurement config", leg.name);
    }

    println!("ipc bench: etcd6708 campaigns through worker `{worker}`");
    println!("\"results\": [");
    // Telemetry-off and before the worker campaigns heat the machine,
    // matching the conditions of the BENCH_pool.json baseline.
    streaming_guard();
    if std::env::var_os("GOAT_IPC_BENCH_GUARD_ONLY").is_some() {
        println!("]");
        return;
    }
    goat_metrics::set_enabled(true);
    for (iterations, reps) in [(1_000usize, 5usize), (10_000, 2)] {
        let tag = if iterations == 1_000 { "1k" } else { "10k" };
        for leg in LEGS {
            let samples: Vec<Sample> =
                (0..reps).map(|_| run_leg(&worker, leg, iterations)).collect();
            result_line(
                &format!("ipc_overhead_per_run/{}_{tag}", leg.name),
                samples.iter().map(|s| s.overhead_ns_per_run).collect(),
            );
            result_line(
                &format!("wire_bytes_per_run/{}_{tag}", leg.name),
                samples.iter().map(|s| s.bytes_per_run).collect(),
            );
        }
    }
    println!("]");
}
