//! Metric comparison (extension): GoAT's requirement coverage
//! (Req1–Req5, §III-C) vs. the earlier synchronization-pair coverage
//! family (§II-D) on the two coverage-study kernels.
//!
//! The paper argues the older metrics do not transfer to Go because
//! they only see *wakeup edges*: nothing about select-case choice,
//! non-blocking (NOP) behaviour, or requirements that exist before any
//! execution. This harness quantifies that argument: per iteration it
//! reports GoAT's coverage percentage (against its growing universe)
//! next to the raw sync-pair count (which has no denominator at all),
//! and finally lists what the requirement metric still wants tested
//! while the pair metric has long saturated.
//!
//! ```text
//! cargo run -p goat-bench --release --bin metric_compare
//! ```

use goat_bench::{name_salt, seed0};
use goat_core::{extract_coverage, extract_sync_pairs, Program};
use goat_model::{CoverageSet, RequirementUniverse, SyncPairCoverage};
use goat_runtime::{Config, Runtime};

fn main() {
    let _stats = goat_bench::stats();
    let iterations: usize =
        std::env::var("GOAT_COV_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(40);
    let s0 = seed0();

    for kernel_name in ["etcd7443", "kubernetes11298"] {
        let kernel = goat_goker::by_name(kernel_name).expect("study kernel");
        println!("\n=== {kernel_name}: requirement coverage vs sync-pair coverage ===");
        println!("(D = 2, {iterations} iterations)\n");

        let mut universe = RequirementUniverse::new();
        let mut covered = CoverageSet::new();
        let mut pairs = SyncPairCoverage::new();
        let mut pair_saturated_at = None;
        let mut req_last_growth = 0usize;

        println!("{:>4}  {:>12} {:>10}  {:>10}", "iter", "req-covered", "req-%", "sync-pairs");
        for i in 0..iterations {
            let seed = s0.wrapping_add(name_salt(kernel_name)).wrapping_add(i as u64);
            let cfg = Config::new(seed).with_delay_bound(2);
            let r = Runtime::run(cfg, move || Program::main(kernel));
            let ect = r.ect.expect("traced");
            let cov = extract_coverage(&ect, &mut universe);
            let before_pairs = pairs.len();
            let before_req = covered.len();
            covered.merge(&cov.covered);
            pairs.merge(&extract_sync_pairs(&ect));
            if pairs.len() == before_pairs && pair_saturated_at.is_none() && i > 0 {
                pair_saturated_at = Some(i);
            }
            if covered.len() > before_req {
                req_last_growth = i;
            }
            if i % (iterations / 10).max(1) == 0 || i + 1 == iterations {
                println!(
                    "{:>4}  {:>12} {:>9.1}%  {:>10}",
                    i + 1,
                    covered.len(),
                    covered.percent(&universe),
                    pairs.len()
                );
            }
        }

        println!("\nsync-pair metric first stalled at iteration {:?};", pair_saturated_at);
        println!("requirement metric last grew at iteration {req_last_growth}.");
        println!(
            "requirements still uncovered (invisible to the pair metric): {}",
            universe.uncovered(&covered).count()
        );
        let mut shown = 0;
        for key in universe.uncovered(&covered) {
            println!("  - {}", universe.resolve(*key));
            shown += 1;
            if shown == 6 {
                println!("  …");
                break;
            }
        }
        println!("\nobserved synchronization pairs:");
        print!("{}", pairs.render());
    }
}
