//! Table IV: output of each tool on the GoKer blocking bugs —
//! detected symptom and minimum number of executions required.
//!
//! ```text
//! cargo run -p goat-bench --release --bin table4
//! GOAT_FREQ=1000 cargo run -p goat-bench --release --bin table4   # paper budget
//! ```

use goat_bench::{detect, freq, seed0, tool_names, tools};

fn main() {
    let _stats = goat_bench::stats();
    let budget = freq();
    let s0 = seed0();
    let tools = tools();
    let names = tool_names();

    println!("Table IV — per-bug output of each tool ({} executions max, seed0={})", budget, s0);
    println!("legend: SYMPTOM (min executions) | X (budget) = undetected\n");
    print!("{:<18}", "bug");
    for n in &names {
        print!("{n:>16}");
    }
    println!();
    println!("{}", "-".repeat(18 + 16 * names.len()));

    let mut per_tool_detected = vec![0usize; tools.len()];
    for kernel in goat_goker::all_kernels() {
        print!("{:<18}", kernel.name);
        for (ti, tool) in tools.iter().enumerate() {
            let d = detect(tool.as_ref(), kernel, budget, s0);
            if d.first_iter.is_some() {
                per_tool_detected[ti] += 1;
            }
            print!("{:>16}", d.cell(budget));
        }
        println!();
    }
    println!("{}", "-".repeat(18 + 16 * names.len()));
    print!("{:<18}", "detected");
    for c in &per_tool_detected {
        print!("{:>13}/68", c);
    }
    println!();
}
