//! Figure 2: histogram of the 68 blocking bug kernels grouped by the
//! number of trials GOAT takes to detect them under **native** execution
//! (no randomization, D = 0) — the paper's motivation that ≈30 % of bugs
//! need more than one execution.
//!
//! ```text
//! cargo run -p goat-bench --release --bin fig2_trials
//! ```

use goat_bench::{bar, bucket_label, detect, freq, seed0, BUCKETS};
use goat_core::GoatTool;
use std::collections::BTreeMap;

fn main() {
    let _stats = goat_bench::stats();
    let budget = freq();
    let s0 = seed0();
    let tool = GoatTool::new(0); // native execution: D = 0

    let mut buckets: BTreeMap<&str, usize> = BTreeMap::new();
    let mut undetected = 0usize;
    let mut details: Vec<(&str, Option<usize>)> = Vec::new();
    for kernel in goat_goker::all_kernels() {
        let d = detect(&tool, kernel, budget, s0);
        match d.first_iter {
            Some(i) => *buckets.entry(bucket_label(i)).or_default() += 1,
            None => undetected += 1,
        }
        details.push((kernel.name, d.first_iter));
    }

    println!("Figure 2 — trials until detection, GOAT D0 (native), budget {budget}\n");
    let max = buckets.values().copied().max().unwrap_or(1).max(undetected);
    for (_, _, label) in BUCKETS {
        let n = buckets.get(label).copied().unwrap_or(0);
        println!("{label:>10} trials | {:<40} {n}", bar(n, max, 40));
    }
    println!("{:>10}        | {:<40} {undetected}", "undetected", bar(undetected, max, 40));
    let one = buckets.get("1").copied().unwrap_or(0);
    println!(
        "\n{one}/68 bugs detected on the first native run; {} require more \
         than one execution (paper: ≈30 %).",
        68 - one
    );
    println!("\nper-bug first-detection iteration:");
    for (name, iter) in details {
        match iter {
            Some(i) => println!("  {name:<18} {i}"),
            None => println!("  {name:<18} X"),
        }
    }
}
