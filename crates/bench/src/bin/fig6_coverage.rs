//! Figures 6a/6b: coverage percentage over testing iterations for the
//! two representative kernels `etcd7443` and `kubernetes11298`, for
//! delay bounds D ∈ {0, 1, 2, 3, 4}.
//!
//! The paper's observations to reproduce: coverage grows over
//! iterations; larger D tends to start higher and grow faster; higher D
//! does **not** uniformly dominate (D4 is not always above D2); and the
//! percentage can *drop* when new requirements (goroutines, select
//! cases) are discovered mid-campaign.
//!
//! ```text
//! cargo run -p goat-bench --release --bin fig6_coverage
//! ```

use goat_bench::{name_salt, seed0};
use goat_core::{Goat, GoatConfig};
use std::sync::Arc;

fn main() {
    let _stats = goat_bench::stats();
    let iterations: usize =
        std::env::var("GOAT_COV_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let s0 = seed0();

    for kernel_name in ["etcd7443", "kubernetes11298"] {
        let kernel = goat_goker::by_name(kernel_name).expect("coverage-study kernel");
        let fig = if kernel_name == "etcd7443" { "6a" } else { "6b" };
        println!("\nFigure {fig} — coverage % over iterations: {kernel_name}");
        println!("(campaign continues past bug detections; {iterations} iterations)\n");

        let mut curves: Vec<(u32, Vec<f64>)> = Vec::new();
        for d in 0..=4u32 {
            let goat = Goat::new(
                GoatConfig::default()
                    .with_delay_bound(d)
                    .with_iterations(iterations)
                    .with_seed0(s0.wrapping_add(name_salt(kernel_name)) ^ u64::from(d) << 32)
                    .keep_running(),
            );
            let result = goat.test(Arc::new(ProgramRef(kernel)));
            let curve: Vec<f64> = result.records.iter().map(|r| r.coverage_percent).collect();
            curves.push((d, curve));
        }

        print!("iter ");
        for (d, _) in &curves {
            print!("      D{d}");
        }
        println!();
        let step = (iterations / 15).max(1);
        for i in (0..iterations).step_by(step) {
            print!("{:>4} ", i + 1);
            for (_, curve) in &curves {
                match curve.get(i) {
                    Some(p) => print!("  {p:>5.1}%"),
                    None => print!("       -"),
                }
            }
            println!();
        }
        print!("final");
        for (_, curve) in &curves {
            match curve.last() {
                Some(p) => print!("  {p:>5.1}%"),
                None => print!("       -"),
            }
        }
        println!();
    }
}

/// Adapter: run a `&'static BugKernel` through `Arc<dyn Program>`.
struct ProgramRef(&'static goat_goker::BugKernel);

impl goat_core::Program for ProgramRef {
    fn name(&self) -> &str {
        goat_core::Program::name(self.0)
    }
    fn main(&self) {
        goat_core::Program::main(self.0)
    }
    fn sources(&self) -> Vec<std::path::PathBuf> {
        // The kernel's source file holds a whole project's kernels; a
        // static scan would flood the universe with other kernels'
        // requirements. Coverage here uses dynamic CU discovery, which
        // also reproduces the paper's universe-growth effects.
        Vec::new()
    }
}
