//! Application-scale detection (extension): run GoAT and the baselines
//! on the GoReal-style corpus — realistic services with seeded
//! real-world bug patterns — the kind of subject the paper's
//! "field-debugging of Go programs" conclusion targets.
//!
//! ```text
//! cargo run -p goat-bench --release --bin apps_detect
//! ```

use goat_bench::{freq, seed0, tool_names, tools};
use goat_detectors::Symptom;
use std::sync::Arc;

fn main() {
    let _stats = goat_bench::stats();
    let budget = freq().min(300);
    let s0 = seed0();
    let tools = tools();
    let names = tool_names();

    println!("Application corpus — detection per tool (budget {budget} executions)\n");
    print!("{:<32}", "program");
    for n in &names {
        print!("{n:>12}");
    }
    println!();
    println!("{}", "-".repeat(32 + 12 * names.len()));

    for program in goat_apps::all_programs() {
        print!("{:<32}", program.name());
        let is_correct = program.name().contains("correct");
        for tool in &tools {
            let mut cell = format!("X ({budget})");
            for i in 0..budget {
                let cfg = goat_runtime::Config::new(s0 + i as u64);
                let p = Arc::clone(&program);
                let v = tool.run_once(cfg, Arc::new(move || p.main()));
                if v.detected {
                    cell = format!("{} ({})", v.symptom.code(), i + 1);
                    break;
                }
            }
            print!("{cell:>12}");
        }
        println!("{}", if is_correct { "   [must be all X]" } else { "" });
    }
    println!(
        "\nExpected: every `correct` row is all X (no false positives); every \
         seeded-bug row is detected by GoAT (and by baselines only where the \
         symptom is in their reach: builtin sees the GDLs, goleak the leaks, \
         LockDL almost nothing — the cycles run through channels)."
    );
    let _ = Symptom::None; // keep the import used on all paths
}
