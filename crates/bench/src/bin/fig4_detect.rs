//! Figure 4: histogram of detected bugs by each tool on the 68 GoKer
//! blocking bugs, split by reported symptom — PDL (partial deadlock),
//! GDL/TO (global deadlock or timeout), Crash/Halt.
//!
//! ```text
//! cargo run -p goat-bench --release --bin fig4_detect
//! ```

use goat_bench::{bar, detect, freq, seed0, tool_names, tools};
use goat_detectors::Symptom;

fn main() {
    let _stats = goat_bench::stats();
    let budget = freq();
    let s0 = seed0();
    let tools = tools();
    let names = tool_names();

    println!("Figure 4 — detected bugs per tool (budget {budget} executions)\n");
    println!(
        "{:<10} {:>5} {:>8} {:>12} {:>7} {:>6}   histogram",
        "tool", "PDL", "GDL/TO", "Crash/Halt", "DL", "total"
    );
    for (tool, name) in tools.iter().zip(&names) {
        let mut pdl = 0usize;
        let mut gdl = 0usize;
        let mut crash = 0usize;
        let mut dl = 0usize;
        for kernel in goat_goker::all_kernels() {
            let d = detect(tool.as_ref(), kernel, budget, s0);
            if d.first_iter.is_none() {
                continue;
            }
            match d.symptom {
                Symptom::PartialDeadlock { .. } => pdl += 1,
                Symptom::GlobalDeadlock => gdl += 1,
                Symptom::Crash | Symptom::Hang => crash += 1,
                Symptom::PotentialDeadlock => dl += 1,
                Symptom::None => {}
            }
        }
        let total = pdl + gdl + crash + dl;
        println!(
            "{name:<10} {pdl:>5} {gdl:>8} {crash:>12} {dl:>7} {total:>3}/68   {}",
            bar(total, 68, 34)
        );
    }
    println!(
        "\nExpected shape (paper): every GOAT variant detects (nearly) all 68 \
         and their union is 100 %; the builtin detector sees only global \
         deadlocks and crashes; LockDL adds lock-order warnings; goleak sees \
         leaks only when they manifest natively and main still exits."
    );
}
