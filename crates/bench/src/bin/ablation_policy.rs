//! Ablation: bounded yield injection (the paper's design) vs. taking
//! full control of the scheduler with uniform-random exploration (the
//! paper's future-work suggestion, §VI).
//!
//! For every kernel, measure the executions needed to expose the bug
//! under: native D0, GOAT D2 (bounded yields), and UniformRandom (every
//! handoff fully random). The interesting question: does full control
//! beat targeted yields, and at what cost to realism?
//!
//! ```text
//! cargo run -p goat-bench --release --bin ablation_policy
//! ```

use goat_bench::{bucket_label, freq, kernel_program, name_salt, seed0};
use goat_core::analyze_run;
use goat_runtime::{Config, Runtime, SchedPolicy};
use std::collections::BTreeMap;
use std::sync::Arc;

fn first_detection(
    kernel: &'static goat_goker::BugKernel,
    budget: usize,
    s0: u64,
    mk: impl Fn(u64) -> Config,
) -> Option<usize> {
    let program = kernel_program(kernel);
    let salt = name_salt(kernel.name);
    for i in 0..budget {
        let cfg = mk(s0.wrapping_add(salt).wrapping_add(i as u64)).with_trace(true);
        let p = Arc::clone(&program);
        let result = Runtime::run(cfg, move || p());
        if analyze_run(&result).is_bug() {
            return Some(i + 1);
        }
    }
    None
}

type ConfigFactory = Box<dyn Fn(u64) -> Config>;

fn main() {
    let _stats = goat_bench::stats();
    let budget = freq();
    let s0 = seed0();
    let variants: Vec<(&str, ConfigFactory)> = vec![
        ("native-d0", Box::new(Config::new)),
        ("goat-d2", Box::new(|s| Config::new(s).with_delay_bound(2))),
        ("uniform-random", Box::new(|s| Config::new(s).with_policy(SchedPolicy::UniformRandom))),
    ];

    println!("Ablation — yield injection vs. full scheduler control (budget {budget})\n");
    let mut dist: BTreeMap<&str, BTreeMap<&str, usize>> = BTreeMap::new();
    let mut undetected: BTreeMap<&str, usize> = BTreeMap::new();
    let mut interesting: Vec<String> = Vec::new();

    for kernel in goat_goker::all_kernels() {
        let mut row: Vec<(usize, Option<usize>)> = Vec::new();
        for (vi, (name, mk)) in variants.iter().enumerate() {
            let d = first_detection(kernel, budget, s0, mk);
            match d {
                Some(i) => *dist.entry(name).or_default().entry(bucket_label(i)).or_default() += 1,
                None => *undetected.entry(name).or_default() += 1,
            }
            row.push((vi, d));
        }
        // Report kernels where the variants disagree qualitatively.
        let detections: Vec<Option<usize>> = row.iter().map(|(_, d)| *d).collect();
        if detections.iter().any(Option::is_none) && detections.iter().any(Option::is_some) {
            interesting.push(format!(
                "  {:<18} d0={:<6} d2={:<6} random={:<6}",
                kernel.name,
                detections[0].map_or("X".into(), |i| i.to_string()),
                detections[1].map_or("X".into(), |i| i.to_string()),
                detections[2].map_or("X".into(), |i| i.to_string()),
            ));
        }
    }

    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>10} {:>11}",
        "policy", "1", "2-10", "11-100", "101-1000", "undetected"
    );
    for (name, _) in &variants {
        let d = dist.get(name).cloned().unwrap_or_default();
        println!(
            "{:<16} {:>6} {:>8} {:>8} {:>10} {:>11}",
            name,
            d.get("1").copied().unwrap_or(0),
            d.get("2-10").copied().unwrap_or(0),
            d.get("11-100").copied().unwrap_or(0),
            d.get("101-1000").copied().unwrap_or(0),
            undetected.get(name).copied().unwrap_or(0),
        );
    }
    println!("\nkernels where the policies disagree (detected vs not):");
    for line in interesting {
        println!("{line}");
    }
    println!(
        "\nReading: bounded yields concentrate context switches at concurrency \
         usages, so they find CU-window bugs with far fewer executions than \
         unbiased random exploration, which dilutes switches over every handoff."
    );
}
