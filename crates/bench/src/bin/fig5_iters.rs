//! Figure 5: for each tool, the percentage distribution of the number of
//! iterations required to detect the 68 GoKer blocking bugs, over the
//! intervals {1, 2–10, 11–100, 101–1000} — the evidence that a few
//! random schedule perturbations drastically reduce the iterations
//! needed to expose rare bugs.
//!
//! ```text
//! cargo run -p goat-bench --release --bin fig5_iters
//! ```

use goat_bench::{bucket_label, detect, freq, seed0, tool_names, tools, BUCKETS};
use std::collections::BTreeMap;

fn main() {
    let _stats = goat_bench::stats();
    let budget = freq();
    let s0 = seed0();
    let tools = tools();
    let names = tool_names();

    println!("Figure 5 — % distribution of detection iterations per tool (budget {budget})\n");
    print!("{:<10}", "tool");
    for (_, _, label) in BUCKETS {
        print!("{label:>12}");
    }
    println!("{:>12}", "undetected");

    for (tool, name) in tools.iter().zip(&names) {
        let mut dist: BTreeMap<&str, usize> = BTreeMap::new();
        let mut undetected = 0usize;
        for kernel in goat_goker::all_kernels() {
            let d = detect(tool.as_ref(), kernel, budget, s0);
            match d.first_iter {
                Some(i) => *dist.entry(bucket_label(i)).or_default() += 1,
                None => undetected += 1,
            }
        }
        print!("{name:<10}");
        for (_, _, label) in BUCKETS {
            let n = dist.get(label).copied().unwrap_or(0);
            print!("{:>11.1}%", 100.0 * n as f64 / 68.0);
        }
        println!("{:>11.1}%", 100.0 * undetected as f64 / 68.0);
    }
    println!(
        "\nExpected shape (paper fig. 5): moving from D0 to D≥1 shifts mass \
         from the high-iteration intervals toward 1 and 2–10; higher D does \
         not monotonically improve further."
    );
}
