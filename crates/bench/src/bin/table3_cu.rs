//! Table III: concurrency usages and coverage requirements of the
//! paper's listing 1 (`moby28462`), with per-run covered flags for a
//! successful run and a leaking run plus the overall union — the
//! worked example of the coverage metric.
//!
//! ```text
//! cargo run -p goat-bench --release --bin table3_cu
//! ```

use goat_core::{analyze_run, extract_coverage, GoatVerdict};
use goat_model::{ReqTarget, RequirementUniverse};
use goat_runtime::{Config, Runtime};

fn main() {
    let _stats = goat_bench::stats();
    let kernel = goat_goker::by_name("moby28462").expect("listing 1 kernel");

    // Find one clean and one buggy seed (deterministic search).
    let mut clean = None;
    let mut buggy = None;
    for seed in 0..500u64 {
        let r = Runtime::run(Config::new(seed), || goat_core::Program::main(kernel));
        match analyze_run(&r) {
            GoatVerdict::Pass if clean.is_none() => clean = Some((seed, r)),
            GoatVerdict::PartialDeadlock { .. } if buggy.is_none() => buggy = Some((seed, r)),
            _ => {}
        }
        if clean.is_some() && buggy.is_some() {
            break;
        }
    }
    let (clean_seed, clean_run) = clean.expect("a passing schedule exists");
    let (buggy_seed, buggy_run) = buggy.expect("a leaking schedule exists");

    let mut universe = RequirementUniverse::new();
    let cov1 = extract_coverage(clean_run.ect.as_ref().expect("traced"), &mut universe);
    let cov2 = extract_coverage(buggy_run.ect.as_ref().expect("traced"), &mut universe);

    println!("Table III — CUs and coverage requirements of moby28462 (listing 1)");
    println!("run #1: seed {clean_seed} (successful)   run #2: seed {buggy_seed} (leak)\n");
    println!(
        "{:<28} {:<10} {:<28} {:>7} {:>7} {:>8}",
        "location", "kind", "requirement", "run#1", "run#2", "overall"
    );
    println!("{}", "-".repeat(95));
    let mut covered_total = 0usize;
    let mut total = 0usize;
    for key in universe.iter() {
        let req = universe.resolve(*key);
        let file = req.cu.file.rsplit('/').next().unwrap_or(&req.cu.file);
        let label = match key.target {
            ReqTarget::Op => key.value.to_string(),
            ReqTarget::Case { idx, flavor } => format!("case{idx}({flavor})-{}", key.value),
        };
        let c1 = cov1.covered.contains(key);
        let c2 = cov2.covered.contains(key);
        total += 1;
        if c1 || c2 {
            covered_total += 1;
        }
        println!(
            "{:<28} {:<10} {:<28} {:>7} {:>7} {:>8}",
            format!("{file}:{}", req.cu.line),
            req.cu.kind.to_string(),
            label,
            tick(c1),
            tick(c2),
            tick(c1 || c2)
        );
    }
    println!("{}", "-".repeat(95));
    println!(
        "overall coverage after two runs: {covered_total}/{total} ({:.1}%)",
        100.0 * covered_total as f64 / total as f64
    );
    println!(
        "\nuncovered requirements suggest untested scheduling scenarios \
         (or dead behaviour), per the paper's 'actions for uncovered \
         requirements'."
    );
}

fn tick(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}
