//! Benchmark composition: the GoKer-style suite broken down by project,
//! cause class, expected symptom and native rarity — the reproduction's
//! analogue of GoBench's bug-taxonomy table, useful for sanity-checking
//! the corpus against §II-B's taxonomy.
//!
//! ```text
//! cargo run -p goat-bench --release --bin suite_stats
//! ```

use goat_goker::{suite_stats, Project};

fn main() {
    let _stats = goat_bench::stats();
    let stats = suite_stats();
    println!("GoKer-style blocking-bug suite — 68 kernels\n");

    println!("{:<12} {:>7}", "project", "kernels");
    for (p, n) in &stats.per_project {
        println!("{:<12} {:>7}", p.to_string(), n);
    }
    let total: usize = stats.per_project.iter().map(|(_, n)| n).sum();
    println!("{:<12} {:>7}\n", "total", total);

    let (res, comm, mixed) = stats.per_cause;
    println!("cause class (taxonomy of §II-B):");
    println!("  resource (mutex/RWMutex/wait/cond) : {res}");
    println!("  communication (channel misuse)     : {comm}");
    println!("  mixed (channel + lock cycles)      : {mixed}\n");

    let (leak, gdl, either, crash) = stats.per_symptom;
    println!("expected symptom:");
    println!("  goroutine leak (partial deadlock)  : {leak}");
    println!("  global deadlock                    : {gdl}");
    println!("  leak or global (schedule-decided)  : {either}");
    println!("  crash (closed-channel panics)      : {crash}\n");

    let (common, uncommon, rare, very_rare) = stats.per_rarity;
    println!("native-manifestation rarity (drives figure 2):");
    println!("  common    (≈ every native run)     : {common}");
    println!("  uncommon  (needs a wide window)    : {uncommon}");
    println!("  rare      (needs a narrow window)  : {rare}");
    println!("  very rare (perturbation-only)      : {very_rare}\n");

    println!("per-project detail:");
    for p in Project::ALL {
        println!("  {p}:");
        for k in goat_goker::by_project(p) {
            println!("    {:<18} {:<14} {:?}", k.name, k.cause.to_string(), k.rarity);
        }
    }
}
