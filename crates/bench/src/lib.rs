//! # goat-bench — the evaluation harness
//!
//! Shared machinery for regenerating the paper's tables and figures:
//!
//! | binary         | paper artifact |
//! |----------------|----------------|
//! | `fig2_trials`  | Figure 2 — histogram of bugs by #trials (GOAT D0) |
//! | `fig4_detect`  | Figure 4 — detected bugs per tool by symptom |
//! | `fig5_iters`   | Figure 5 — distribution of detection iterations |
//! | `table4`       | Table IV — per-bug verdict + min executions per tool |
//! | `fig6_coverage`| Figures 6a/6b — coverage % vs iteration per D |
//! | `table3_cu`    | Table III — CU table + covered requirements (listing 1) |
//!
//! Environment knobs: `GOAT_FREQ` (iterations per bug/tool pair; default
//! 200, the paper uses 1000) and `GOAT_SEED0` (base seed, default 1).

#![warn(missing_docs)]

use goat_core::{GoatTool, Program};
use goat_detectors::{
    BuiltinDetector, Detector, GoleakDetector, LockdlDetector, ProgramFn, Symptom,
};
use goat_goker::BugKernel;
use goat_runtime::Config;
use std::sync::Arc;

/// Iterations per (bug, tool) pair: `GOAT_FREQ`, default 200.
pub fn freq() -> usize {
    std::env::var("GOAT_FREQ").ok().and_then(|v| v.parse().ok()).unwrap_or(200)
}

/// Handle the common `--stats` flag: when present on the command line,
/// turn on telemetry collection for the whole process. Call first thing
/// in a bench binary's `main`; pass the result to [`print_stats`].
pub fn stats_flag() -> bool {
    let on = std::env::args().any(|a| a == "--stats");
    if on {
        goat_metrics::set_enabled(true);
    }
    on
}

/// Print the telemetry summary table accumulated during the run, when
/// `--stats` was requested (the flag value returned by [`stats_flag`]).
pub fn print_stats(enabled: bool) {
    if enabled {
        println!("\n--stats — telemetry summary");
        print!("{}", goat_metrics::global().render_table());
    }
}

/// RAII form of [`stats_flag`]/[`print_stats`]: bind at the top of a
/// bench binary's `main` and the summary table prints when it returns.
///
/// ```no_run
/// let _stats = goat_bench::stats();
/// // ... produce the table/figure ...
/// // the `--stats` summary prints when the guard drops
/// ```
pub fn stats() -> StatsGuard {
    StatsGuard { enabled: stats_flag() }
}

/// Guard returned by [`stats`]; prints the `--stats` table on drop.
pub struct StatsGuard {
    enabled: bool,
}

impl Drop for StatsGuard {
    fn drop(&mut self) {
        print_stats(self.enabled);
    }
}

/// Base seed: `GOAT_SEED0`, default 1.
pub fn seed0() -> u64 {
    std::env::var("GOAT_SEED0").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// The tool line-up of §IV-A: GOAT D0–D4 plus the three baselines.
pub fn tools() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(GoatTool::new(0)),
        Box::new(GoatTool::new(1)),
        Box::new(GoatTool::new(2)),
        Box::new(GoatTool::new(3)),
        Box::new(GoatTool::new(4)),
        Box::new(BuiltinDetector::new()),
        Box::new(LockdlDetector::new()),
        Box::new(GoleakDetector::new()),
    ]
}

/// Names in table order.
pub fn tool_names() -> Vec<&'static str> {
    vec!["goat-d0", "goat-d1", "goat-d2", "goat-d3", "goat-d4", "builtin", "lockdl", "goleak"]
}

/// Result of iterating one tool on one bug.
#[derive(Debug, Clone)]
pub struct Detection {
    /// 1-based iteration of the first detection (`None` = undetected
    /// within the budget — the paper's `X (1000)` entries).
    pub first_iter: Option<usize>,
    /// The symptom reported at first detection.
    pub symptom: Symptom,
}

impl Detection {
    /// Table IV cell text, e.g. `PDL-2 (3)` or `X (200)`.
    pub fn cell(&self, budget: usize) -> String {
        match self.first_iter {
            Some(i) => format!("{} ({i})", self.symptom.code()),
            None => format!("X ({budget})"),
        }
    }
}

/// Convert a kernel into the closure form detectors consume.
pub fn kernel_program(k: &'static BugKernel) -> ProgramFn {
    Arc::new(move || Program::main(k))
}

/// Stable FNV-1a hash used to decorrelate seed streams across kernels
/// (otherwise kernels with identical window structure detect on the
/// same iteration, which no real testbed would show).
pub fn name_salt(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `tool` on `kernel` for up to `budget` iterations (fresh seed per
/// iteration, per-kernel salted), returning the first detection.
pub fn detect(
    tool: &dyn Detector,
    kernel: &'static BugKernel,
    budget: usize,
    seed0: u64,
) -> Detection {
    let program = kernel_program(kernel);
    let salt = name_salt(kernel.name);
    for i in 0..budget {
        let cfg = Config::new(seed0.wrapping_add(salt).wrapping_add(i as u64));
        let v = tool.run_once(cfg, Arc::clone(&program));
        if v.detected {
            return Detection { first_iter: Some(i + 1), symptom: v.symptom };
        }
    }
    Detection { first_iter: None, symptom: Symptom::None }
}

/// The Figure 2 / Figure 5 iteration buckets.
pub const BUCKETS: [(usize, usize, &str); 4] =
    [(1, 1, "1"), (2, 10, "2-10"), (11, 100, "11-100"), (101, 1000, "101-1000")];

/// Bucket label for an iteration count.
pub fn bucket_label(iter: usize) -> &'static str {
    for (lo, hi, label) in BUCKETS {
        if iter >= lo && iter <= hi {
            return label;
        }
    }
    ">1000"
}

/// Render an ASCII bar.
pub fn bar(count: usize, max: usize, width: usize) -> String {
    let n = (count * width).checked_div(max).unwrap_or(0);
    "█".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_positive_range() {
        assert_eq!(bucket_label(1), "1");
        assert_eq!(bucket_label(2), "2-10");
        assert_eq!(bucket_label(10), "2-10");
        assert_eq!(bucket_label(11), "11-100");
        assert_eq!(bucket_label(100), "11-100");
        assert_eq!(bucket_label(101), "101-1000");
        assert_eq!(bucket_label(1001), ">1000");
    }

    #[test]
    fn detection_cell_format() {
        let d = Detection { first_iter: Some(3), symptom: Symptom::PartialDeadlock { leaked: 2 } };
        assert_eq!(d.cell(200), "PDL-2 (3)");
        let x = Detection { first_iter: None, symptom: Symptom::None };
        assert_eq!(x.cell(200), "X (200)");
    }

    #[test]
    fn tool_lineup_matches_names() {
        let tools = tools();
        let names = tool_names();
        assert_eq!(tools.len(), names.len());
        for (t, n) in tools.iter().zip(names) {
            assert_eq!(t.name(), n);
        }
    }

    #[test]
    fn deterministic_kernel_detected_immediately() {
        let k = goat_goker::by_name("moby7559").expect("kernel");
        let d = detect(&GoatTool::new(0), k, 5, 1);
        assert_eq!(d.first_iter, Some(1));
        assert_eq!(d.symptom, Symptom::GlobalDeadlock);
    }
}
