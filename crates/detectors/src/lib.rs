//! # goat-detectors — the baseline dynamic detectors of §IV-A
//!
//! GoAT's evaluation compares against three existing dynamic tools, each
//! re-implemented here from its documented detection principle:
//!
//! * [`BuiltinDetector`] — Go's runtime deadlock check: "all goroutines
//!   are asleep" while main has not finished. Detects **global**
//!   deadlocks only; goroutine leaks go unnoticed.
//! * [`LockdlDetector`] — the lock-set tool (sasha-s/go-deadlock): wraps
//!   every mutex operation, warns on double-locking and on cycles in the
//!   accumulated lock-order graph, and carries a 30 s watchdog timeout.
//!   Channel-caused deadlocks are invisible to it except via the timeout.
//! * [`GoleakDetector`] — Uber's goleak: at the end of `main`, report
//!   application goroutines that are still alive (leaked).
//!
//! Each detector runs a program once under a given [`Config`] and
//! produces a [`ToolVerdict`]; iterating with fresh seeds is the job of
//! the experiment harness (goat-bench).

#![warn(missing_docs)]

mod goleak;
mod lockdl;
mod verdict;

pub use goleak::GoleakDetector;
pub use lockdl::{LockGraph, LockdlDetector, LockdlReport};
pub use verdict::{Detector, ProgramFn, Symptom, ToolVerdict};

use goat_runtime::{Config, RunOutcome, Runtime};

/// Go's built-in global deadlock detector.
///
/// The runtime itself implements the check (no runnable goroutine, no
/// pending timer, main blocked ⇒ "fatal error: all goroutines are asleep
/// — deadlock!"), so this detector simply interprets the run outcome. It
/// never sees partial deadlocks: a program whose main returns while other
/// goroutines are blocked terminates successfully.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuiltinDetector;

impl BuiltinDetector {
    /// Create the detector.
    pub fn new() -> Self {
        BuiltinDetector
    }
}

impl Detector for BuiltinDetector {
    fn name(&self) -> &'static str {
        "builtin"
    }

    fn run_once(&self, cfg: Config, program: ProgramFn) -> ToolVerdict {
        let cfg = cfg.with_trace(false);
        let result = Runtime::run(cfg, move || program());
        match result.outcome {
            RunOutcome::GlobalDeadlock { blocked } => ToolVerdict {
                detected: true,
                symptom: Symptom::GlobalDeadlock,
                detail: format!(
                    "fatal error: all goroutines are asleep - deadlock! ({} blocked)",
                    blocked.len()
                ),
            },
            RunOutcome::Panicked { g, msg } => ToolVerdict {
                detected: true,
                symptom: Symptom::Crash,
                detail: format!("panic in {g}: {msg}"),
            },
            RunOutcome::StepLimit => ToolVerdict {
                detected: true,
                symptom: Symptom::Hang,
                detail: "program hung (watchdog)".to_string(),
            },
            RunOutcome::TimedOut { phase, elapsed_ms } => ToolVerdict {
                detected: true,
                symptom: Symptom::Hang,
                detail: format!("program hung (wall-clock watchdog, {phase}, {elapsed_ms} ms)"),
            },
            // An infra failure is the harness's problem, not evidence
            // about the program: no detection.
            RunOutcome::InfraFailure { reason } => ToolVerdict {
                detected: false,
                symptom: Symptom::None,
                detail: format!("infra failure: {reason}"),
            },
            // Unreachable for in-process detector runs, but the outcome
            // taxonomy is shared with the isolated campaign runner.
            RunOutcome::Crashed { forensics } => ToolVerdict {
                detected: true,
                symptom: Symptom::Crash,
                detail: format!("worker crashed: {}", forensics.summary),
            },
            RunOutcome::Completed => ToolVerdict {
                detected: false,
                symptom: Symptom::None,
                // The builtin detector is blind to leaked goroutines.
                detail: "exited successfully".to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goat_runtime::{go, Chan};
    use std::sync::Arc;

    #[test]
    fn builtin_detects_global_deadlock() {
        let v = BuiltinDetector::new().run_once(
            Config::new(0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                ch.recv(); // main blocks forever
            }),
        );
        assert!(v.detected);
        assert_eq!(v.symptom, Symptom::GlobalDeadlock);
    }

    #[test]
    fn builtin_misses_partial_deadlock() {
        let v = BuiltinDetector::new().run_once(
            Config::new(0).with_native_preempt_prob(0.0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                go(move || {
                    ch.recv(); // leaks
                });
                goat_runtime::gosched();
            }),
        );
        assert!(!v.detected, "builtin cannot see leaks: {v:?}");
    }

    #[test]
    fn builtin_reports_crash() {
        let v = BuiltinDetector::new().run_once(
            Config::new(0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                ch.close();
                ch.send(1);
            }),
        );
        assert!(v.detected);
        assert_eq!(v.symptom, Symptom::Crash);
    }
}
