//! Common detector interface and verdict types.

use goat_runtime::Config;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A program under test, runnable many times (once per seed).
pub type ProgramFn = Arc<dyn Fn() + Send + Sync + 'static>;

/// The bug symptom a tool reported, following the paper's Table IV
/// legend (PDL, GDL, TO/GDL, DL warning, CRASH, HANG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Symptom {
    /// Partial deadlock: one or more goroutines leaked.
    PartialDeadlock {
        /// How many goroutines leaked.
        leaked: usize,
    },
    /// Global deadlock (or timeout treated as one: "TO/GDL").
    GlobalDeadlock,
    /// A *warning* of a potential deadlock (LockDL's DL entries), issued
    /// even if the deadlock did not materialise in this run.
    PotentialDeadlock,
    /// The program crashed (e.g. send on closed channel).
    Crash,
    /// The program hung without a deadlock verdict (HANG).
    Hang,
    /// Nothing detected.
    None,
}

impl Symptom {
    /// Short code used in Table IV.
    pub fn code(&self) -> String {
        match self {
            Symptom::PartialDeadlock { leaked } => format!("PDL-{leaked}"),
            Symptom::GlobalDeadlock => "GDL".to_string(),
            Symptom::PotentialDeadlock => "DL".to_string(),
            Symptom::Crash => "CRASH".to_string(),
            Symptom::Hang => "HANG".to_string(),
            Symptom::None => "X".to_string(),
        }
    }
}

impl fmt::Display for Symptom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.code())
    }
}

/// One tool's verdict on one execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToolVerdict {
    /// Did the tool flag a bug?
    pub detected: bool,
    /// What it reported.
    pub symptom: Symptom,
    /// Human-readable detail for the report.
    pub detail: String,
}

impl ToolVerdict {
    /// A "nothing found" verdict.
    pub fn clean() -> Self {
        ToolVerdict { detected: false, symptom: Symptom::None, detail: String::new() }
    }
}

/// A dynamic bug detector that can execute a program once and judge it.
pub trait Detector {
    /// The tool's name as used in tables and figures.
    fn name(&self) -> &'static str;

    /// Execute the program under `cfg` and report.
    fn run_once(&self, cfg: Config, program: ProgramFn) -> ToolVerdict;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symptom_codes_match_table_iv_legend() {
        assert_eq!(Symptom::PartialDeadlock { leaked: 2 }.code(), "PDL-2");
        assert_eq!(Symptom::GlobalDeadlock.code(), "GDL");
        assert_eq!(Symptom::PotentialDeadlock.code(), "DL");
        assert_eq!(Symptom::Crash.code(), "CRASH");
        assert_eq!(Symptom::Hang.code(), "HANG");
        assert_eq!(Symptom::None.code(), "X");
    }

    #[test]
    fn clean_verdict() {
        let v = ToolVerdict::clean();
        assert!(!v.detected);
        assert_eq!(v.symptom, Symptom::None);
    }
}
