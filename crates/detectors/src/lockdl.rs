//! LockDL: a lock-set / lock-order-graph deadlock detector.
//!
//! Re-implements the detection principle of sasha-s/go-deadlock, the
//! "LockDL" baseline of §IV-A: every mutex lock/unlock is intercepted to
//! maintain each goroutine's *lock set* and a global *lock-order graph*.
//! The tool warns when
//!
//! 1. a goroutine locks a mutex it already holds (double-lock), or
//! 2. acquiring `b` while holding `a` creates a cycle in the lock-order
//!    graph (potential AB-BA deadlock — reported even when the deadlock
//!    does not materialise in this run), and
//! 3. a 30-second watchdog converts an actually-stuck program into a
//!    timeout report ("TO/GDL").
//!
//! Channel-only deadlocks are invisible to the lock-order analysis; only
//! the timeout can catch them — which is exactly the blind spot the
//! paper's Table IV exposes.

use crate::verdict::{Detector, ProgramFn, Symptom, ToolVerdict};
use goat_model::Cu;
use goat_runtime::{Config, Monitor, RunOutcome, Runtime};
use goat_trace::{Gid, RId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A directed lock-order graph: edge `a → b` means some goroutine
/// acquired `b` while holding `a`.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    edges: BTreeMap<RId, BTreeSet<RId>>,
}

impl LockGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add edge `a → b`; returns true if it is new.
    pub fn add_edge(&mut self, a: RId, b: RId) -> bool {
        self.edges.entry(a).or_default().insert(b)
    }

    /// Is `to` reachable from `from`?
    pub fn reachable(&self, from: RId, to: RId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(&n) {
                if next.contains(&to) {
                    return true;
                }
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Would adding `a → b` close a cycle (i.e. is `a` reachable from
    /// `b`)?
    pub fn would_cycle(&self, a: RId, b: RId) -> bool {
        self.reachable(b, a)
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }
}

/// A warning recorded by the LockDL monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockdlReport {
    /// A goroutine locked a mutex it already held.
    DoubleLock {
        /// The goroutine.
        g: Gid,
        /// The mutex.
        mu: RId,
        /// Where the second acquisition happened.
        at: Cu,
    },
    /// A lock acquisition closed a cycle in the lock-order graph.
    OrderCycle {
        /// The goroutine.
        g: Gid,
        /// The mutex already held.
        held: RId,
        /// The mutex being acquired.
        acquiring: RId,
        /// Where the offending acquisition happened.
        at: Cu,
    },
}

#[derive(Default)]
struct LockdlState {
    /// Held-lock stacks indexed densely by goroutine id (gids are
    /// runtime-assigned and small, so a flat table beats a tree and the
    /// slot borrow replaces the per-attempt clone the map forced).
    held: Vec<Vec<RId>>,
    graph: LockGraph,
    reports: Vec<LockdlReport>,
}

struct LockdlMonitor {
    st: Mutex<LockdlState>,
}

impl Monitor for LockdlMonitor {
    fn on_lock_attempt(&self, g: Gid, mu: RId, cu: &Cu) {
        let mut guard = self.st.lock();
        let st = &mut *guard;
        let held = st.held.get(g.0 as usize).map(Vec::as_slice).unwrap_or(&[]);
        if held.contains(&mu) {
            st.reports.push(LockdlReport::DoubleLock { g, mu, at: *cu });
            return;
        }
        for &h in held {
            if st.graph.would_cycle(h, mu) {
                st.reports.push(LockdlReport::OrderCycle { g, held: h, acquiring: mu, at: *cu });
            }
            st.graph.add_edge(h, mu);
        }
    }

    fn on_lock_acquired(&self, g: Gid, mu: RId, _cu: &Cu) {
        let mut st = self.st.lock();
        let i = g.0 as usize;
        if i >= st.held.len() {
            st.held.resize_with(i + 1, Vec::new);
        }
        st.held[i].push(mu);
    }

    fn on_unlock(&self, g: Gid, mu: RId) {
        let mut st = self.st.lock();
        // Go allows cross-goroutine unlock; release from whoever holds it.
        if let Some(v) = st.held.get_mut(g.0 as usize) {
            if let Some(pos) = v.iter().rposition(|&m| m == mu) {
                v.remove(pos);
                return;
            }
        }
        for v in st.held.iter_mut() {
            if let Some(pos) = v.iter().rposition(|&m| m == mu) {
                v.remove(pos);
                return;
            }
        }
    }
}

/// The LockDL baseline detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockdlDetector;

impl LockdlDetector {
    /// Create the detector.
    pub fn new() -> Self {
        LockdlDetector
    }

    /// Run once, returning both the verdict and the raw warnings.
    pub fn run_once_with_reports(
        &self,
        cfg: Config,
        program: ProgramFn,
    ) -> (ToolVerdict, Vec<LockdlReport>) {
        let cfg = cfg.with_trace(false);
        let monitor = Arc::new(LockdlMonitor { st: Mutex::new(LockdlState::default()) });
        let result = Runtime::run_monitored(cfg, Some(monitor.clone() as _), move || program());
        let reports = monitor.st.lock().reports.clone();
        let verdict = match result.outcome {
            _ if !reports.is_empty() => ToolVerdict {
                detected: true,
                symptom: Symptom::PotentialDeadlock,
                detail: format!("{} lock-order warning(s): {:?}", reports.len(), reports[0]),
            },
            // The 30 s watchdog: a stuck program times out.
            RunOutcome::GlobalDeadlock { .. } => ToolVerdict {
                detected: true,
                symptom: Symptom::GlobalDeadlock,
                detail: "timeout: program made no progress (TO/GDL)".to_string(),
            },
            RunOutcome::StepLimit | RunOutcome::TimedOut { .. } => ToolVerdict {
                detected: true,
                symptom: Symptom::Hang,
                detail: "watchdog timeout".to_string(),
            },
            RunOutcome::InfraFailure { ref reason } => ToolVerdict {
                detected: false,
                symptom: Symptom::None,
                detail: format!("infra failure: {reason}"),
            },
            RunOutcome::Panicked { g, msg } => ToolVerdict {
                detected: true,
                symptom: Symptom::Crash,
                detail: format!("panic in {g}: {msg}"),
            },
            // Unreachable for in-process detector runs, but the outcome
            // taxonomy is shared with the isolated campaign runner.
            RunOutcome::Crashed { ref forensics } => ToolVerdict {
                detected: true,
                symptom: Symptom::Crash,
                detail: format!("worker crashed: {}", forensics.summary),
            },
            RunOutcome::Completed => ToolVerdict::clean(),
        };
        (verdict, reports)
    }
}

impl Detector for LockdlDetector {
    fn name(&self) -> &'static str {
        "lockdl"
    }

    fn run_once(&self, cfg: Config, program: ProgramFn) -> ToolVerdict {
        self.run_once_with_reports(cfg, program).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goat_runtime::{go_named, gosched, Chan, Mutex as GoMutex};
    use std::sync::Arc;

    #[test]
    fn graph_cycle_detection() {
        let mut g = LockGraph::new();
        assert!(g.add_edge(RId(1), RId(2)));
        assert!(!g.add_edge(RId(1), RId(2)), "duplicate edge");
        g.add_edge(RId(2), RId(3));
        assert!(g.reachable(RId(1), RId(3)));
        assert!(!g.reachable(RId(3), RId(1)));
        assert!(g.would_cycle(RId(3), RId(1)));
        assert!(!g.would_cycle(RId(1), RId(3)));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn detects_ab_ba_even_without_deadlock_occurring() {
        // The two goroutines run serially here, so no deadlock happens —
        // but the lock-order cycle is still visible to LockDL.
        let (v, reports) = LockdlDetector::new().run_once_with_reports(
            Config::new(0).with_native_preempt_prob(0.0),
            Arc::new(|| {
                let a = GoMutex::new();
                let b = GoMutex::new();
                let (a2, b2) = (a.clone(), b.clone());
                go_named("ab", move || {
                    a2.lock();
                    b2.lock();
                    b2.unlock();
                    a2.unlock();
                });
                gosched();
                gosched();
                b.lock();
                a.lock();
                a.unlock();
                b.unlock();
            }),
        );
        assert!(v.detected, "{v:?}");
        assert_eq!(v.symptom, Symptom::PotentialDeadlock);
        assert!(matches!(reports[0], LockdlReport::OrderCycle { .. }));
    }

    #[test]
    fn detects_double_lock() {
        let (v, reports) = LockdlDetector::new().run_once_with_reports(
            Config::new(0),
            Arc::new(|| {
                let a = GoMutex::new();
                a.lock();
                a.lock(); // deadlocks, but the warning fires first
            }),
        );
        assert!(v.detected);
        assert!(matches!(reports[0], LockdlReport::DoubleLock { .. }));
    }

    #[test]
    fn channel_deadlock_only_caught_by_timeout() {
        let (v, reports) = LockdlDetector::new().run_once_with_reports(
            Config::new(0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                ch.recv();
            }),
        );
        assert!(reports.is_empty(), "no lock warnings for channel bugs");
        assert!(v.detected);
        assert_eq!(v.symptom, Symptom::GlobalDeadlock, "timeout path");
    }

    #[test]
    fn misses_channel_leak_entirely() {
        let v = LockdlDetector::new().run_once(
            Config::new(0).with_native_preempt_prob(0.0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                go_named("leaker", move || {
                    ch.recv();
                });
                gosched();
            }),
        );
        assert!(!v.detected, "{v:?}");
    }

    #[test]
    fn clean_program_is_clean() {
        let v = LockdlDetector::new().run_once(
            Config::new(0),
            Arc::new(|| {
                let a = GoMutex::new();
                a.lock();
                a.unlock();
                a.lock();
                a.unlock();
            }),
        );
        assert!(!v.detected);
    }

    #[test]
    fn consistent_order_no_warning() {
        let v = LockdlDetector::new().run_once(
            Config::new(0).with_native_preempt_prob(0.0),
            Arc::new(|| {
                let a = GoMutex::new();
                let b = GoMutex::new();
                for _ in 0..3 {
                    a.lock();
                    b.lock();
                    b.unlock();
                    a.unlock();
                }
            }),
        );
        assert!(!v.detected, "{v:?}");
    }
}
