//! goleak: Uber's end-of-main goroutine leak checker.
//!
//! The real tool snapshots the goroutine stack at the end of `main` (with
//! a short retry loop so goroutines that are *about to* finish do not
//! count) and reports every remaining application goroutine as a leak.
//! The runtime's grace-drain semantics model the retry loop: only
//! goroutines that are genuinely blocked remain alive by the time the
//! [`goat_runtime::Monitor::on_main_end`] hook fires.
//!
//! goleak cannot run at all when `main` itself never finishes — a global
//! deadlock shows up as a hang/timeout, not a goleak report, which is why
//! its Table IV column mixes `PDL` with `TO/GDL` entries.

use crate::verdict::{Detector, ProgramFn, Symptom, ToolVerdict};
use goat_runtime::{AliveGoroutine, Config, Monitor, RunOutcome, Runtime};
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Default)]
struct GoleakMonitor {
    leaks: Mutex<Option<Vec<AliveGoroutine>>>,
}

impl Monitor for GoleakMonitor {
    fn on_main_end(&self, alive: &[AliveGoroutine]) {
        *self.leaks.lock() = Some(alive.to_vec());
    }
}

/// The goleak baseline detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct GoleakDetector;

impl GoleakDetector {
    /// Create the detector.
    pub fn new() -> Self {
        GoleakDetector
    }

    /// Run once, returning the verdict and the leaked goroutines seen at
    /// the end of main (if main finished).
    pub fn run_once_with_leaks(
        &self,
        cfg: Config,
        program: ProgramFn,
    ) -> (ToolVerdict, Option<Vec<AliveGoroutine>>) {
        let cfg = cfg.with_trace(false);
        let monitor = Arc::new(GoleakMonitor::default());
        let result = Runtime::run_monitored(cfg, Some(monitor.clone() as _), move || program());
        let leaks = monitor.leaks.lock().clone();
        let verdict = match result.outcome {
            RunOutcome::Completed => match &leaks {
                Some(l) if !l.is_empty() => ToolVerdict {
                    detected: true,
                    symptom: Symptom::PartialDeadlock { leaked: l.len() },
                    detail: format!(
                        "found unexpected goroutines: {}",
                        l.iter()
                            .map(|a| format!("{} [{}] ({})", a.g, a.name, a.state))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                },
                _ => ToolVerdict::clean(),
            },
            // main never finished: goleak's check never ran; the user
            // sees a hang (reported as TO/GDL in Table IV).
            RunOutcome::GlobalDeadlock { .. } => ToolVerdict {
                detected: true,
                symptom: Symptom::GlobalDeadlock,
                detail: "main never finished (TO/GDL)".to_string(),
            },
            RunOutcome::StepLimit | RunOutcome::TimedOut { .. } => ToolVerdict {
                detected: true,
                symptom: Symptom::Hang,
                detail: "main never finished (hang)".to_string(),
            },
            RunOutcome::InfraFailure { reason } => ToolVerdict {
                detected: false,
                symptom: Symptom::None,
                detail: format!("infra failure: {reason}"),
            },
            RunOutcome::Panicked { g, msg } => ToolVerdict {
                detected: true,
                symptom: Symptom::Crash,
                detail: format!("panic in {g}: {msg}"),
            },
            // Unreachable for in-process detector runs, but the outcome
            // taxonomy is shared with the isolated campaign runner.
            RunOutcome::Crashed { forensics } => ToolVerdict {
                detected: true,
                symptom: Symptom::Crash,
                detail: format!("worker crashed: {}", forensics.summary),
            },
        };
        (verdict, leaks)
    }
}

impl Detector for GoleakDetector {
    fn name(&self) -> &'static str {
        "goleak"
    }

    fn run_once(&self, cfg: Config, program: ProgramFn) -> ToolVerdict {
        self.run_once_with_leaks(cfg, program).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goat_runtime::{go_named, gosched, Chan, WaitGroup};
    use std::sync::Arc;

    #[test]
    fn reports_leaked_goroutine_with_name() {
        let (v, leaks) = GoleakDetector::new().run_once_with_leaks(
            Config::new(0).with_native_preempt_prob(0.0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                go_named("stuck-receiver", move || {
                    ch.recv();
                });
                gosched();
            }),
        );
        assert!(v.detected);
        assert_eq!(v.symptom, Symptom::PartialDeadlock { leaked: 1 });
        let leaks = leaks.unwrap();
        assert_eq!(leaks[0].name, "stuck-receiver");
    }

    #[test]
    fn clean_program_reports_nothing() {
        let v = GoleakDetector::new().run_once(
            Config::new(0),
            Arc::new(|| {
                let wg = WaitGroup::new();
                wg.add(1);
                let wg2 = wg.clone();
                go_named("worker", move || wg2.done());
                wg.wait();
            }),
        );
        assert!(!v.detected, "{v:?}");
    }

    #[test]
    fn global_deadlock_prevents_goleak_from_running() {
        let (v, leaks) = GoleakDetector::new().run_once_with_leaks(
            Config::new(0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                ch.recv(); // main blocks forever
            }),
        );
        assert!(leaks.is_none(), "on_main_end never fired");
        assert!(v.detected);
        assert_eq!(v.symptom, Symptom::GlobalDeadlock);
    }

    #[test]
    fn counts_multiple_leaks() {
        let (v, _) = GoleakDetector::new().run_once_with_leaks(
            Config::new(0).with_native_preempt_prob(0.0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                for i in 0..3 {
                    let rx = ch.clone();
                    go_named(&format!("leak{i}"), move || {
                        rx.recv();
                    });
                }
                gosched();
            }),
        );
        assert_eq!(v.symptom, Symptom::PartialDeadlock { leaked: 3 });
    }
}
