//! Property-based tests for the LockDL lock-order graph and for
//! baseline-detector consistency on randomized lock programs.

use goat_detectors::{Detector, LockGraph, LockdlDetector};
use goat_runtime::{go_named, Config, Mutex, WaitGroup};
use goat_trace::RId;
use proptest::prelude::*;
use std::sync::Arc;

fn edges_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..12u64, 0..12u64), 0..40)
}

proptest! {
    #[test]
    fn reachability_is_transitive_and_monotone(edges in edges_strategy(), probe in (0..12u64, 0..12u64)) {
        let mut g = LockGraph::new();
        let mut reachable_before = Vec::new();
        for (i, &(a, b)) in edges.iter().enumerate() {
            // Monotonicity: nothing reachable becomes unreachable.
            if i == edges.len() / 2 {
                for x in 0..12u64 {
                    for y in 0..12u64 {
                        if g.reachable(RId(x), RId(y)) {
                            reachable_before.push((x, y));
                        }
                    }
                }
            }
            g.add_edge(RId(a), RId(b));
        }
        for (x, y) in reachable_before {
            prop_assert!(g.reachable(RId(x), RId(y)), "({x},{y}) lost");
        }
        // Transitivity on the probe: x→y and y→z implies x→z.
        let (x, y) = probe;
        if g.reachable(RId(x), RId(y)) {
            for z in 0..12u64 {
                if g.reachable(RId(y), RId(z)) {
                    prop_assert!(g.reachable(RId(x), RId(z)));
                }
            }
        }
        // would_cycle(a,b) ⇔ b reaches a.
        prop_assert_eq!(g.would_cycle(RId(x), RId(y)), g.reachable(RId(y), RId(x)));
        // Self edges always cycle.
        prop_assert!(g.would_cycle(RId(x), RId(x)));
    }

    #[test]
    fn edge_count_matches_distinct_edges(edges in edges_strategy()) {
        let mut g = LockGraph::new();
        let mut distinct = std::collections::BTreeSet::new();
        for &(a, b) in &edges {
            g.add_edge(RId(a), RId(b));
            distinct.insert((a, b));
        }
        prop_assert_eq!(g.edge_count(), distinct.len());
    }
}

// A random ascending-order lock program is deadlock-free and must never
// draw a LockDL warning (no false positives); a program with one
// descending pair must always draw one (no false negatives — LockDL
// warns on potential inversions even when no deadlock happens).
proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn lockdl_has_no_false_positives_on_ordered_programs(
        seqs in prop::collection::vec(prop::collection::vec(0..4usize, 1..4), 1..4),
        seed in 0u64..500,
    ) {
        let seqs = Arc::new(seqs);
        let v = LockdlDetector::new().run_once(
            Config::new(seed),
            Arc::new(move || {
                let mutexes: Vec<Mutex> = (0..4).map(|_| Mutex::new()).collect();
                let wg = WaitGroup::new();
                for (w, seq) in seqs.iter().enumerate() {
                    wg.add(1);
                    let mut order: Vec<usize> = seq.clone();
                    order.sort_unstable();
                    order.dedup(); // ascending, no re-entry
                    let mutexes = mutexes.clone();
                    let wg = wg.clone();
                    go_named(&format!("w{w}"), move || {
                        for &m in &order {
                            mutexes[m].lock();
                        }
                        for &m in order.iter().rev() {
                            mutexes[m].unlock();
                        }
                        wg.done();
                    });
                }
                wg.wait();
            }),
        );
        prop_assert!(!v.detected, "false positive: {v:?}");
    }

    #[test]
    fn lockdl_always_warns_on_an_inverted_pair(seed in 0u64..500) {
        let v = LockdlDetector::new().run_once(
            Config::new(seed),
            Arc::new(|| {
                let a = Mutex::new();
                let b = Mutex::new();
                let wg = WaitGroup::new();
                wg.add(2);
                {
                    let (a, b, wg) = (a.clone(), b.clone(), wg.clone());
                    go_named("ab", move || {
                        a.lock();
                        b.lock();
                        b.unlock();
                        a.unlock();
                        wg.done();
                    });
                }
                {
                    let (a, b, wg) = (a.clone(), b.clone(), wg.clone());
                    go_named("ba", move || {
                        b.lock();
                        a.lock();
                        a.unlock();
                        b.unlock();
                        wg.done();
                    });
                }
                wg.wait();
            }),
        );
        // Either the inversion warning fired, or the deadlock actually
        // materialised and the timeout caught it — LockDL reports both.
        prop_assert!(v.detected, "missed inversion: {v:?}");
    }
}
