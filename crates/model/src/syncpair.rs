//! A baseline concurrency-coverage metric for comparison:
//! **synchronization-pair coverage**.
//!
//! §II-D surveys earlier synchronization coverage models —
//! blocking-blocked [32], blocked-pair-follows [36] and
//! synchronization-pair [33] — designed for Java/pthreads, and argues
//! they do not transfer directly to Go's primitive mix. This module
//! implements the synchronization-pair family over the ECT so the claim
//! can be *measured* (see the `metric_compare` harness): a requirement
//! is an **ordered pair of CU sites** `(unblocker_site, blocked_site)`,
//! covered when an operation executed at `unblocker_site` wakes a
//! goroutine blocked at `blocked_site`.
//!
//! Contrast with GoAT's Req1–Req5 (the [`crate::coverage`] module):
//!
//! * sync-pair coverage has **no universe before execution** — pairs can
//!   only be enumerated after both sites were seen interacting, so it
//!   cannot drive a "which requirement is still uncovered" report;
//! * it says nothing about select-case choice or NOP behaviour, the two
//!   behaviours §II-B blames for Go's interleaving blow-up.

use crate::cu::{Cu, CuId, CuTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One synchronization pair: the waker's site and the sleeper's site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SyncPair {
    /// CU of the operation that performed the wakeup.
    pub unblocker: CuId,
    /// CU where the woken goroutine had blocked.
    pub blocked: CuId,
}

/// Accumulated synchronization-pair coverage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SyncPairCoverage {
    table: CuTable,
    pairs: BTreeSet<SyncPair>,
}

impl SyncPairCoverage {
    /// Empty coverage state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed wakeup edge between two sites.
    pub fn observe(&mut self, unblocker: &Cu, blocked: &Cu) -> bool {
        let u = self.lookup_or_insert(unblocker);
        let b = self.lookup_or_insert(blocked);
        self.pairs.insert(SyncPair { unblocker: u, blocked: b })
    }

    fn lookup_or_insert(&mut self, cu: &Cu) -> CuId {
        self.table.insert(*cu)
    }

    /// Number of distinct pairs observed so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Has nothing been observed?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate over observed pairs.
    pub fn iter(&self) -> impl Iterator<Item = &SyncPair> {
        self.pairs.iter()
    }

    /// The CU table backing pair ids.
    pub fn table(&self) -> &CuTable {
        &self.table
    }

    /// Merge another coverage state (site ids are re-mapped).
    pub fn merge(&mut self, other: &SyncPairCoverage) {
        for pair in &other.pairs {
            let u = *other.table.get(pair.unblocker);
            let b = *other.table.get(pair.blocked);
            self.observe(&u, &b);
        }
    }

    /// Render the observed pairs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.pairs {
            out.push_str(&format!(
                "{}  →  {}\n",
                self.table.get(p.unblocker),
                self.table.get(p.blocked)
            ));
        }
        out
    }
}

impl fmt::Display for SyncPairCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} synchronization pair(s) over {} site(s)", self.pairs.len(), self.table.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cu::CuKind;

    fn cu(line: u32, kind: CuKind) -> Cu {
        Cu::new("p.rs", line, kind)
    }

    #[test]
    fn observe_dedups_pairs() {
        let mut c = SyncPairCoverage::new();
        assert!(c.observe(&cu(1, CuKind::Send), &cu(2, CuKind::Recv)));
        assert!(!c.observe(&cu(1, CuKind::Send), &cu(2, CuKind::Recv)));
        assert!(c.observe(&cu(2, CuKind::Recv), &cu(1, CuKind::Send)), "pairs are ordered");
        assert_eq!(c.len(), 2);
        assert_eq!(c.table().len(), 2, "sites are shared across pairs");
    }

    #[test]
    fn merge_remaps_site_ids() {
        let mut a = SyncPairCoverage::new();
        a.observe(&cu(1, CuKind::Send), &cu(2, CuKind::Recv));
        let mut b = SyncPairCoverage::new();
        b.observe(&cu(9, CuKind::Unlock), &cu(8, CuKind::Lock));
        b.observe(&cu(1, CuKind::Send), &cu(2, CuKind::Recv)); // shared pair
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.render().contains("p.rs:9"), "{}", a.render());
    }

    #[test]
    fn display_counts() {
        let mut c = SyncPairCoverage::new();
        assert!(c.is_empty());
        c.observe(&cu(1, CuKind::Close), &cu(3, CuKind::Recv));
        assert_eq!(c.to_string(), "1 synchronization pair(s) over 2 site(s)");
    }
}
