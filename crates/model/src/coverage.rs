//! Coverage requirements for concurrent Go-style programs (paper §III-C).
//!
//! GoAT proposes a concurrency coverage metric whose requirements
//! characterise the dynamic behaviour of every concurrency usage (CU):
//!
//! * **Req1 (Send/Recv)** — `{blocked, unblocking, NOP}`
//! * **Req2 (Select-Case)** — `{blocked, unblocking, NOP} × {case_i}`,
//!   with cases materialised at runtime; selects with a `default` case are
//!   non-blocking, so their channel cases degrade to Req4 and the default
//!   case itself is a single NOP requirement.
//! * **Req3 (Lock)** — `{blocked, blocking}`
//! * **Req4 (Unblocking)** — `{unblocking, NOP}` for close / unlock /
//!   signal / broadcast / done / non-blocking select cases
//! * **Req5 (Go)** — `{NOP}`: covered when the goroutine creation runs.
//!
//! A [`RequirementUniverse`] holds the full set of requirement instances
//! for a program (derived from its static [`CuTable`] and expanded at
//! runtime for select cases); a [`CoverageSet`] records which instances a
//! set of test executions covered. The ratio of the two is the coverage
//! percentage plotted in the paper's Figure 6.
//!
//! # The dense-ID data plane
//!
//! Requirement instances are interned process-wide into dense [`ReqId`]s
//! (the same append-only-arena idiom as [`crate::Istr`]), and a
//! [`CoverageSet`] is a growable `u64` bitset over those ids: `cover` is
//! a bit-set, `merge` is a bitwise OR and `percent` is a popcount. The
//! id assignment is an internal detail — everything observable
//! (iteration order, serialization, `Debug`) is expressed in sorted
//! [`ReqKey`]s, so reports and snapshots are byte-identical to the
//! key-set representation this replaced.

use crate::cu::{Cu, CuId, CuKind, CuTable};
use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// The dynamic behaviour a requirement asks to observe at a CU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReqValue {
    /// The goroutine blocked at this CU (e.g. send with no receiver ready).
    Blocked,
    /// The operation woke up at least one blocked goroutine.
    Unblocking,
    /// The goroutine held a resource while another goroutine blocked on it
    /// (the *blocking* side of Req3).
    Blocking,
    /// The operation completed without blocking or unblocking anyone.
    Nop,
}

impl ReqValue {
    /// Short name as printed in coverage tables.
    pub fn name(self) -> &'static str {
        match self {
            ReqValue::Blocked => "blocked",
            ReqValue::Unblocking => "unblocking",
            ReqValue::Blocking => "blocking",
            ReqValue::Nop => "nop",
        }
    }

    /// Dense slot index used by the per-CU requirement-id tables.
    fn slot(self) -> usize {
        match self {
            ReqValue::Blocked => 0,
            ReqValue::Unblocking => 1,
            ReqValue::Blocking => 2,
            ReqValue::Nop => 3,
        }
    }
}

impl fmt::Display for ReqValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The flavour of a select case, discovered at runtime (Req2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CaseFlavor {
    /// A `send` case.
    Send,
    /// A `recv` case.
    Recv,
    /// The `default` case of a non-blocking select.
    Default,
}

impl fmt::Display for CaseFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CaseFlavor::Send => "send",
            CaseFlavor::Recv => "recv",
            CaseFlavor::Default => "default",
        })
    }
}

/// Which part of a CU a requirement refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReqTarget {
    /// The CU itself (everything except select cases).
    Op,
    /// Case `idx` of a select CU, with its flavour.
    Case {
        /// 0-based case index within the select statement.
        idx: usize,
        /// Send/recv/default flavour of the case.
        flavor: CaseFlavor,
    },
}

/// One coverage requirement instance: *observe behaviour `value` at
/// target `target` of CU `cu`*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqKey {
    /// The CU this requirement instance belongs to.
    pub cu: CuId,
    /// Op-level or select-case-level target.
    pub target: ReqTarget,
    /// The behaviour to observe.
    pub value: ReqValue,
}

impl ReqKey {
    /// Requirement on the CU operation itself.
    pub fn op(cu: CuId, value: ReqValue) -> Self {
        ReqKey { cu, target: ReqTarget::Op, value }
    }

    /// Requirement on a select case.
    pub fn case(cu: CuId, idx: usize, flavor: CaseFlavor, value: ReqValue) -> Self {
        ReqKey { cu, target: ReqTarget::Case { idx, flavor }, value }
    }
}

/// Dense process-wide id of an interned [`ReqKey`] (index into the
/// requirement arena). Ids are assignment-order dependent and therefore
/// never serialized or compared across processes — they exist purely so
/// the per-iteration analysis hot path can replace tree-set operations
/// on fat composite keys with bit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u32);

/// Process-wide append-only requirement arena (the [`crate::Istr`]
/// idiom): every distinct [`ReqKey`] ever covered or added to a universe
/// gets one dense id for the lifetime of the process.
struct ReqArena {
    ids: HashMap<ReqKey, u32>,
    keys: Vec<ReqKey>,
}

fn arena() -> &'static RwLock<ReqArena> {
    static ARENA: OnceLock<RwLock<ReqArena>> = OnceLock::new();
    ARENA.get_or_init(|| RwLock::new(ReqArena { ids: HashMap::new(), keys: Vec::new() }))
}

/// Intern a key, assigning the next dense id on first sight.
fn intern(key: ReqKey) -> ReqId {
    if let Some(&id) = arena().read().expect("req arena poisoned").ids.get(&key) {
        return ReqId(id);
    }
    let mut a = arena().write().expect("req arena poisoned");
    if let Some(&id) = a.ids.get(&key) {
        return ReqId(id);
    }
    let id = u32::try_from(a.keys.len()).expect("requirement arena overflow");
    a.keys.push(key);
    a.ids.insert(key, id);
    ReqId(id)
}

/// Non-inserting lookup, for `contains`-style queries.
fn lookup(key: &ReqKey) -> Option<ReqId> {
    arena().read().expect("req arena poisoned").ids.get(key).copied().map(ReqId)
}

/// Resolve an id back to its key (total for ids produced by `intern`).
fn resolve_id(id: ReqId) -> ReqKey {
    arena().read().expect("req arena poisoned").keys[id.0 as usize]
}

/// A requirement key together with its resolved CU, for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requirement {
    /// The key identifying the requirement instance.
    pub key: ReqKey,
    /// The CU the key's id resolves to.
    pub cu: Cu,
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.key.target {
            ReqTarget::Op => write!(f, "{} :: {}", self.cu, self.key.value),
            ReqTarget::Case { idx, flavor } => {
                write!(f, "{} :: case{}({}) {}", self.cu, idx, flavor, self.key.value)
            }
        }
    }
}

/// The requirement values Table I assigns to an op-level CU kind.
///
/// Select CUs return an empty slice here: their requirements are per-case
/// and materialised at runtime via
/// [`RequirementUniverse::discover_select_case`].
pub fn op_requirements(kind: CuKind) -> &'static [ReqValue] {
    use ReqValue::*;
    match kind {
        // Req1
        CuKind::Send | CuKind::Recv => &[Blocked, Unblocking, Nop],
        // Range is a repeated receive; same requirement set as recv.
        CuKind::Range => &[Blocked, Unblocking, Nop],
        // Req3
        CuKind::Lock => &[Blocked, Blocking],
        // Req4
        CuKind::Close | CuKind::Unlock | CuKind::Signal | CuKind::Broadcast | CuKind::Done => {
            &[Unblocking, Nop]
        }
        // wait (WaitGroup.wait / Cond.wait) either blocks or passes through
        CuKind::Wait => &[Blocked, Nop],
        // Req5 plus bookkeeping kinds that are covered by executing them.
        CuKind::Go | CuKind::Add => &[Nop],
        // Req2: per-case, dynamic.
        CuKind::Select => &[],
    }
}

/// The full (growing) set of requirement instances for one program.
///
/// Constructed from the static model `M` and expanded at runtime when
/// select cases — and CUs missed by the static pass — are discovered.
///
/// Alongside the sorted key set (the deterministic face used by reports
/// and serialization), the universe maintains dense side tables for the
/// analysis hot path: a membership bitset over interned [`ReqId`]s and a
/// per-CU table of pre-interned op-requirement ids, so the per-event
/// covering in trace analysis is an array index plus a bit-set with no
/// tree or hash lookups.
///
/// ```
/// use goat_model::{Cu, CuKind, CuTable, RequirementUniverse};
/// let m = CuTable::from_cus([
///     Cu::new("p.rs", 1, CuKind::Send),
///     Cu::new("p.rs", 2, CuKind::Go),
/// ]);
/// let u = RequirementUniverse::from_table(m);
/// assert_eq!(u.len(), 3 + 1); // send: 3 values, go: 1
/// ```
#[derive(Debug, Clone, Default)]
pub struct RequirementUniverse {
    table: CuTable,
    reqs: BTreeSet<ReqKey>,
    /// (cu, case idx) pairs already materialised, to make discovery idempotent.
    seen_cases: BTreeSet<(CuId, usize)>,
    /// True for selects known to carry a default case (affects Req2 vs Req4).
    nonblocking_selects: BTreeSet<CuId>,
    /// Membership bitset mirroring `reqs` (rebuilt on deserialize).
    members: CoverageSet,
    /// Per-CU interned ids for all four op-level requirement values
    /// (indexed by `CuId.0` then [`ReqValue::slot`]); interned for every
    /// CU regardless of Table-I membership so the extractor can cover
    /// out-of-universe keys without touching the arena lock.
    op_ids: Vec<[u32; 4]>,
    /// Exact-`Cu` memo over `table.lookup`, so per-event CU resolution in
    /// the analysis hot path is one hash probe instead of a tree lookup
    /// plus path-suffix matching.
    cu_memo: HashMap<Cu, CuId>,
}

impl RequirementUniverse {
    /// An empty universe (requirements appear as CUs are discovered).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the universe implied by a static CU table.
    pub fn from_table(table: CuTable) -> Self {
        let mut u = RequirementUniverse { table, ..Self::default() };
        let ids: Vec<CuId> = u.table.iter().map(|(id, _)| id).collect();
        for id in ids {
            u.add_op_requirements(id);
        }
        u
    }

    /// Intern the four op-value ids for `id`, growing the dense table.
    fn ensure_op_ids(&mut self, id: CuId) {
        while self.op_ids.len() <= id.0 {
            let next = CuId(self.op_ids.len());
            let mut slots = [0u32; 4];
            for v in [ReqValue::Blocked, ReqValue::Unblocking, ReqValue::Blocking, ReqValue::Nop] {
                slots[v.slot()] = intern(ReqKey::op(next, v)).0;
            }
            self.op_ids.push(slots);
        }
    }

    fn add_op_requirements(&mut self, id: CuId) {
        self.ensure_op_ids(id);
        let kind = self.table.get(id).kind;
        for &v in op_requirements(kind) {
            if self.reqs.insert(ReqKey::op(id, v)) {
                self.members.cover_id(ReqId(self.op_ids[id.0][v.slot()]));
            }
        }
    }

    /// The CU table backing this universe.
    pub fn table(&self) -> &CuTable {
        &self.table
    }

    /// Rebuild the CU table's lookup index (needed after
    /// deserialization — the index is `#[serde(skip)]`; without it every
    /// dynamically discovered CU would re-insert as a fresh site).
    pub fn reindex(&mut self) {
        self.table.reindex();
    }

    /// Register a CU discovered dynamically (returns its id). New sites
    /// contribute their op-level requirements immediately.
    pub fn discover_cu(&mut self, cu: Cu) -> CuId {
        if let Some(&id) = self.cu_memo.get(&cu) {
            return id;
        }
        let id = match self.table.lookup(&cu.file, cu.line, cu.kind) {
            Some(id) => id,
            None => {
                let id = self.table.insert(cu);
                self.add_op_requirements(id);
                id
            }
        };
        self.cu_memo.insert(cu, id);
        id
    }

    /// The pre-interned id of op-level requirement `(cu, v)`. The id is
    /// valid even for values outside the CU kind's Table-I set (the
    /// extractor may observe, e.g., the *blocking* side of a channel
    /// operation); such ids are simply not universe members.
    ///
    /// # Panics
    /// Panics if `cu` was not discovered through this universe.
    #[inline]
    pub fn op_req_id(&self, cu: CuId, v: ReqValue) -> ReqId {
        ReqId(self.op_ids[cu.0][v.slot()])
    }

    /// Materialise the Req2/Req4 requirements for case `idx` of select
    /// `cu`, observed at runtime.
    ///
    /// `has_default` is whether the *select statement* carries a default
    /// case: per Table I a non-blocking select's channel cases only have
    /// the Req4 set `{unblocking, NOP}` while a blocking select's cases
    /// carry the full Req1 set.
    pub fn discover_select_case(
        &mut self,
        cu: CuId,
        idx: usize,
        flavor: CaseFlavor,
        has_default: bool,
    ) {
        if has_default {
            self.nonblocking_selects.insert(cu);
        }
        if !self.seen_cases.insert((cu, idx)) {
            return;
        }
        use ReqValue::*;
        let values: &[ReqValue] = match flavor {
            CaseFlavor::Default => &[Nop],
            CaseFlavor::Send | CaseFlavor::Recv => {
                if has_default {
                    &[Unblocking, Nop]
                } else {
                    &[Blocked, Unblocking, Nop]
                }
            }
        };
        for &v in values {
            let key = ReqKey::case(cu, idx, flavor, v);
            if self.reqs.insert(key) {
                self.members.cover_id(intern(key));
            }
        }
    }

    /// Number of requirement instances currently in the universe.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Is the universe empty?
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Does the universe contain this requirement instance?
    pub fn contains(&self, key: &ReqKey) -> bool {
        self.reqs.contains(key)
    }

    /// Iterate over all requirement instances.
    pub fn iter(&self) -> impl Iterator<Item = &ReqKey> {
        self.reqs.iter()
    }

    /// Resolve a key into a displayable [`Requirement`].
    pub fn resolve(&self, key: ReqKey) -> Requirement {
        Requirement { key, cu: *self.table.get(key.cu) }
    }

    /// Requirements not covered by `covered`, for the paper's "actions for
    /// uncovered requirements" report.
    pub fn uncovered<'a>(&'a self, covered: &'a CoverageSet) -> impl Iterator<Item = &'a ReqKey> {
        self.reqs.iter().filter(move |k| !covered.contains(k))
    }

    /// Rebuild the dense side tables from the sorted key set (after
    /// deserialization, which only carries the deterministic fields).
    fn rebuild_dense(&mut self) {
        self.members = CoverageSet::new();
        self.op_ids.clear();
        self.cu_memo.clear();
        let n = self.table.len();
        if n > 0 {
            self.ensure_op_ids(CuId(n - 1));
        }
        let keys: Vec<ReqKey> = self.reqs.iter().copied().collect();
        for key in keys {
            self.members.cover_id(intern(key));
        }
    }
}

// Hand-written (de)serialization: only the deterministic, sorted fields
// travel (same shape the derived impl produced for the key-set
// representation); the dense arena-id tables are process-local and are
// rebuilt on read.
impl Serialize for RequirementUniverse {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("table".to_string(), self.table.to_content()),
            ("reqs".to_string(), self.reqs.to_content()),
            ("seen_cases".to_string(), self.seen_cases.to_content()),
            ("nonblocking_selects".to_string(), self.nonblocking_selects.to_content()),
        ])
    }
}

impl Deserialize for RequirementUniverse {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let fields = c.as_map().ok_or_else(|| DeError::custom("expected object"))?;
        let mut u = RequirementUniverse {
            table: serde::de_field(fields, "table")?,
            reqs: serde::de_field(fields, "reqs")?,
            seen_cases: serde::de_field(fields, "seen_cases")?,
            nonblocking_selects: serde::de_field(fields, "nonblocking_selects")?,
            ..Self::default()
        };
        u.rebuild_dense();
        Ok(u)
    }
}

/// The set of requirement instances covered by one or more executions.
///
/// Backed by a growable `u64` bitset over process-wide dense [`ReqId`]s:
/// covering sets a bit, merging is a word-wise OR and the coverage
/// percentage is a popcount. All observable output (iteration,
/// serialization, `Debug`, equality) is in terms of sorted [`ReqKey`]s,
/// independent of id-assignment order.
#[derive(Clone, Default)]
pub struct CoverageSet {
    words: Vec<u64>,
    count: u32,
}

impl CoverageSet {
    /// An empty coverage set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark a requirement as covered; returns true if it was new.
    pub fn cover(&mut self, key: ReqKey) -> bool {
        self.cover_id(intern(key))
    }

    /// Mark a pre-interned requirement id as covered; returns true if it
    /// was new. This is the analysis hot path: no locks, no comparisons.
    #[inline]
    pub fn cover_id(&mut self, id: ReqId) -> bool {
        let (w, bit) = (id.0 as usize / 64, 1u64 << (id.0 % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let new = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.count += u32::from(new);
        new
    }

    /// Was this requirement covered?
    pub fn contains(&self, key: &ReqKey) -> bool {
        lookup(key).map(|id| self.contains_id(id)).unwrap_or(false)
    }

    /// Was this pre-interned requirement id covered?
    #[inline]
    pub fn contains_id(&self, id: ReqId) -> bool {
        self.words.get(id.0 as usize / 64).map(|w| w & (1 << (id.0 % 64)) != 0).unwrap_or(false)
    }

    /// Number of covered requirements.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Is nothing covered yet?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Union with another coverage set (accumulation across test runs):
    /// a word-wise OR.
    pub fn merge(&mut self, other: &CoverageSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut count = 0u32;
        for (i, w) in self.words.iter_mut().enumerate() {
            *w |= other.words.get(i).copied().unwrap_or(0);
            count += w.count_ones();
        }
        self.count = count;
    }

    /// Forget everything while keeping the allocation — the reset used by
    /// recycled analysis scratch buffers.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.count = 0;
    }

    /// Iterate over covered requirement keys, in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = ReqKey> {
        let mut keys: Vec<ReqKey> = Vec::with_capacity(self.len());
        for (i, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros();
                keys.push(resolve_id(ReqId((i * 64) as u32 + b)));
                bits &= bits - 1;
            }
        }
        keys.sort_unstable();
        keys.into_iter()
    }

    /// Bits set in both `self` and `other`.
    fn intersect_count(&self, other: &CoverageSet) -> usize {
        self.words.iter().zip(other.words.iter()).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Coverage percentage against a universe, in `[0, 100]`.
    ///
    /// Only requirements that are in the universe count (stale keys from a
    /// previous universe are ignored). An empty universe is 100 % covered.
    pub fn percent(&self, universe: &RequirementUniverse) -> f64 {
        if universe.is_empty() {
            return 100.0;
        }
        let hit = self.intersect_count(&universe.members);
        100.0 * hit as f64 / universe.len() as f64
    }
}

impl fmt::Debug for CoverageSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl PartialEq for CoverageSet {
    fn eq(&self, other: &Self) -> bool {
        if self.count != other.count {
            return false;
        }
        let (short, long) =
            if self.words.len() <= other.words.len() { (self, other) } else { (other, self) };
        short.words.iter().zip(long.words.iter()).all(|(a, b)| a == b)
            && long.words[short.words.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for CoverageSet {}

// The wire format is the sorted key list the key-set representation
// serialized (`{"covered": [...]}`), keeping checkpoints and any
// embedded coverage output byte-identical and id-order independent.
impl Serialize for CoverageSet {
    fn to_content(&self) -> Content {
        let keys: Vec<ReqKey> = self.iter().collect();
        Content::Map(vec![("covered".to_string(), keys.to_content())])
    }
}

impl Deserialize for CoverageSet {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let fields = c.as_map().ok_or_else(|| DeError::custom("expected object"))?;
        let keys: Vec<ReqKey> = serde::de_field(fields, "covered")?;
        Ok(keys.into_iter().collect())
    }
}

impl FromIterator<ReqKey> for CoverageSet {
    fn from_iter<I: IntoIterator<Item = ReqKey>>(iter: I) -> Self {
        let mut set = CoverageSet::new();
        set.extend(iter);
        set
    }
}

impl Extend<ReqKey> for CoverageSet {
    fn extend<I: IntoIterator<Item = ReqKey>>(&mut self, iter: I) {
        for key in iter {
            self.cover(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CuTable {
        CuTable::from_cus([
            Cu::new("p.rs", 1, CuKind::Send),
            Cu::new("p.rs", 2, CuKind::Recv),
            Cu::new("p.rs", 3, CuKind::Lock),
            Cu::new("p.rs", 4, CuKind::Unlock),
            Cu::new("p.rs", 5, CuKind::Go),
            Cu::new("p.rs", 6, CuKind::Select),
        ])
    }

    #[test]
    fn universe_sizes_follow_table_i() {
        let u = RequirementUniverse::from_table(table());
        // send 3 + recv 3 + lock 2 + unlock 2 + go 1 + select 0 = 11
        assert_eq!(u.len(), 11);
    }

    #[test]
    fn select_cases_expand_universe() {
        let mut u = RequirementUniverse::from_table(table());
        let sel = u.table().lookup("p.rs", 6, CuKind::Select).unwrap();
        let before = u.len();
        u.discover_select_case(sel, 0, CaseFlavor::Recv, false);
        assert_eq!(u.len(), before + 3);
        // idempotent
        u.discover_select_case(sel, 0, CaseFlavor::Recv, false);
        assert_eq!(u.len(), before + 3);
        u.discover_select_case(sel, 1, CaseFlavor::Send, false);
        assert_eq!(u.len(), before + 6);
    }

    #[test]
    fn nonblocking_select_cases_use_req4() {
        let mut u = RequirementUniverse::from_table(table());
        let sel = u.table().lookup("p.rs", 6, CuKind::Select).unwrap();
        let before = u.len();
        u.discover_select_case(sel, 0, CaseFlavor::Recv, true);
        assert_eq!(u.len(), before + 2); // {unblocking, nop}
        u.discover_select_case(sel, 1, CaseFlavor::Default, true);
        assert_eq!(u.len(), before + 3); // default adds one NOP
    }

    #[test]
    fn coverage_percent_monotone_under_merge() {
        let u = RequirementUniverse::from_table(table());
        let keys: Vec<ReqKey> = u.iter().copied().collect();
        let mut a = CoverageSet::new();
        a.cover(keys[0]);
        let p1 = a.percent(&u);
        let mut b = CoverageSet::new();
        b.cover(keys[1]);
        b.cover(keys[2]);
        a.merge(&b);
        assert!(a.percent(&u) >= p1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn percent_bounds() {
        let u = RequirementUniverse::from_table(table());
        let empty = CoverageSet::new();
        assert_eq!(empty.percent(&u), 0.0);
        let full: CoverageSet = u.iter().copied().collect();
        assert_eq!(full.percent(&u), 100.0);
        let empty_universe = RequirementUniverse::new();
        assert_eq!(empty.percent(&empty_universe), 100.0);
    }

    #[test]
    fn discover_cu_is_idempotent_and_grows() {
        let mut u = RequirementUniverse::new();
        let id1 = u.discover_cu(Cu::new("q.rs", 9, CuKind::Send));
        let n = u.len();
        assert_eq!(n, 3);
        let id2 = u.discover_cu(Cu::new("/abs/q.rs", 9, CuKind::Send));
        assert_eq!(id1, id2);
        assert_eq!(u.len(), n);
    }

    #[test]
    fn uncovered_reporting() {
        let u =
            RequirementUniverse::from_table(CuTable::from_cus([Cu::new("p.rs", 1, CuKind::Lock)]));
        let mut c = CoverageSet::new();
        let first = *u.iter().next().unwrap();
        c.cover(first);
        let un: Vec<_> = u.uncovered(&c).collect();
        assert_eq!(un.len(), 1);
    }

    #[test]
    fn requirement_display_is_informative() {
        let mut u = RequirementUniverse::new();
        let id = u.discover_cu(Cu::new("p.rs", 6, CuKind::Select));
        u.discover_select_case(id, 0, CaseFlavor::Recv, false);
        let key = *u.iter().next().unwrap();
        let s = u.resolve(key).to_string();
        assert!(s.contains("p.rs:6"), "{s}");
        assert!(s.contains("case0"), "{s}");
    }

    // -- dense data-plane behaviour ----------------------------------

    #[test]
    fn bitset_equality_ignores_trailing_zero_words() {
        let u = RequirementUniverse::from_table(table());
        let key = *u.iter().next().unwrap();
        let mut a = CoverageSet::new();
        a.cover(key);
        let mut b = CoverageSet::new();
        // Force b to grow extra words, then clear them again.
        b.cover_id(ReqId(300));
        b.clear();
        b.cover(key);
        assert_eq!(a, b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn cover_id_and_cover_agree() {
        let mut u = RequirementUniverse::new();
        let id = u.discover_cu(Cu::new("r.rs", 3, CuKind::Send));
        let mut by_key = CoverageSet::new();
        by_key.cover(ReqKey::op(id, ReqValue::Blocked));
        let mut by_id = CoverageSet::new();
        by_id.cover_id(u.op_req_id(id, ReqValue::Blocked));
        assert_eq!(by_key, by_id);
        assert!(by_id.contains(&ReqKey::op(id, ReqValue::Blocked)));
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let u = RequirementUniverse::from_table(table());
        let mut c: CoverageSet = u.iter().copied().collect();
        assert!(!c.is_empty());
        let words = c.words.len();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.words.len(), words, "clear keeps the backing words");
        assert_eq!(c.percent(&u), 0.0);
    }

    #[test]
    fn iteration_is_sorted_by_key_not_id() {
        let u = RequirementUniverse::from_table(table());
        // Cover in reverse order; iteration must come back sorted.
        let mut keys: Vec<ReqKey> = u.iter().copied().collect();
        keys.reverse();
        let c: CoverageSet = keys.iter().copied().collect();
        let out: Vec<ReqKey> = c.iter().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted);
    }

    #[test]
    fn serde_roundtrip_preserves_set_and_shape() {
        let u = RequirementUniverse::from_table(table());
        let c: CoverageSet = u.iter().copied().collect();
        let content = c.to_content();
        let map = content.as_map().expect("object");
        assert_eq!(map.len(), 1);
        assert_eq!(map[0].0, "covered");
        let back = CoverageSet::from_content(&content).unwrap();
        assert_eq!(back, c);

        let uc = u.to_content();
        let mut u2 = RequirementUniverse::from_content(&uc).unwrap();
        u2.reindex();
        assert_eq!(u2.len(), u.len());
        assert_eq!(c.percent(&u2), 100.0, "dense tables rebuilt on deserialize");
        let id = u2.discover_cu(Cu::new("p.rs", 1, CuKind::Send));
        assert_eq!(id, u.table().lookup("p.rs", 1, CuKind::Send).unwrap());
    }
}
