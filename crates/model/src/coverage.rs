//! Coverage requirements for concurrent Go-style programs (paper §III-C).
//!
//! GoAT proposes a concurrency coverage metric whose requirements
//! characterise the dynamic behaviour of every concurrency usage (CU):
//!
//! * **Req1 (Send/Recv)** — `{blocked, unblocking, NOP}`
//! * **Req2 (Select-Case)** — `{blocked, unblocking, NOP} × {case_i}`,
//!   with cases materialised at runtime; selects with a `default` case are
//!   non-blocking, so their channel cases degrade to Req4 and the default
//!   case itself is a single NOP requirement.
//! * **Req3 (Lock)** — `{blocked, blocking}`
//! * **Req4 (Unblocking)** — `{unblocking, NOP}` for close / unlock /
//!   signal / broadcast / done / non-blocking select cases
//! * **Req5 (Go)** — `{NOP}`: covered when the goroutine creation runs.
//!
//! A [`RequirementUniverse`] holds the full set of requirement instances
//! for a program (derived from its static [`CuTable`] and expanded at
//! runtime for select cases); a [`CoverageSet`] records which instances a
//! set of test executions covered. The ratio of the two is the coverage
//! percentage plotted in the paper's Figure 6.

use crate::cu::{Cu, CuId, CuKind, CuTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The dynamic behaviour a requirement asks to observe at a CU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReqValue {
    /// The goroutine blocked at this CU (e.g. send with no receiver ready).
    Blocked,
    /// The operation woke up at least one blocked goroutine.
    Unblocking,
    /// The goroutine held a resource while another goroutine blocked on it
    /// (the *blocking* side of Req3).
    Blocking,
    /// The operation completed without blocking or unblocking anyone.
    Nop,
}

impl ReqValue {
    /// Short name as printed in coverage tables.
    pub fn name(self) -> &'static str {
        match self {
            ReqValue::Blocked => "blocked",
            ReqValue::Unblocking => "unblocking",
            ReqValue::Blocking => "blocking",
            ReqValue::Nop => "nop",
        }
    }
}

impl fmt::Display for ReqValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The flavour of a select case, discovered at runtime (Req2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CaseFlavor {
    /// A `send` case.
    Send,
    /// A `recv` case.
    Recv,
    /// The `default` case of a non-blocking select.
    Default,
}

impl fmt::Display for CaseFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CaseFlavor::Send => "send",
            CaseFlavor::Recv => "recv",
            CaseFlavor::Default => "default",
        })
    }
}

/// Which part of a CU a requirement refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReqTarget {
    /// The CU itself (everything except select cases).
    Op,
    /// Case `idx` of a select CU, with its flavour.
    Case {
        /// 0-based case index within the select statement.
        idx: usize,
        /// Send/recv/default flavour of the case.
        flavor: CaseFlavor,
    },
}

/// One coverage requirement instance: *observe behaviour `value` at
/// target `target` of CU `cu`*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqKey {
    /// The CU this requirement instance belongs to.
    pub cu: CuId,
    /// Op-level or select-case-level target.
    pub target: ReqTarget,
    /// The behaviour to observe.
    pub value: ReqValue,
}

impl ReqKey {
    /// Requirement on the CU operation itself.
    pub fn op(cu: CuId, value: ReqValue) -> Self {
        ReqKey { cu, target: ReqTarget::Op, value }
    }

    /// Requirement on a select case.
    pub fn case(cu: CuId, idx: usize, flavor: CaseFlavor, value: ReqValue) -> Self {
        ReqKey { cu, target: ReqTarget::Case { idx, flavor }, value }
    }
}

/// A requirement key together with its resolved CU, for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requirement {
    /// The key identifying the requirement instance.
    pub key: ReqKey,
    /// The CU the key's id resolves to.
    pub cu: Cu,
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.key.target {
            ReqTarget::Op => write!(f, "{} :: {}", self.cu, self.key.value),
            ReqTarget::Case { idx, flavor } => {
                write!(f, "{} :: case{}({}) {}", self.cu, idx, flavor, self.key.value)
            }
        }
    }
}

/// The requirement values Table I assigns to an op-level CU kind.
///
/// Select CUs return an empty slice here: their requirements are per-case
/// and materialised at runtime via
/// [`RequirementUniverse::discover_select_case`].
pub fn op_requirements(kind: CuKind) -> &'static [ReqValue] {
    use ReqValue::*;
    match kind {
        // Req1
        CuKind::Send | CuKind::Recv => &[Blocked, Unblocking, Nop],
        // Range is a repeated receive; same requirement set as recv.
        CuKind::Range => &[Blocked, Unblocking, Nop],
        // Req3
        CuKind::Lock => &[Blocked, Blocking],
        // Req4
        CuKind::Close | CuKind::Unlock | CuKind::Signal | CuKind::Broadcast | CuKind::Done => {
            &[Unblocking, Nop]
        }
        // wait (WaitGroup.wait / Cond.wait) either blocks or passes through
        CuKind::Wait => &[Blocked, Nop],
        // Req5 plus bookkeeping kinds that are covered by executing them.
        CuKind::Go | CuKind::Add => &[Nop],
        // Req2: per-case, dynamic.
        CuKind::Select => &[],
    }
}

/// The full (growing) set of requirement instances for one program.
///
/// Constructed from the static model `M` and expanded at runtime when
/// select cases — and CUs missed by the static pass — are discovered.
///
/// ```
/// use goat_model::{Cu, CuKind, CuTable, RequirementUniverse};
/// let m = CuTable::from_cus([
///     Cu::new("p.rs", 1, CuKind::Send),
///     Cu::new("p.rs", 2, CuKind::Go),
/// ]);
/// let u = RequirementUniverse::from_table(m);
/// assert_eq!(u.len(), 3 + 1); // send: 3 values, go: 1
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RequirementUniverse {
    table: CuTable,
    reqs: BTreeSet<ReqKey>,
    /// (cu, case idx) pairs already materialised, to make discovery idempotent.
    seen_cases: BTreeSet<(CuId, usize)>,
    /// True for selects known to carry a default case (affects Req2 vs Req4).
    nonblocking_selects: BTreeSet<CuId>,
}

impl RequirementUniverse {
    /// An empty universe (requirements appear as CUs are discovered).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the universe implied by a static CU table.
    pub fn from_table(table: CuTable) -> Self {
        let mut u = RequirementUniverse { table: CuTable::new(), ..Self::default() };
        u.table = table;
        let ids: Vec<CuId> = u.table.iter().map(|(id, _)| id).collect();
        for id in ids {
            u.add_op_requirements(id);
        }
        u
    }

    fn add_op_requirements(&mut self, id: CuId) {
        let kind = self.table.get(id).kind;
        for &v in op_requirements(kind) {
            self.reqs.insert(ReqKey::op(id, v));
        }
    }

    /// The CU table backing this universe.
    pub fn table(&self) -> &CuTable {
        &self.table
    }

    /// Rebuild the CU table's lookup index (needed after
    /// deserialization — the index is `#[serde(skip)]`; without it every
    /// dynamically discovered CU would re-insert as a fresh site).
    pub fn reindex(&mut self) {
        self.table.reindex();
    }

    /// Register a CU discovered dynamically (returns its id). New sites
    /// contribute their op-level requirements immediately.
    pub fn discover_cu(&mut self, cu: Cu) -> CuId {
        if let Some(id) = self.table.lookup(&cu.file, cu.line, cu.kind) {
            return id;
        }
        let id = self.table.insert(cu);
        self.add_op_requirements(id);
        id
    }

    /// Materialise the Req2/Req4 requirements for case `idx` of select
    /// `cu`, observed at runtime.
    ///
    /// `has_default` is whether the *select statement* carries a default
    /// case: per Table I a non-blocking select's channel cases only have
    /// the Req4 set `{unblocking, NOP}` while a blocking select's cases
    /// carry the full Req1 set.
    pub fn discover_select_case(
        &mut self,
        cu: CuId,
        idx: usize,
        flavor: CaseFlavor,
        has_default: bool,
    ) {
        if has_default {
            self.nonblocking_selects.insert(cu);
        }
        if !self.seen_cases.insert((cu, idx)) {
            return;
        }
        use ReqValue::*;
        let values: &[ReqValue] = match flavor {
            CaseFlavor::Default => &[Nop],
            CaseFlavor::Send | CaseFlavor::Recv => {
                if has_default {
                    &[Unblocking, Nop]
                } else {
                    &[Blocked, Unblocking, Nop]
                }
            }
        };
        for &v in values {
            self.reqs.insert(ReqKey::case(cu, idx, flavor, v));
        }
    }

    /// Number of requirement instances currently in the universe.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Is the universe empty?
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Does the universe contain this requirement instance?
    pub fn contains(&self, key: &ReqKey) -> bool {
        self.reqs.contains(key)
    }

    /// Iterate over all requirement instances.
    pub fn iter(&self) -> impl Iterator<Item = &ReqKey> {
        self.reqs.iter()
    }

    /// Resolve a key into a displayable [`Requirement`].
    pub fn resolve(&self, key: ReqKey) -> Requirement {
        Requirement { key, cu: *self.table.get(key.cu) }
    }

    /// Requirements not covered by `covered`, for the paper's "actions for
    /// uncovered requirements" report.
    pub fn uncovered<'a>(&'a self, covered: &'a CoverageSet) -> impl Iterator<Item = &'a ReqKey> {
        self.reqs.iter().filter(move |k| !covered.contains(k))
    }
}

/// The set of requirement instances covered by one or more executions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageSet {
    covered: BTreeSet<ReqKey>,
}

impl CoverageSet {
    /// An empty coverage set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark a requirement as covered; returns true if it was new.
    pub fn cover(&mut self, key: ReqKey) -> bool {
        self.covered.insert(key)
    }

    /// Was this requirement covered?
    pub fn contains(&self, key: &ReqKey) -> bool {
        self.covered.contains(key)
    }

    /// Number of covered requirements.
    pub fn len(&self) -> usize {
        self.covered.len()
    }

    /// Is nothing covered yet?
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }

    /// Union with another coverage set (accumulation across test runs).
    pub fn merge(&mut self, other: &CoverageSet) {
        self.covered.extend(other.covered.iter().copied());
    }

    /// Iterate over covered requirement keys.
    pub fn iter(&self) -> impl Iterator<Item = &ReqKey> {
        self.covered.iter()
    }

    /// Coverage percentage against a universe, in `[0, 100]`.
    ///
    /// Only requirements that are in the universe count (stale keys from a
    /// previous universe are ignored). An empty universe is 100 % covered.
    pub fn percent(&self, universe: &RequirementUniverse) -> f64 {
        if universe.is_empty() {
            return 100.0;
        }
        let hit = self.covered.iter().filter(|k| universe.contains(k)).count();
        100.0 * hit as f64 / universe.len() as f64
    }
}

impl FromIterator<ReqKey> for CoverageSet {
    fn from_iter<I: IntoIterator<Item = ReqKey>>(iter: I) -> Self {
        CoverageSet { covered: iter.into_iter().collect() }
    }
}

impl Extend<ReqKey> for CoverageSet {
    fn extend<I: IntoIterator<Item = ReqKey>>(&mut self, iter: I) {
        self.covered.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CuTable {
        CuTable::from_cus([
            Cu::new("p.rs", 1, CuKind::Send),
            Cu::new("p.rs", 2, CuKind::Recv),
            Cu::new("p.rs", 3, CuKind::Lock),
            Cu::new("p.rs", 4, CuKind::Unlock),
            Cu::new("p.rs", 5, CuKind::Go),
            Cu::new("p.rs", 6, CuKind::Select),
        ])
    }

    #[test]
    fn universe_sizes_follow_table_i() {
        let u = RequirementUniverse::from_table(table());
        // send 3 + recv 3 + lock 2 + unlock 2 + go 1 + select 0 = 11
        assert_eq!(u.len(), 11);
    }

    #[test]
    fn select_cases_expand_universe() {
        let mut u = RequirementUniverse::from_table(table());
        let sel = u.table().lookup("p.rs", 6, CuKind::Select).unwrap();
        let before = u.len();
        u.discover_select_case(sel, 0, CaseFlavor::Recv, false);
        assert_eq!(u.len(), before + 3);
        // idempotent
        u.discover_select_case(sel, 0, CaseFlavor::Recv, false);
        assert_eq!(u.len(), before + 3);
        u.discover_select_case(sel, 1, CaseFlavor::Send, false);
        assert_eq!(u.len(), before + 6);
    }

    #[test]
    fn nonblocking_select_cases_use_req4() {
        let mut u = RequirementUniverse::from_table(table());
        let sel = u.table().lookup("p.rs", 6, CuKind::Select).unwrap();
        let before = u.len();
        u.discover_select_case(sel, 0, CaseFlavor::Recv, true);
        assert_eq!(u.len(), before + 2); // {unblocking, nop}
        u.discover_select_case(sel, 1, CaseFlavor::Default, true);
        assert_eq!(u.len(), before + 3); // default adds one NOP
    }

    #[test]
    fn coverage_percent_monotone_under_merge() {
        let u = RequirementUniverse::from_table(table());
        let keys: Vec<ReqKey> = u.iter().copied().collect();
        let mut a = CoverageSet::new();
        a.cover(keys[0]);
        let p1 = a.percent(&u);
        let mut b = CoverageSet::new();
        b.cover(keys[1]);
        b.cover(keys[2]);
        a.merge(&b);
        assert!(a.percent(&u) >= p1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn percent_bounds() {
        let u = RequirementUniverse::from_table(table());
        let empty = CoverageSet::new();
        assert_eq!(empty.percent(&u), 0.0);
        let full: CoverageSet = u.iter().copied().collect();
        assert_eq!(full.percent(&u), 100.0);
        let empty_universe = RequirementUniverse::new();
        assert_eq!(empty.percent(&empty_universe), 100.0);
    }

    #[test]
    fn discover_cu_is_idempotent_and_grows() {
        let mut u = RequirementUniverse::new();
        let id1 = u.discover_cu(Cu::new("q.rs", 9, CuKind::Send));
        let n = u.len();
        assert_eq!(n, 3);
        let id2 = u.discover_cu(Cu::new("/abs/q.rs", 9, CuKind::Send));
        assert_eq!(id1, id2);
        assert_eq!(u.len(), n);
    }

    #[test]
    fn uncovered_reporting() {
        let u =
            RequirementUniverse::from_table(CuTable::from_cus([Cu::new("p.rs", 1, CuKind::Lock)]));
        let mut c = CoverageSet::new();
        let first = *u.iter().next().unwrap();
        c.cover(first);
        let un: Vec<_> = u.uncovered(&c).collect();
        assert_eq!(un.len(), 1);
    }

    #[test]
    fn requirement_display_is_informative() {
        let mut u = RequirementUniverse::new();
        let id = u.discover_cu(Cu::new("p.rs", 6, CuKind::Select));
        u.discover_select_case(id, 0, CaseFlavor::Recv, false);
        let key = *u.iter().next().unwrap();
        let s = u.resolve(key).to_string();
        assert!(s.contains("p.rs:6"), "{s}");
        assert!(s.contains("case0"), "{s}");
    }
}
