//! Interned strings for hot trace payloads.
//!
//! CU file paths and goroutine names repeat across *every* event of
//! *every* run of a campaign, yet the seed stored them as owned
//! `String`s — one heap allocation per event emitted. [`Istr`] replaces
//! them with a `Copy` handle into a process-wide arena: interning a
//! string costs one lookup (plus one leak the first time a distinct
//! string is seen), after which cloning a CU or an event is a pointer
//! copy.
//!
//! Semantics are those of the string itself: equality, ordering and
//! hashing are **content-based**, and serde writes/reads a plain
//! string, so every serialized artifact (reports, traces, summaries)
//! stays byte-identical to the un-interned representation.
//!
//! The arena is append-only and never freed. That is the right trade
//! for GoAT's workload: the universe of file paths and goroutine names
//! is the static model `M` plus a handful of runtime-internal names —
//! bounded by the program text, not by campaign length.

use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Deref;
use std::sync::Mutex;

static ARENA: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// An interned, immutable string (`Copy`, pointer-sized).
///
/// ```
/// use goat_model::Istr;
/// let a = Istr::new("src/kernel.rs");
/// let b = Istr::new(String::from("src/kernel.rs"));
/// assert_eq!(a, b);                       // content equality
/// assert_eq!(a.as_str(), "src/kernel.rs");
/// assert!(a < Istr::new("z.rs"));         // content ordering
/// ```
#[derive(Clone, Copy)]
pub struct Istr(&'static str);

impl Istr {
    /// Intern `s`, returning a handle valid for the process lifetime.
    pub fn new(s: impl AsRef<str>) -> Istr {
        let s = s.as_ref();
        let mut arena = ARENA.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(&existing) = arena.get(s) {
            return Istr(existing);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        arena.insert(leaked);
        Istr(leaked)
    }

    /// The interned string slice.
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// Number of distinct strings interned so far (diagnostics).
    pub fn arena_len() -> usize {
        ARENA.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

impl Default for Istr {
    fn default() -> Self {
        Istr::new("")
    }
}

impl Deref for Istr {
    type Target = str;
    fn deref(&self) -> &str {
        self.0
    }
}

impl AsRef<str> for Istr {
    fn as_ref(&self) -> &str {
        self.0
    }
}

impl From<&str> for Istr {
    fn from(s: &str) -> Self {
        Istr::new(s)
    }
}

impl From<String> for Istr {
    fn from(s: String) -> Self {
        Istr::new(s)
    }
}

impl From<&String> for Istr {
    fn from(s: &String) -> Self {
        Istr::new(s)
    }
}

impl PartialEq for Istr {
    fn eq(&self, other: &Self) -> bool {
        // Interning canonicalizes, so pointer equality is the common
        // fast path; fall through to content for robustness.
        std::ptr::eq(self.0, other.0) || self.0 == other.0
    }
}

impl Eq for Istr {}

impl PartialEq<str> for Istr {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Istr {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialOrd for Istr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Istr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl std::hash::Hash for Istr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Display for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

impl Serialize for Istr {
    fn to_content(&self) -> Content {
        Content::Str(self.0.to_owned())
    }
}

impl Deserialize for Istr {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(Istr::new(s)),
            other => Err(DeError::custom(format!("expected string for Istr, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn interning_canonicalizes() {
        let a = Istr::new("alpha/beta.rs");
        let b = Istr::new(String::from("alpha/beta.rs"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn content_semantics_match_string() {
        let mut by_istr: BTreeMap<Istr, u32> = BTreeMap::new();
        let mut by_string: BTreeMap<String, u32> = BTreeMap::new();
        for (i, s) in ["b.rs", "a.rs", "c/a.rs", "a.rs"].iter().enumerate() {
            by_istr.insert(Istr::new(s), i as u32);
            by_string.insert(s.to_string(), i as u32);
        }
        let flat: Vec<(String, u32)> = by_istr.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let flat2: Vec<(String, u32)> = by_string.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(flat, flat2);
    }

    #[test]
    fn serde_roundtrip_is_plain_string() {
        let i = Istr::new("path/with \"quotes\".rs");
        let json = serde_json::to_string(&i).unwrap();
        assert_eq!(json, serde_json::to_string(&"path/with \"quotes\".rs").unwrap());
        let back: Istr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
    }

    #[test]
    fn copy_and_compare_with_str() {
        let i = Istr::new("x.rs");
        let j = i; // Copy
        assert_eq!(i, j);
        assert_eq!(i, "x.rs");
        assert!(i.ends_with(".rs")); // Deref to str
    }
}
