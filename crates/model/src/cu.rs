//! Concurrency-usage (CU) model: the static table `M` of the paper.
//!
//! A [`Cu`] is the `(file, line, kind)` tuple of section III-B.1; a
//! [`CuTable`] is the model `M` — the set of all CU points of a program,
//! used both as the yield-injection site list and as the skeleton of the
//! coverage-requirement universe.

use crate::intern::Istr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The kind of concurrency primitive used at a source location.
///
/// Mirrors the paper's taxonomy: `k ∈ Channel ∪ Sync ∪ Go`.
///
/// ```
/// use goat_model::CuKind;
/// assert!(CuKind::Send.is_channel());
/// assert!(CuKind::Lock.is_sync());
/// assert!(CuKind::Select.is_go());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CuKind {
    // Channel = {send, receive, close}
    /// Channel send (`ch.send(v)`), potentially blocking.
    Send,
    /// Channel receive (`ch.recv()`), potentially blocking.
    Recv,
    /// Channel close (`ch.close()`), an unblocking action.
    Close,
    // Sync = {lock, unlock, wait, add, done, signal, broadcast}
    /// Mutex/RwLock acquisition, potentially blocking.
    Lock,
    /// Mutex/RwLock release, an unblocking action.
    Unlock,
    /// WaitGroup wait or condition-variable wait, potentially blocking.
    Wait,
    /// WaitGroup add.
    Add,
    /// WaitGroup done, an unblocking action.
    Done,
    /// Condition-variable signal, an unblocking action.
    Signal,
    /// Condition-variable broadcast, an unblocking action.
    Broadcast,
    // Go = {go, select, range}
    /// Goroutine creation (`go(...)`).
    Go,
    /// A `select` statement over channel operations.
    Select,
    /// Iteration over a channel until it is closed (`for v in ch.iter()`).
    Range,
}

impl CuKind {
    /// All CU kinds, in a stable order.
    pub const ALL: [CuKind; 13] = [
        CuKind::Send,
        CuKind::Recv,
        CuKind::Close,
        CuKind::Lock,
        CuKind::Unlock,
        CuKind::Wait,
        CuKind::Add,
        CuKind::Done,
        CuKind::Signal,
        CuKind::Broadcast,
        CuKind::Go,
        CuKind::Select,
        CuKind::Range,
    ];

    /// Is this kind in the paper's `Channel` class?
    pub fn is_channel(self) -> bool {
        matches!(self, CuKind::Send | CuKind::Recv | CuKind::Close)
    }

    /// Is this kind in the paper's `Sync` class?
    pub fn is_sync(self) -> bool {
        matches!(
            self,
            CuKind::Lock
                | CuKind::Unlock
                | CuKind::Wait
                | CuKind::Add
                | CuKind::Done
                | CuKind::Signal
                | CuKind::Broadcast
        )
    }

    /// Is this kind in the paper's `Go` class?
    pub fn is_go(self) -> bool {
        matches!(self, CuKind::Go | CuKind::Select | CuKind::Range)
    }

    /// Can an operation of this kind block the executing goroutine?
    ///
    /// These are the *critical points* of section II-C: their behaviour
    /// directly impacts the blocking behaviour of the program, and GoAT
    /// injects yield handlers in front of every one of them.
    pub fn may_block(self) -> bool {
        matches!(
            self,
            CuKind::Send
                | CuKind::Recv
                | CuKind::Lock
                | CuKind::Wait
                | CuKind::Select
                | CuKind::Range
        )
    }

    /// Is this an *unblocking action* in the sense of Req4 (Table I)?
    pub fn is_unblocking_action(self) -> bool {
        matches!(
            self,
            CuKind::Close | CuKind::Unlock | CuKind::Signal | CuKind::Broadcast | CuKind::Done
        )
    }

    /// Short lowercase mnemonic, as printed in the paper's Table III.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CuKind::Send => "send",
            CuKind::Recv => "recv",
            CuKind::Close => "close",
            CuKind::Lock => "lock",
            CuKind::Unlock => "unlock",
            CuKind::Wait => "wait",
            CuKind::Add => "add",
            CuKind::Done => "done",
            CuKind::Signal => "signal",
            CuKind::Broadcast => "broadcast",
            CuKind::Go => "go",
            CuKind::Select => "select",
            CuKind::Range => "range",
        }
    }
}

impl fmt::Display for CuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A concurrency usage: one `(file, line, kind)` tuple of the model `M`.
///
/// `Copy`: the file path is an interned [`Istr`], so a CU is two words
/// and cloning one (e.g. into every trace event) allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cu {
    /// Source file (stored as given; comparisons use suffix matching so
    /// that absolute build paths and repo-relative paths interoperate).
    pub file: Istr,
    /// 1-based line number.
    pub line: u32,
    /// Primitive kind at this location.
    pub kind: CuKind,
}

impl Cu {
    /// Create a CU from its components (interning the file path).
    pub fn new(file: impl AsRef<str>, line: u32, kind: CuKind) -> Self {
        Cu { file: Istr::new(file), line, kind }
    }

    /// Do two CU locations denote the same source point?
    ///
    /// File names are compared by the longer one ending with the shorter
    /// one (path-component aligned), so `/build/src/kernels/moby.rs`
    /// matches `kernels/moby.rs`.
    pub fn same_site(&self, other: &Cu) -> bool {
        self.line == other.line && self.kind == other.kind && files_match(&self.file, &other.file)
    }
}

/// Suffix-style file-path matching used throughout the CU model.
pub fn files_match(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return false;
    }
    long.ends_with(short)
        && long[..long.len() - short.len()]
            .chars()
            .next_back()
            .map(|c| c == '/' || c == '\\')
            .unwrap_or(true)
}

impl fmt::Display for Cu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} [{}]", self.file, self.line, self.kind)
    }
}

/// Index of a CU inside a [`CuTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CuId(pub usize);

impl fmt::Display for CuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cu{}", self.0)
    }
}

/// The static model `M`: a deduplicated, ordered table of CU points.
///
/// ```
/// use goat_model::{Cu, CuKind, CuTable};
/// let mut m = CuTable::new();
/// let id = m.insert(Cu::new("a.rs", 10, CuKind::Send));
/// assert_eq!(m.insert(Cu::new("a.rs", 10, CuKind::Send)), id); // dedup
/// assert_eq!(m.len(), 1);
/// assert!(m.lookup("src/a.rs", 10, CuKind::Send).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CuTable {
    entries: Vec<Cu>,
    // (line, kind, file) -> id; file kept in key map for exact entries,
    // suffix matching is done in `lookup`.
    #[serde(skip)]
    index: BTreeMap<(u32, CuKind), Vec<usize>>,
}

impl CuTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a table from an iterator of CUs (deduplicating).
    pub fn from_cus<I: IntoIterator<Item = Cu>>(iter: I) -> Self {
        let mut t = Self::new();
        for cu in iter {
            t.insert(cu);
        }
        t
    }

    /// Number of CU entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a CU, returning its id. Re-inserting an equivalent site
    /// (same line/kind and matching file) returns the existing id.
    pub fn insert(&mut self, cu: Cu) -> CuId {
        if let Some(id) = self.lookup(&cu.file, cu.line, cu.kind) {
            return id;
        }
        let id = self.entries.len();
        self.index.entry((cu.line, cu.kind)).or_default().push(id);
        self.entries.push(cu);
        CuId(id)
    }

    /// Find the CU id for a dynamic call site, using suffix file matching.
    pub fn lookup(&self, file: &str, line: u32, kind: CuKind) -> Option<CuId> {
        let ids = self.index.get(&(line, kind))?;
        ids.iter().copied().find(|&i| files_match(&self.entries[i].file, file)).map(CuId)
    }

    /// Get a CU by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range (ids are only minted by this table).
    pub fn get(&self, id: CuId) -> &Cu {
        &self.entries[id.0]
    }

    /// Iterate over `(id, cu)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (CuId, &Cu)> {
        self.entries.iter().enumerate().map(|(i, cu)| (CuId(i), cu))
    }

    /// Merge another table into this one, deduplicating sites.
    pub fn merge(&mut self, other: &CuTable) {
        for (_, cu) in other.iter() {
            self.insert(*cu);
        }
    }

    /// Rebuild the lookup index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.index.clear();
        for (i, cu) in self.entries.iter().enumerate() {
            self.index.entry((cu.line, cu.kind)).or_default().push(i);
        }
    }

    /// Number of CU entries of a given kind.
    pub fn count_kind(&self, kind: CuKind) -> usize {
        self.entries.iter().filter(|c| c.kind == kind).count()
    }

    /// Serialize the model to JSON (the on-disk form of `M`).
    ///
    /// # Errors
    /// Propagates `serde_json` failures (not expected for valid tables).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Load a model from JSON produced by [`CuTable::to_json`],
    /// rebuilding the lookup index.
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let mut table: CuTable = serde_json::from_str(s)?;
        table.reindex();
        Ok(table)
    }
}

impl FromIterator<Cu> for CuTable {
    fn from_iter<I: IntoIterator<Item = Cu>>(iter: I) -> Self {
        Self::from_cus(iter)
    }
}

impl Extend<Cu> for CuTable {
    fn extend<I: IntoIterator<Item = Cu>>(&mut self, iter: I) {
        for cu in iter {
            self.insert(cu);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_taxonomy_is_partition() {
        for k in CuKind::ALL {
            let classes = [k.is_channel(), k.is_sync(), k.is_go()].iter().filter(|&&b| b).count();
            assert_eq!(classes, 1, "{k} must belong to exactly one class");
        }
    }

    #[test]
    fn may_block_and_unblocking_are_disjoint() {
        for k in CuKind::ALL {
            assert!(
                !(k.may_block() && k.is_unblocking_action()),
                "{k} cannot both block and unblock"
            );
        }
    }

    #[test]
    fn files_match_suffix() {
        assert!(files_match("a/b/c.rs", "b/c.rs"));
        assert!(files_match("b/c.rs", "a/b/c.rs"));
        assert!(files_match("c.rs", "c.rs"));
        assert!(!files_match("bb/c.rs", "b/c.rs"));
        assert!(!files_match("a/b/c.rs", "d.rs"));
        assert!(!files_match("a.rs", ""));
    }

    #[test]
    fn table_dedups_and_looks_up() {
        let mut t = CuTable::new();
        let a = t.insert(Cu::new("src/k.rs", 5, CuKind::Send));
        let b = t.insert(Cu::new("/abs/path/src/k.rs", 5, CuKind::Send));
        assert_eq!(a, b);
        let c = t.insert(Cu::new("src/k.rs", 5, CuKind::Recv));
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup("k.rs", 5, CuKind::Send), Some(a));
        assert_eq!(t.lookup("k.rs", 6, CuKind::Send), None);
    }

    #[test]
    fn merge_accumulates_without_duplicates() {
        let mut a =
            CuTable::from_cus([Cu::new("x.rs", 1, CuKind::Go), Cu::new("x.rs", 2, CuKind::Send)]);
        let b =
            CuTable::from_cus([Cu::new("x.rs", 2, CuKind::Send), Cu::new("x.rs", 3, CuKind::Lock)]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn reindex_restores_lookup() {
        let mut t = CuTable::from_cus([Cu::new("x.rs", 1, CuKind::Go)]);
        t.index.clear();
        assert!(t.lookup("x.rs", 1, CuKind::Go).is_none());
        t.reindex();
        assert!(t.lookup("x.rs", 1, CuKind::Go).is_some());
    }

    #[test]
    fn json_roundtrip_preserves_lookup() {
        let t =
            CuTable::from_cus([Cu::new("a.rs", 1, CuKind::Send), Cu::new("b.rs", 2, CuKind::Lock)]);
        let json = t.to_json().unwrap();
        let back = CuTable::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.lookup("a.rs", 1, CuKind::Send).is_some(), "index rebuilt");
        assert!(back.lookup("b.rs", 2, CuKind::Lock).is_some());
    }

    #[test]
    fn display_formats() {
        let cu = Cu::new("m.rs", 42, CuKind::Select);
        assert_eq!(cu.to_string(), "m.rs:42 [select]");
        assert_eq!(CuId(3).to_string(), "cu3");
    }
}
