//! # goat-model — the static side of GoAT
//!
//! This crate implements the *static analysis* half of GoAT (section III-B
//! of the paper) together with the *coverage requirement* definitions
//! (section III-C, Table I).
//!
//! The paper builds a model `M`: a table of source locations associated
//! with **concurrency usages** (CUs). A CU is a tuple `(f, l, k)` where
//! `f` is a file name, `l` a line number and `k` the kind of concurrency
//! primitive used at that location:
//!
//! * `Channel = {send, receive, close}`
//! * `Sync    = {lock, unlock, wait, add, done, signal, broadcast}`
//! * `Go      = {go, select, range}`
//!
//! In the original tool `M` is produced by walking the Go AST. Here the
//! benchmark programs are Rust sources written against [`goat-runtime`]'s
//! Go-style API, so the equivalent static pass is a lexical scanner over
//! Rust sources ([`scanner`]) that recognises the runtime API calls and
//! produces the same `(file, line, kind)` table ([`cu::CuTable`]).
//!
//! From a `CuTable`, [`coverage::RequirementUniverse`] materialises the
//! coverage requirements of Table I (Req1–Req5), which the dynamic side
//! (goat-core) marks as covered by analysing execution concurrency traces.
//!
//! [`goat-runtime`]: ../goat_runtime/index.html

#![warn(missing_docs)]

pub mod coverage;
pub mod cu;
/// Interned strings for hot trace payloads.
pub mod intern;
pub mod scanner;
pub mod syncpair;

pub use coverage::{
    op_requirements, CaseFlavor, CoverageSet, ReqId, ReqKey, ReqTarget, ReqValue, Requirement,
    RequirementUniverse,
};
pub use cu::{Cu, CuId, CuKind, CuTable};
pub use intern::Istr;
pub use scanner::{scan_file, scan_source, scan_sources, ScanError};
pub use syncpair::{SyncPair, SyncPairCoverage};
