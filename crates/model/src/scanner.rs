//! Static source scanner: builds the CU table `M` from program sources.
//!
//! The original GoAT walks the Go AST (via `go/ast`) of every file of the
//! target program and records the source location of each concurrency
//! primitive usage. The programs analysed by this reproduction are Rust
//! sources written against the `goat-runtime` Go-style API, whose
//! primitive operations have fixed, recognisable spellings — so the
//! equivalent static pass is a line-oriented lexical scanner.
//!
//! The scanner understands just enough Rust to be reliable on the
//! benchmark corpus: it strips `//` line comments, `/* .. */` block
//! comments and string literals before matching, and it requires method
//! patterns to follow a receiver expression (so `fn send(` in a trait
//! definition does not count).
//!
//! | Spelling                                  | CU kind |
//! |-------------------------------------------|---------|
//! | `go(`, `go_named(`                        | go      |
//! | `.send(`                                  | send    |
//! | `.recv(`, `.try_recv(`                    | recv    |
//! | `.close()`                                | close   |
//! | `.lock()`, `.try_lock()`, `.rlock()`      | lock    |
//! | `.unlock()`, `.runlock()`                 | unlock  |
//! | `.wait(`                                  | wait    |
//! | `.add(`                                   | add     |
//! | `.done()`                                 | done    |
//! | `.signal()`                               | signal  |
//! | `.broadcast()`                            | broadcast |
//! | `Select::new(`                            | select  |
//! | `.range()`                                | range   |

use crate::cu::{Cu, CuKind, CuTable};
use std::fmt;
use std::io;
use std::path::Path;

/// Error returned by [`scan_file`] / [`scan_sources`].
#[derive(Debug)]
pub struct ScanError {
    /// Path that failed to read.
    pub path: String,
    /// Underlying I/O error.
    pub source: io::Error,
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to scan {}: {}", self.path, self.source)
    }
}

impl std::error::Error for ScanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Method-call patterns: matched only when preceded by a receiver
/// expression (identifier, `)`, `]`, or `>`), never after `fn `.
const METHOD_PATTERNS: &[(&str, CuKind)] = &[
    (".send(", CuKind::Send),
    (".recv(", CuKind::Recv),
    (".try_recv(", CuKind::Recv),
    (".close()", CuKind::Close),
    (".lock()", CuKind::Lock),
    (".try_lock()", CuKind::Lock),
    (".rlock()", CuKind::Lock),
    (".unlock()", CuKind::Unlock),
    (".runlock()", CuKind::Unlock),
    (".wait(", CuKind::Wait),
    (".add(", CuKind::Add),
    (".done()", CuKind::Done),
    (".signal()", CuKind::Signal),
    (".broadcast()", CuKind::Broadcast),
    (".range()", CuKind::Range),
];

/// Free-function / constructor patterns: matched on an identifier
/// boundary (not preceded by an identifier character, `.` or `:`).
const FREE_PATTERNS: &[(&str, CuKind)] = &[("go(", CuKind::Go), ("go_named(", CuKind::Go)];

/// Exact-path patterns matched anywhere outside comments/strings.
const PATH_PATTERNS: &[(&str, CuKind)] = &[("Select::new(", CuKind::Select)];

/// Scan a single source string, attributing CUs to `file`.
///
/// ```
/// use goat_model::{scan_source, CuKind};
/// let src = r#"
///     go(move || {
///         ch.send(1); // comment with ch.send( inside is ignored
///     });
///     let v = ch.recv();
/// "#;
/// let m = scan_source("prog.rs", src);
/// assert_eq!(m.count_kind(CuKind::Go), 1);
/// assert_eq!(m.count_kind(CuKind::Send), 1);
/// assert_eq!(m.count_kind(CuKind::Recv), 1);
/// ```
pub fn scan_source(file: &str, source: &str) -> CuTable {
    let mut table = CuTable::new();
    let mut in_block_comment = false;
    for (i, raw_line) in source.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let clean = sanitize_line(raw_line, &mut in_block_comment);
        for kind in find_cus(&clean) {
            table.insert(Cu::new(file, line_no, kind));
        }
    }
    table
}

/// Scan one file from disk. The CU `file` field is the path as given.
pub fn scan_file(path: impl AsRef<Path>) -> Result<CuTable, ScanError> {
    let path = path.as_ref();
    let src = std::fs::read_to_string(path)
        .map_err(|source| ScanError { path: path.display().to_string(), source })?;
    Ok(scan_source(&path.display().to_string(), &src))
}

/// Scan many files, merging their CU tables into one model `M`.
pub fn scan_sources<P, I>(paths: I) -> Result<CuTable, ScanError>
where
    P: AsRef<Path>,
    I: IntoIterator<Item = P>,
{
    let mut table = CuTable::new();
    for p in paths {
        table.merge(&scan_file(p)?);
    }
    Ok(table)
}

/// Remove comments and blank out string/char literal bodies so patterns
/// inside them do not match. Tracks `/* */` across lines via
/// `in_block_comment`.
fn sanitize_line(line: &str, in_block_comment: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                // Blank out the string body (no multi-line strings in the corpus).
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' if i + 2 < bytes.len() && (bytes[i + 2] == b'\'' || (bytes[i + 1] == b'\\')) => {
                // char literal like 'x' or '\n' — blank it; lifetimes ('a)
                // do not match this shape.
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                i += 1; // opening quote
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push(b' ');
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Find all CU kinds mentioned on a sanitized line, left to right.
fn find_cus(line: &str) -> Vec<CuKind> {
    let bytes = line.as_bytes();
    let mut found: Vec<(usize, CuKind)> = Vec::new();

    for &(pat, kind) in METHOD_PATTERNS {
        for pos in match_positions(line, pat) {
            // Require a receiver expression before the dot.
            let before = bytes[..pos].iter().rev().find(|b| !b.is_ascii_whitespace());
            let ok =
                matches!(before, Some(&b) if is_ident(b) || b == b')' || b == b']' || b == b'>');
            if ok {
                found.push((pos, kind));
            }
        }
    }
    for &(pat, kind) in FREE_PATTERNS {
        for pos in match_positions(line, pat) {
            let prev = if pos == 0 { None } else { Some(bytes[pos - 1]) };
            let ok = match prev {
                None => true,
                Some(b) => !is_ident(b) && b != b'.' && b != b':',
            };
            if ok {
                found.push((pos, kind));
            }
        }
    }
    for &(pat, kind) in PATH_PATTERNS {
        for pos in match_positions(line, pat) {
            found.push((pos, kind));
        }
    }
    found.sort_by_key(|&(pos, _)| pos);
    found.into_iter().map(|(_, k)| k).collect()
}

fn match_positions<'a>(haystack: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut start = 0;
    std::iter::from_fn(move || {
        let rel = haystack[start..].find(needle)?;
        let pos = start + rel;
        start = pos + 1;
        Some(pos)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognises_all_primitive_spellings() {
        let src = r#"
            go(|| {});
            go_named("w", || {});
            ch.send(5);
            let x = ch.recv();
            let y = ch.try_recv();
            ch.close();
            mu.lock();
            mu.try_lock();
            rw.rlock();
            mu.unlock();
            rw.runlock();
            wg.wait();
            cv.wait(&mu);
            wg.add(1);
            wg.done();
            cv.signal();
            cv.broadcast();
            let r = Select::new().recv(&ch, |_| 0).run();
            for v in ch.range() {}
        "#;
        let m = scan_source("t.rs", src);
        assert_eq!(m.count_kind(CuKind::Go), 2);
        assert_eq!(m.count_kind(CuKind::Send), 1);
        assert_eq!(m.count_kind(CuKind::Recv), 3); // recv, try_recv, select .recv(
        assert_eq!(m.count_kind(CuKind::Close), 1);
        assert_eq!(m.count_kind(CuKind::Lock), 3);
        assert_eq!(m.count_kind(CuKind::Unlock), 2);
        assert_eq!(m.count_kind(CuKind::Wait), 2);
        assert_eq!(m.count_kind(CuKind::Add), 1);
        assert_eq!(m.count_kind(CuKind::Done), 1);
        assert_eq!(m.count_kind(CuKind::Signal), 1);
        assert_eq!(m.count_kind(CuKind::Broadcast), 1);
        assert_eq!(m.count_kind(CuKind::Select), 1);
        assert_eq!(m.count_kind(CuKind::Range), 1);
    }

    #[test]
    fn ignores_comments_and_strings() {
        let src = r#"
            // ch.send(1);
            /* mu.lock(); */
            let s = "ch.recv() go( .close()";
            /*
               wg.wait();
            */
            ch.send(2);
        "#;
        let m = scan_source("t.rs", src);
        assert_eq!(m.len(), 1);
        assert_eq!(m.count_kind(CuKind::Send), 1);
    }

    #[test]
    fn ignores_definitions_and_prefixed_identifiers() {
        let src = r#"
            fn send(x: u32) {}
            fn go_home() {}
            let cargo = 1; // 'go(' inside identifier must not match: cargo(
            forgo(3);
            self::go(|| {});
        "#;
        let m = scan_source("t.rs", src);
        // `self::go(` is rejected (preceded by ':'), fn send( has no receiver.
        assert_eq!(m.len(), 0, "{m:?}");
    }

    #[test]
    fn method_after_call_chain_counts() {
        let m = scan_source("t.rs", "make_chan().send(1); arr[0].recv();");
        assert_eq!(m.count_kind(CuKind::Send), 1);
        assert_eq!(m.count_kind(CuKind::Recv), 1);
    }

    #[test]
    fn multiple_cus_on_one_line() {
        let m = scan_source("t.rs", "a.lock(); x.send(y.recv()); a.unlock();");
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn line_numbers_are_one_based() {
        let m = scan_source("t.rs", "\n\nch.send(1);\n");
        let (_, cu) = m.iter().next().unwrap();
        assert_eq!(cu.line, 3);
    }

    #[test]
    fn char_literals_do_not_break_scanning() {
        let m = scan_source("t.rs", "let c = 'x'; ch.send('y'); let l: &'static str = s;");
        assert_eq!(m.count_kind(CuKind::Send), 1);
    }

    #[test]
    fn scan_missing_file_errors() {
        let err = scan_file("/nonexistent/goat/file.rs").unwrap_err();
        assert!(err.to_string().contains("file.rs"));
    }
}
