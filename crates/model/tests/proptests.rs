//! Property-based tests for the CU model, the coverage-requirement
//! algebra and the static scanner.

use goat_model::{
    scan_source, CaseFlavor, CoverageSet, Cu, CuKind, CuTable, ReqKey, RequirementUniverse,
};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = CuKind> {
    prop::sample::select(CuKind::ALL.to_vec())
}

fn cu_strategy() -> impl Strategy<Value = Cu> {
    ("[a-z]{1,8}\\.rs", 1..500u32, kind_strategy())
        .prop_map(|(file, line, kind)| Cu::new(format!("src/{file}"), line, kind))
}

proptest! {
    #[test]
    fn table_insert_is_idempotent_and_lookupable(cus in prop::collection::vec(cu_strategy(), 0..40)) {
        let mut table = CuTable::new();
        for cu in &cus {
            table.insert(*cu);
        }
        prop_assert!(table.len() <= cus.len());
        for cu in &cus {
            let id = table.lookup(&cu.file, cu.line, cu.kind);
            prop_assert!(id.is_some(), "lost {cu}");
            prop_assert!(table.get(id.unwrap()).same_site(cu));
        }
        // Re-inserting everything changes nothing.
        let before = table.len();
        for cu in &cus {
            table.insert(*cu);
        }
        prop_assert_eq!(table.len(), before);
    }

    #[test]
    fn merge_is_union(
        a in prop::collection::vec(cu_strategy(), 0..20),
        b in prop::collection::vec(cu_strategy(), 0..20),
    ) {
        let ta = CuTable::from_cus(a.clone());
        let tb = CuTable::from_cus(b.clone());
        let mut merged = ta.clone();
        merged.merge(&tb);
        let mut all = CuTable::new();
        for cu in a.iter().chain(b.iter()) {
            all.insert(*cu);
        }
        prop_assert_eq!(merged.len(), all.len());
    }

    #[test]
    fn universe_size_matches_table_i(cus in prop::collection::vec(cu_strategy(), 0..30)) {
        let table = CuTable::from_cus(cus);
        let expected: usize = table
            .iter()
            .map(|(_, cu)| goat_model::op_requirements(cu.kind).len())
            .sum();
        let u = RequirementUniverse::from_table(table);
        prop_assert_eq!(u.len(), expected);
    }

    #[test]
    fn coverage_percent_is_monotone_in_covered_keys(
        cus in prop::collection::vec(cu_strategy(), 1..20),
        take in 0..30usize,
    ) {
        let u = RequirementUniverse::from_table(CuTable::from_cus(cus));
        let keys: Vec<ReqKey> = u.iter().copied().collect();
        let mut set = CoverageSet::new();
        let mut last = set.percent(&u);
        for key in keys.iter().take(take.min(keys.len())) {
            set.cover(*key);
            let now = set.percent(&u);
            prop_assert!(now >= last);
            prop_assert!((0.0..=100.0).contains(&now));
            last = now;
        }
        // Covering everything always reaches exactly 100 %.
        for key in &keys {
            set.cover(*key);
        }
        if !keys.is_empty() {
            prop_assert!((set.percent(&u) - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn coverage_merge_is_commutative(
        cus in prop::collection::vec(cu_strategy(), 1..15),
        split in 0..100u8,
    ) {
        let u = RequirementUniverse::from_table(CuTable::from_cus(cus));
        let keys: Vec<ReqKey> = u.iter().copied().collect();
        let pivot = (keys.len() * usize::from(split) / 100).min(keys.len());
        let a: CoverageSet = keys[..pivot].iter().copied().collect();
        let b: CoverageSet = keys[pivot..].iter().copied().collect();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.len(), ba.len());
        prop_assert_eq!(ab.percent(&u), ba.percent(&u));
    }

    #[test]
    fn select_case_discovery_is_idempotent(
        idx in 0..8usize,
        repeat in 1..5usize,
        has_default in any::<bool>(),
    ) {
        let mut u = RequirementUniverse::new();
        let id = u.discover_cu(Cu::new("p.rs", 1, CuKind::Select));
        u.discover_select_case(id, idx, CaseFlavor::Recv, has_default);
        let n = u.len();
        for _ in 0..repeat {
            u.discover_select_case(id, idx, CaseFlavor::Recv, has_default);
        }
        prop_assert_eq!(u.len(), n);
    }
}

// ---------------------------------------------------------------------
// Scanner properties
// ---------------------------------------------------------------------

/// Build a source file out of op lines with known CU kinds and junk.
fn program_line() -> impl Strategy<Value = (String, Option<CuKind>)> {
    prop_oneof![
        Just(("    ch.send(1);".to_string(), Some(CuKind::Send))),
        Just(("    let v = ch.recv();".to_string(), Some(CuKind::Recv))),
        Just(("    mu.lock();".to_string(), Some(CuKind::Lock))),
        Just(("    mu.unlock();".to_string(), Some(CuKind::Unlock))),
        Just(("    wg.done();".to_string(), Some(CuKind::Done))),
        Just(("    go(|| {});".to_string(), Some(CuKind::Go))),
        Just(("    let x = 42;".to_string(), None)),
        Just(("    // ch.send(1); mu.lock();".to_string(), None)),
        Just(("    let s = \"go( ch.recv() mu.lock()\";".to_string(), None)),
        Just(("    fn send(x: u32) {}".to_string(), None)),
        Just((String::new(), None)),
    ]
}

/// Robustness smoke test: the scanner must process every Rust source in
/// this repository (including itself) without panicking, and file/line
/// attribution must stay within bounds.
#[test]
fn scanner_survives_the_whole_repository() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let mut scanned = 0usize;
    let mut stack = vec![root];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                let table = goat_model::scan_file(&path).expect("readable source");
                let src_lines = std::fs::read_to_string(&path).unwrap().lines().count() as u32;
                for (_, cu) in table.iter() {
                    assert!(cu.line >= 1 && cu.line <= src_lines.max(1), "{cu}");
                }
                scanned += 1;
            }
        }
    }
    assert!(scanned > 30, "expected to scan the whole workspace, got {scanned}");
}

proptest! {
    #[test]
    fn scanner_counts_exactly_the_real_ops(
        lines in prop::collection::vec(program_line(), 0..60),
    ) {
        let src: String =
            lines.iter().map(|(l, _)| format!("{l}\n")).collect();
        let table = scan_source("gen.rs", &src);
        // Expected: one CU per op line, at the right line number; equal
        // op lines at different line numbers are distinct CUs.
        let expected: Vec<(u32, CuKind)> = lines
            .iter()
            .enumerate()
            .filter_map(|(i, (_, k))| k.map(|k| (i as u32 + 1, k)))
            .collect();
        prop_assert_eq!(table.len(), expected.len());
        for (line, kind) in expected {
            prop_assert!(
                table.lookup("gen.rs", line, kind).is_some(),
                "missing {kind} at line {line}\n{src}"
            );
        }
    }
}
