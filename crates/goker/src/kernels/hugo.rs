//! Hugo blocking-bug kernels.

use crate::{BugCause, BugKernel, ExpectedSymptom, Project, Rarity};
use goat_runtime::{go_named, gosched, time, Chan, RwLock};
use std::time::Duration;

const SRC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/kernels/hugo.rs");

/// site builder: a template renderer holding the site read-lock calls a
/// helper that wants the write lock while another renderer queues a
/// second read — the write-preferring RWMutex wedges all of them.
fn hugo3251() {
    let site = RwLock::new();
    {
        let site = site.clone();
        go_named("render1", move || {
            site.rlock();
            gosched(); // template execution
            site.lock(); // BUG: upgrade attempt while readers exist
            site.unlock();
            site.runlock();
        });
    }
    {
        let site = site.clone();
        go_named("render2", move || {
            site.rlock(); // queues behind the pending writer
            site.runlock();
        });
    }
    time::sleep(Duration::from_millis(30));
}

/// page content init: main waits for the lazy content initializer, but
/// the initializer returns early on a shortcode error without sending.
fn hugo5379() {
    let content_ready: Chan<()> = Chan::new(0);
    {
        let content_ready = content_ready.clone();
        go_named("contentInit", move || {
            let shortcode_err = true;
            if shortcode_err {
                return; // BUG: never signals readiness
            }
            content_ready.send(());
        });
    }
    content_ready.recv(); // main: global deadlock
}

/// The 2 hugo kernels.
pub const KERNELS: &[BugKernel] = &[
    BugKernel {
        name: "hugo3251",
        project: Project::Hugo,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "site RWMutex: render path upgrades a read lock to a write \
                      lock while another reader is queued",
        main: hugo3251,
        source_file: SRC,
    },
    BugKernel {
        name: "hugo5379",
        project: Project::Hugo,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "lazy content initializer errors out without signalling; \
                      main waits on the ready channel forever",
        main: hugo5379,
        source_file: SRC,
    },
];
