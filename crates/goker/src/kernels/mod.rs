//! The 68 blocking-bug kernels, grouped by source project.

mod cockroach;
mod etcd;
mod grpc;
mod hugo;
mod istio;
mod kubernetes;
mod moby;
mod serving;
mod syncthing;

use crate::BugKernel;
use std::sync::OnceLock;

static ALL_CELL: OnceLock<Vec<&'static BugKernel>> = OnceLock::new();

/// All kernels in benchmark order (cockroach … syncthing).
pub(crate) fn all() -> &'static [&'static BugKernel] {
    ALL_CELL.get_or_init(|| {
        let mut v: Vec<&'static BugKernel> = Vec::new();
        v.extend(cockroach::KERNELS.iter());
        v.extend(etcd::KERNELS.iter());
        v.extend(grpc::KERNELS.iter());
        v.extend(hugo::KERNELS.iter());
        v.extend(istio::KERNELS.iter());
        v.extend(kubernetes::KERNELS.iter());
        v.extend(moby::KERNELS.iter());
        v.extend(serving::KERNELS.iter());
        v.extend(syncthing::KERNELS.iter());
        v
    })
}
