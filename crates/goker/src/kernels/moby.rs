//! Moby (Docker) blocking-bug kernels.
//!
//! Includes `moby28462`, the paper's running example (listing 1): a
//! monitor goroutine's select-default path races a status-change
//! goroutine that blocks on a rendezvous send while holding the
//! container mutex.

use crate::{BugCause, BugKernel, ExpectedSymptom, Project, Rarity};
use goat_runtime::{go_named, time, Chan, Mutex, RwLock, Select, WaitGroup};
use std::time::Duration;

const SRC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/kernels/moby.rs");

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// devmapper: `DeviceSet.Lock` and per-device lock taken in opposite
/// orders by `deleteDevice` and `resumeDevice`.
fn moby4951() {
    let devices = Mutex::new(); // DeviceSet.mu
    let device = Mutex::new(); // per-device lock
    {
        let (devices, device) = (devices.clone(), device.clone());
        go_named("deleteDevice", move || {
            devices.lock();
            // hash lookup + refcount check sit between the two locks,
            // widening the inversion window
            let scratch: Chan<u8> = Chan::new(1);
            scratch.send(1);
            scratch.recv();
            device.lock();
            device.unlock();
            devices.unlock();
        });
    }
    {
        let (devices, device) = (devices.clone(), device.clone());
        go_named("resumeDevice", move || {
            device.lock();
            devices.lock();
            devices.unlock();
            device.unlock();
        });
    }
    time::sleep(ms(30));
}

/// portallocator: `ReleaseAll` re-acquires the allocator mutex already
/// held by the caller — an immediate self-deadlock on the error path.
fn moby7559() {
    let mu = Mutex::new();
    mu.lock();
    // error path: ReleasePort calls ReleaseAll which locks again
    mu.lock();
    mu.unlock();
    mu.unlock();
}

/// devmapper: early `return` on the error path skips `unlock`, so the
/// next operation on the device set blocks forever.
fn moby17176() {
    let mu = Mutex::new();
    let errs: Chan<bool> = Chan::new(1);
    errs.send(true); // the error the buggy path observes
    {
        let (mu, errs) = (mu.clone(), errs.clone());
        go_named("deactivateDevice", move || {
            mu.lock();
            let failed = matches!(errs.try_recv(), Some(Some(true)));
            if failed {
                return; // BUG: forgot mu.unlock()
            }
            mu.unlock();
        });
    }
    {
        let mu = mu.clone();
        go_named("removeDevice", move || {
            mu.lock(); // blocks forever on the leaked lock
            mu.unlock();
        });
    }
    time::sleep(ms(30));
}

/// progressreader: the pull consumer stops at the first error while the
/// progress producer still has updates to send on a rendezvous channel.
fn moby21233() {
    let progress: Chan<u32> = Chan::new(0);
    {
        let progress = progress.clone();
        go_named("progressReader", move || {
            for i in 0..5 {
                progress.send(i); // leaks on i==1: consumer is gone
            }
        });
    }
    {
        let progress = progress.clone();
        go_named("pullConsumer", move || {
            let first = progress.recv();
            assert!(first.is_some());
            // error after the first chunk: stop consuming
        });
    }
    time::sleep(ms(30));
}

/// distribution: on the upload error branch `wg.Done` is skipped, so the
/// coordinator waits forever.
fn moby25348() {
    let wg = WaitGroup::new();
    let errors: Chan<bool> = Chan::new(2);
    for i in 0..2 {
        wg.add(1);
        let wg = wg.clone();
        let errors = errors.clone();
        go_named(&format!("pushLayer{i}"), move || {
            let failed = i == 1;
            if failed {
                errors.send(true);
                return; // BUG: missing wg.done() on the error branch
            }
            wg.done();
        });
    }
    {
        let wg = wg.clone();
        go_named("waiter", move || {
            wg.wait(); // leaks: counter never reaches zero
        });
    }
    time::sleep(ms(30));
}

/// logger: lost wakeup in the journald follower. The follower checks the
/// decode queue, finds it empty, and goes to sleep on the notify
/// channel; the rotator enqueues the entry and fires a *non-blocking*
/// notify in between — the notification is dropped and the follower
/// sleeps forever with work pending.
fn moby27782() {
    let queue: Chan<u32> = Chan::new(1); // decoded journal entries
    let notify: Chan<()> = Chan::new(0);
    {
        let (queue, notify) = (queue.clone(), notify.clone());
        go_named("followLogs", move || loop {
            if let Some(Some(_entry)) = queue.try_recv() {
                return; // entry processed: follower done
            }
            // BUG window: preempted here, the rotator's non-blocking
            // notify finds nobody listening and drops the wakeup.
            Select::new().recv(&notify, |_| ()).run();
        });
    }
    {
        let (queue, notify) = (queue.clone(), notify.clone());
        go_named("rotateLogs", move || {
            queue.send(1); // buffered: never blocks
                           // fire-and-forget notification (the actual fsnotify shape)
            Select::new().send(&notify, (), || ()).default(|| ()).run();
        });
    }
    time::sleep(ms(40));
}

/// moby28462 — the paper's listing 1.
///
/// `Monitor` loops on a select whose default branch takes the container
/// lock to inspect status. `StatusChange` takes the lock and *then*
/// performs a rendezvous send on the status channel. If the scheduler
/// preempts Monitor after the default case was chosen but before
/// `mu.lock()`, StatusChange grabs the lock and blocks on the send; the
/// Monitor then blocks on the lock, and the circular wait leaks both
/// goroutines while main exits successfully.
fn moby28462() {
    let mu = Mutex::new(); // Container.Lock
    let status_ch: Chan<u32> = Chan::new(0); // Container.status channel
    {
        let (mu, status_ch) = (mu.clone(), status_ch.clone());
        go_named("Monitor", move || loop {
            let got = Select::new().recv(&status_ch, |v| v).default(|| None).run();
            if got.is_some() {
                return; // status received: monitoring done
            }
            mu.lock(); // BUG window: StatusChange may hold the lock
                       // inspect container state
            mu.unlock();
        });
    }
    {
        let (mu, status_ch) = (mu.clone(), status_ch.clone());
        go_named("StatusChange", move || {
            mu.lock();
            status_ch.send(1); // rendezvous while holding the lock
            mu.unlock();
        });
    }
    time::sleep(ms(40));
}

/// containerd integration: main waits for the restart-manager done
/// signal, but the event loop exits on an unexpected event type without
/// ever sending it.
fn moby29733() {
    let done: Chan<u32> = Chan::new(0);
    {
        let done = done.clone();
        go_named("eventLoop", move || {
            let unexpected = true; // exit-event arrives malformed
            if unexpected {
                return; // BUG: done is never signalled
            }
            done.send(1);
        });
    }
    done.recv(); // main blocks forever: global deadlock
}

/// healthcheck: `openMonitorChannel` returns a channel that the probe
/// loop reads, but `stop` raced ahead and dropped the only sender.
fn moby30408() {
    let monitor: Chan<u32> = Chan::new(0);
    {
        go_named("stopHealthcheck", move || {
            // the stop path wins and simply returns; the sender that
            // should feed `monitor` is never started
        });
    }
    monitor.recv(); // main: global deadlock
}

/// stats collector: `unsubscribe` removes the subscriber without closing
/// its channel, leaving the publisher blocked on the next sample.
fn moby33293() {
    let samples: Chan<u64> = Chan::new(0);
    {
        let samples = samples.clone();
        go_named("statsPublisher", move || {
            for s in 0.. {
                samples.send(s); // leaks after unsubscribe
            }
        });
    }
    {
        let samples = samples.clone();
        go_named("subscriber", move || {
            let _ = samples.recv();
            let _ = samples.recv();
            // unsubscribe: just stop reading (BUG: channel never closed)
        });
    }
    time::sleep(ms(30));
}

/// attach: stdin copy and detach watcher select on different streams; a
/// narrow double-window lets the detach path win on both, leaving the
/// stdin copier blocked on a channel nobody drains.
fn moby33781() {
    let stdin: Chan<u8> = Chan::new(0);
    let detach: Chan<()> = Chan::new(0);
    {
        let (stdin, detach) = (stdin.clone(), detach.clone());
        go_named("stdinCopy", move || loop {
            let keep_going =
                Select::new().recv(&stdin, |v| v.is_some()).recv(&detach, |_| false).run();
            if !keep_going {
                return;
            }
        });
    }
    {
        let (stdin, detach) = (stdin.clone(), detach.clone());
        go_named("session", move || {
            stdin.send(1); // one keystroke
            goat_runtime::gosched(); // io wait before teardown
                                     // BUG window: if the copier was preempted between consuming
                                     // the keystroke and re-entering its select, it is not yet
                                     // listening — the non-blocking detach notification is
                                     // dropped and the copier sleeps forever.
            let notified = Select::new().send(&detach, (), || true).default(|| false).run();
            if !notified {
                // detach dropped: copier leaks on its next select
            }
        });
    }
    time::sleep(ms(40));
}

/// container store: `Get` takes a read lock and the error path then
/// calls a helper that takes the write lock on the same RWMutex —
/// upgrade deadlock within one goroutine.
fn moby36114() {
    let store = RwLock::new();
    {
        let store = store.clone();
        go_named("storeGet", move || {
            store.rlock();
            // error path: repair() wants the write lock while the read
            // lock is still held by this very goroutine
            store.lock();
            store.unlock();
            store.runlock();
        });
    }
    time::sleep(ms(30));
}

/// The 12 moby kernels.
pub const KERNELS: &[BugKernel] = &[
    BugKernel {
        name: "moby4951",
        project: Project::Moby,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "devmapper AB-BA: DeviceSet lock vs per-device lock taken in \
                      opposite orders by delete and resume",
        main: moby4951,
        source_file: SRC,
    },
    BugKernel {
        name: "moby7559",
        project: Project::Moby,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "portallocator re-locks the allocator mutex on the release-all \
                      error path (self deadlock)",
        main: moby7559,
        source_file: SRC,
    },
    BugKernel {
        name: "moby17176",
        project: Project::Moby,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "devmapper deactivateDevice returns early on error without \
                      unlocking; the next device operation blocks forever",
        main: moby17176,
        source_file: SRC,
    },
    BugKernel {
        name: "moby21233",
        project: Project::Moby,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "pull progress consumer stops at the first error; the progress \
                      reader blocks sending the next update",
        main: moby21233,
        source_file: SRC,
    },
    BugKernel {
        name: "moby25348",
        project: Project::Moby,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "distribution push skips wg.Done on the upload error branch; \
                      the coordinator waits forever",
        main: moby25348,
        source_file: SRC,
    },
    BugKernel {
        name: "moby27782",
        project: Project::Moby,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Rare,
        description: "journald follower loses the rotator's non-blocking wakeup \
                      between its empty-queue check and its select",
        main: moby27782,
        source_file: SRC,
    },
    BugKernel {
        name: "moby28462",
        project: Project::Moby,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "paper listing 1: Monitor's select-default path locks the \
                      container mutex while StatusChange blocks on a rendezvous \
                      send holding it",
        main: moby28462,
        source_file: SRC,
    },
    BugKernel {
        name: "moby29733",
        project: Project::Moby,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "restart-manager event loop exits on a malformed event without \
                      signalling done; main blocks forever",
        main: moby29733,
        source_file: SRC,
    },
    BugKernel {
        name: "moby30408",
        project: Project::Moby,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "healthcheck stop path races monitor-channel creation; main \
                      receives on a channel with no sender",
        main: moby30408,
        source_file: SRC,
    },
    BugKernel {
        name: "moby33293",
        project: Project::Moby,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "stats unsubscribe drops the subscriber without closing its \
                      channel; the publisher blocks on the next sample",
        main: moby33293,
        source_file: SRC,
    },
    BugKernel {
        name: "moby33781",
        project: Project::Moby,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Rare,
        description: "attach detach notification is dropped when the copier's \
                      select consumes the pending keystroke first",
        main: moby33781,
        source_file: SRC,
    },
    BugKernel {
        name: "moby36114",
        project: Project::Moby,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "container store read-lock upgrade: Get holds RLock while the \
                      repair path wants Lock on the same RWMutex",
        main: moby36114,
        source_file: SRC,
    },
];
