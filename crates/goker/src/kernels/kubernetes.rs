//! Kubernetes blocking-bug kernels, including the two the paper
//! highlights: `kubernetes6632` (misuse of channels and locks — only
//! GoAT detected it) and `kubernetes11298` (the second coverage-study
//! kernel, figure 6b).

use crate::{BugCause, BugKernel, ExpectedSymptom, Project, Rarity};
use goat_runtime::{go_named, gosched, time, Chan, Cond, Mutex, RwLock, Select};
use std::time::Duration;

const SRC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/kernels/kubernetes.rs");

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// util.Until: the worker checks the stop channel and then parks on the
/// work channel; the stopper signals stop and never sends work again.
fn kubernetes1321() {
    let work: Chan<u32> = Chan::new(0);
    let stop: Chan<()> = Chan::new(1);
    {
        let (work, stop) = (work.clone(), stop.clone());
        go_named("until", move || loop {
            if stop.try_recv().is_some() {
                return;
            }
            // BUG window: stop may be signalled after the check; the
            // worker then parks on work with no producer left.
            let Some(_task) = work.recv() else { return };
        });
    }
    {
        let (work, stop) = (work.clone(), stop.clone());
        go_named("stopper", move || {
            work.send(1); // final task
            stop.send(()); // then request shutdown
        });
    }
    time::sleep(ms(30));
}

/// registry watch: the decoder goroutine feeds the result channel; the
/// API client abandons the watch without stopping the decoder.
fn kubernetes5316() {
    let results: Chan<u32> = Chan::new(0);
    {
        let results = results.clone();
        go_named("decoder", move || {
            for ev in 0..3 {
                results.send(ev); // leaks once the client is gone
            }
        });
    }
    {
        let results = results.clone();
        go_named("client", move || {
            let _ = results.recv();
            // client cancels the watch (BUG: decoder keeps sending)
        });
    }
    time::sleep(ms(30));
}

/// kubelet: misuse of channels and locks — two connection writers
/// register on an activity counter and each defers teardown to the
/// other under the state mutex. Both deferring (and thus the error
/// reporter starving) needs two coinciding preemptions, which is why
/// only GoAT's schedule perturbation exposed this bug (§IV-A).
fn kubernetes6632() {
    let errc: Chan<u32> = Chan::new(2);
    let active: Chan<()> = Chan::new(2);
    let mu = Mutex::new();
    {
        let errc = errc.clone();
        go_named("errorReporter", move || {
            let _ = errc.recv(); // leaks when both writers defer
        });
    }
    for i in 0..2u32 {
        let (errc, active, mu) = (errc.clone(), active.clone(), mu.clone());
        go_named(&format!("connWriter{i}"), move || {
            active.send(()); // register this writer
                             // BUG window 1: the sibling registers before our check
            mu.lock();
            let both_active = active.len() > 1;
            mu.unlock();
            if both_active {
                // defer teardown to the sibling…
                // BUG window 2: …which may have seen the same state
                // right before this token is retired.
                let _ = active.recv();
                return;
            }
            errc.send(i); // report the connection error
            let _ = active.recv();
        });
    }
    time::sleep(ms(40));
}

/// status manager: pod-status lock and manager lock taken in opposite
/// orders by the updater and the syncer.
fn kubernetes10182() {
    let pod_statuses = Mutex::new();
    let manager = Mutex::new();
    {
        let (pod_statuses, manager) = (pod_statuses.clone(), manager.clone());
        go_named("setPodStatus", move || {
            pod_statuses.lock();
            // deep-copy work widens the window
            let scratch: Chan<u8> = Chan::new(1);
            scratch.send(0);
            scratch.recv();
            manager.lock();
            manager.unlock();
            pod_statuses.unlock();
        });
    }
    {
        let (pod_statuses, manager) = (pod_statuses.clone(), manager.clone());
        go_named("syncBatch", move || {
            manager.lock();
            pod_statuses.lock();
            pod_statuses.unlock();
            manager.unlock();
        });
    }
    time::sleep(ms(30));
}

/// kubelet prober: nested selects in nested loops aggregate worker
/// results while a cond-var gates retries; the aggregator may take the
/// stop case while a worker still blocks on the result channel
/// (coverage-study kernel, fig. 6b).
fn kubernetes11298() {
    let results: Chan<u32> = Chan::new(0);
    let stop: Chan<()> = Chan::new(1);
    let mu = Mutex::new();
    let cv = Cond::new(&mu);
    for i in 0..2u32 {
        let (results, mu, cv) = (results.clone(), mu.clone(), cv.clone());
        go_named(&format!("probeWorker{i}"), move || {
            // gate: workers report one at a time
            mu.lock();
            if i == 1 {
                cv.wait(); // woken by the sibling
            }
            mu.unlock();
            results.send(i); // BUG: leaks if the aggregator stopped
            mu.lock();
            cv.signal();
            mu.unlock();
        });
    }
    {
        let (results, stop) = (results.clone(), stop.clone());
        go_named("aggregator", move || {
            let mut got = 0;
            loop {
                // BUG: once the manager's stop lands, it races the
                // second worker's result; picking stop exits the loop
                // while that worker still blocks sending.
                let stopped = Select::new().recv(&results, |_| false).recv(&stop, |_| true).run();
                if stopped {
                    return;
                }
                got += 1;
                if got == 2 {
                    return;
                }
            }
        });
    }
    {
        let stop = stop.clone();
        go_named("manager", move || {
            // unrelated manager work before requesting shutdown
            gosched();
            gosched();
            gosched();
            stop.send(()); // buffered: never blocks
        });
    }
    time::sleep(ms(50));
}

/// cacher: the initial list pushes events into the watcher's full
/// buffer while holding the cache write lock; the watcher needs the
/// read lock to drain.
fn kubernetes13135() {
    let cache = RwLock::new();
    let events: Chan<u32> = Chan::new(1);
    events.send(0); // buffer already full from a previous event
    {
        let (cache, events) = (cache.clone(), events.clone());
        go_named("terminateAllWatchers", move || {
            cache.lock();
            events.send(1); // BUG: full buffer while holding the lock
            cache.unlock();
        });
    }
    {
        let (cache, events) = (cache.clone(), events.clone());
        go_named("watcher", move || {
            cache.rlock(); // queued behind the writer
            let _ = events.recv();
            cache.runlock();
        });
    }
    time::sleep(ms(30));
}

/// watch: `Stop` closes the stop channel but the event distributor is
/// already blocked sending a result nobody will read.
fn kubernetes25331() {
    let result: Chan<u32> = Chan::new(0);
    let stopped: Chan<()> = Chan::new(0);
    {
        let (result, stopped) = (result.clone(), stopped.clone());
        go_named("distributor", move || loop {
            let stop = Select::new().send(&result, 1, || false).recv(&stopped, |_| true).run();
            if stop {
                return;
            }
        });
    }
    {
        let result = result.clone();
        go_named("consumer", move || {
            let _ = result.recv();
            // BUG: consumer returns without signalling `stopped`
        });
    }
    time::sleep(ms(30));
}

/// pod worker: `processNextWorkItem` holds the queue lock while waiting
/// for the pod result; the result writer needs the queue lock first.
fn kubernetes26980() {
    let queue = Mutex::new();
    let pod_result: Chan<u32> = Chan::new(0);
    {
        let (queue, pod_result) = (queue.clone(), pod_result.clone());
        go_named("processNextWorkItem", move || {
            queue.lock();
            let _ = pod_result.recv(); // BUG: waits holding the queue
            queue.unlock();
        });
    }
    {
        let (queue, pod_result) = (queue.clone(), pod_result.clone());
        go_named("podWorker", move || {
            queue.lock(); // must mark the item done first
            pod_result.send(1);
            queue.unlock();
        });
    }
    time::sleep(ms(30));
}

/// federation controller: the cluster-delivery path re-locks the
/// delivery mutex held by its caller.
fn kubernetes30872() {
    let deliverer = Mutex::new();
    {
        let deliverer = deliverer.clone();
        go_named("deliverCluster", move || {
            deliverer.lock();
            // helper invoked while holding the lock re-enters it
            deliverer.lock(); // BUG: self deadlock
            deliverer.unlock();
            deliverer.unlock();
        });
    }
    gosched();
}

/// scheduler cache: the event sender publishes on an unbuffered updates
/// channel after the receiving loop exited on a stop signal.
fn kubernetes38669() {
    let updates: Chan<u32> = Chan::new(0);
    let stop: Chan<()> = Chan::new(1);
    stop.send(());
    {
        let updates = updates.clone();
        go_named("eventSender", move || {
            updates.send(1); // leaks if the loop took stop first
        });
    }
    {
        let (updates, stop) = (updates.clone(), stop.clone());
        go_named("updateLoop", move || loop {
            let stopped = Select::new().recv(&updates, |_| false).recv(&stop, |_| true).run();
            if stopped {
                return;
            }
        });
    }
    time::sleep(ms(30));
}

/// resource quota: the evaluator re-enters RLock on the informer's
/// RWMutex while a writer queued in between.
fn kubernetes58107() {
    let informer = RwLock::new();
    {
        let informer = informer.clone();
        go_named("evaluate", move || {
            informer.rlock();
            gosched(); // quota computation
            informer.rlock(); // BUG: recursive read behind a writer
            informer.runlock();
            informer.runlock();
        });
    }
    {
        let informer = informer.clone();
        go_named("resync", move || {
            informer.lock();
            informer.unlock();
        });
    }
    time::sleep(ms(30));
}

/// statefulset: the control loop waits on a cond var whose signaller
/// already fired during the loop's bookkeeping window.
fn kubernetes62464() {
    let mu = Mutex::new();
    let cv = Cond::new(&mu);
    {
        let (mu, cv) = (mu.clone(), cv.clone());
        go_named("controlLoop", move || {
            // bookkeeping before parking widens the missed-signal window
            let scratch: Chan<u8> = Chan::new(1);
            scratch.send(0);
            scratch.recv();
            mu.lock();
            cv.wait(); // BUG: the signal may already be gone
            mu.unlock();
        });
    }
    {
        let (mu, cv) = (mu.clone(), cv.clone());
        go_named("podUpdate", move || {
            mu.lock();
            cv.signal(); // lost if the loop is not waiting yet
            mu.unlock();
        });
    }
    time::sleep(ms(30));
}

/// wait.poll: the poller goroutine delivers ticks to a channel the
/// caller stopped draining after its condition errored.
fn kubernetes70277() {
    let ticks: Chan<u32> = Chan::new(0);
    {
        let ticks = ticks.clone();
        go_named("poller", move || {
            for t in 0..3 {
                ticks.send(t); // leaks once the caller gave up
            }
            ticks.close();
        });
    }
    {
        let ticks = ticks.clone();
        go_named("waitFor", move || {
            let _ = ticks.recv();
            // condition returned an error: stop draining (BUG)
        });
    }
    time::sleep(ms(30));
}

/// The 13 kubernetes kernels.
pub const KERNELS: &[BugKernel] = &[
    BugKernel {
        name: "kubernetes1321",
        project: Project::Kubernetes,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "util.Until worker checks stop then parks on the work \
                      channel; the stopper's final task can slip in between",
        main: kubernetes1321,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes5316",
        project: Project::Kubernetes,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "watch decoder keeps feeding the result channel after the \
                      client abandoned the watch",
        main: kubernetes5316,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes6632",
        project: Project::Kubernetes,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::VeryRare,
        description: "kubelet connection writers mutually defer teardown under \
                      the state mutex; the error reporter starves — needs two \
                      coinciding preemptions (only GoAT detected it)",
        main: kubernetes6632,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes10182",
        project: Project::Kubernetes,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "status manager and pod-status locks taken in opposite \
                      orders by setPodStatus and syncBatch",
        main: kubernetes10182,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes11298",
        project: Project::Kubernetes,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "prober aggregator's select may take stop while cond-gated \
                      workers still block sending results (coverage-study \
                      kernel, fig. 6b)",
        main: kubernetes11298,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes13135",
        project: Project::Kubernetes,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "cacher pushes into a full watcher buffer holding the write \
                      lock the draining watcher needs",
        main: kubernetes13135,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes25331",
        project: Project::Kubernetes,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "watch consumer returns without signalling stopped; the \
                      distributor blocks on its next result",
        main: kubernetes25331,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes26980",
        project: Project::Kubernetes,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "work-item processor waits for the pod result holding the \
                      queue lock the result writer needs",
        main: kubernetes26980,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes30872",
        project: Project::Kubernetes,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "federation cluster-delivery helper re-enters the delivery \
                      mutex held by its caller",
        main: kubernetes30872,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes38669",
        project: Project::Kubernetes,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "scheduler-cache event sender races the update loop's stop \
                      case; picking stop strands the sender",
        main: kubernetes38669,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes58107",
        project: Project::Kubernetes,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "quota evaluator re-enters RLock behind the resync writer \
                      on the informer RWMutex",
        main: kubernetes58107,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes62464",
        project: Project::Kubernetes,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "statefulset control loop misses the pod-update cond signal \
                      fired during its bookkeeping window",
        main: kubernetes62464,
        source_file: SRC,
    },
    BugKernel {
        name: "kubernetes70277",
        project: Project::Kubernetes,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "wait.poll caller stops draining ticks after its condition \
                      errors; the poller blocks forever",
        main: kubernetes70277,
        source_file: SRC,
    },
];
