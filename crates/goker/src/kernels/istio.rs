//! Istio blocking-bug kernels.

use crate::{BugCause, BugKernel, ExpectedSymptom, Project, Rarity};
use goat_runtime::{go_named, time, Chan, Mutex, Select};
use std::time::Duration;

const SRC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/kernels/istio.rs");

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// config store: `Push` holds the store mutex while enqueueing onto the
/// full task queue; the worker draining the queue takes the store mutex
/// per task.
fn istio16224() {
    let store = Mutex::new();
    let tasks: Chan<u32> = Chan::new(1);
    tasks.send(0); // queue already carries a pending task
    {
        let (store, tasks) = (store.clone(), tasks.clone());
        go_named("push", move || {
            store.lock();
            tasks.send(1); // BUG: full queue while holding the store
            store.unlock();
        });
    }
    {
        let (store, tasks) = (store.clone(), tasks.clone());
        go_named("worker", move || {
            store.lock(); // takes the store before popping a task
            let _ = tasks.recv();
            store.unlock();
        });
    }
    time::sleep(ms(30));
}

/// pilot agent: the reconcile loop waits for a terminate notification
/// of an epoch that the abort path already discarded.
fn istio17860() {
    let terminated: Chan<u32> = Chan::new(0);
    {
        let terminated = terminated.clone();
        go_named("proxyEpoch", move || {
            let aborted = true;
            if aborted {
                return; // BUG: epoch exits without notifying
            }
            terminated.send(1);
        });
    }
    {
        let terminated = terminated.clone();
        go_named("reconcile", move || {
            let _ = terminated.recv(); // waits forever
        });
    }
    time::sleep(ms(30));
}

/// status reporter: the ledger distributor's select races the snapshot
/// acknowledgement against the shutdown signal; when both are ready the
/// wrong pick strands the acknowledging worker.
fn istio18454() {
    let acks: Chan<u32> = Chan::new(0);
    let shutdown: Chan<()> = Chan::new(1);
    shutdown.send(()); // reporter shutting down
    {
        let acks = acks.clone();
        go_named("worker", move || {
            acks.send(1); // acknowledgement of the distributed snapshot
        });
    }
    {
        let (acks, shutdown) = (acks.clone(), shutdown.clone());
        go_named("distributor", move || loop {
            // BUG: ack and shutdown both ready; picking shutdown exits
            // while the worker is still blocked on its ack.
            let stop = Select::new().recv(&acks, |_| false).recv(&shutdown, |_| true).run();
            if stop {
                return;
            }
        });
    }
    time::sleep(ms(30));
}

/// The 3 istio kernels.
pub const KERNELS: &[BugKernel] = &[
    BugKernel {
        name: "istio16224",
        project: Project::Istio,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "config push enqueues onto a full task queue while holding \
                      the store mutex the worker needs",
        main: istio16224,
        source_file: SRC,
    },
    BugKernel {
        name: "istio17860",
        project: Project::Istio,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "aborted proxy epoch exits without posting its terminate \
                      notification; reconcile waits forever",
        main: istio17860,
        source_file: SRC,
    },
    BugKernel {
        name: "istio18454",
        project: Project::Istio,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "distributor's select may take the shutdown case while a \
                      worker is blocked acknowledging a snapshot",
        main: istio18454,
        source_file: SRC,
    },
];
