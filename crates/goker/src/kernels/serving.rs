//! Knative Serving blocking-bug kernels, including `serving2137` —
//! the kernel the paper highlights because only GOAT with delay bound
//! `D = 2` exposed it.

use crate::{BugCause, BugKernel, ExpectedSymptom, Project, Rarity};
use goat_runtime::{go_named, time, Chan, Mutex};
use std::time::Duration;

const SRC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/kernels/serving.rs");

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// breaker: a waiter expects one of two in-flight requests to forward a
/// completion. Each request defers to the other when it observes both
/// activity tokens outstanding. Starving the waiter needs **two**
/// coinciding preemptions — one request parked between registering and
/// checking, the other parked between checking and retiring its token —
/// which is why the paper found this bug only with two injected yields
/// (GOAT-D2): after any single preemption the surviving request still
/// observes one token and serves the waiter.
fn serving2137() {
    let active: Chan<()> = Chan::new(2); // outstanding-request tokens
    let completions: Chan<u32> = Chan::new(2);
    {
        let completions = completions.clone();
        go_named("waiter", move || {
            let _ = completions.recv(); // leaks if both requests defer
        });
    }
    for i in 0..2u32 {
        let active = active.clone();
        let completions = completions.clone();
        go_named(&format!("request{i}"), move || {
            active.send(()); // register as an outstanding request
                             // BUG window 1: preempted here, the other request also
                             // registers before this one runs the check below.
            let scratch: Chan<u8> = Chan::new(1);
            scratch.send(0);
            let both_active = active.len() > 1;
            if both_active {
                // defer to the other request…
                // BUG window 2: …but if *that* request observed the same
                // two-token state before this recv retires our token,
                // it defers as well and nobody serves the waiter.
                let _ = active.recv();
                return;
            }
            completions.send(i);
            let _ = active.recv(); // return the token
        });
    }
    time::sleep(ms(40));
}

/// activator throttler: the revision updater and the capacity updater
/// take the two throttler locks in opposite orders.
fn serving3068() {
    let revisions = Mutex::new();
    let capacity = Mutex::new();
    {
        let (revisions, capacity) = (revisions.clone(), capacity.clone());
        go_named("updateRevision", move || {
            revisions.lock();
            // recompute work widens the inversion window
            let scratch: Chan<u8> = Chan::new(1);
            scratch.send(0);
            scratch.recv();
            capacity.lock();
            capacity.unlock();
            revisions.unlock();
        });
    }
    {
        let (revisions, capacity) = (revisions.clone(), capacity.clone());
        go_named("updateCapacity", move || {
            capacity.lock();
            revisions.lock();
            revisions.unlock();
            capacity.unlock();
        });
    }
    time::sleep(ms(30));
}

/// autoscaler: the stat collector keeps reporting to the metric channel
/// after the scraper that consumed it was stopped.
fn serving4908() {
    let stats: Chan<u32> = Chan::new(0);
    {
        let stats = stats.clone();
        go_named("collector", move || {
            for s in 0..4 {
                stats.send(s); // leaks at s==1 once the scraper stops
            }
        });
    }
    {
        let stats = stats.clone();
        go_named("scraper", move || {
            let _ = stats.recv();
            // scraper stopped (BUG: collector keeps sending)
        });
    }
    time::sleep(ms(30));
}

/// revision watcher: main waits for the first update, but the watcher
/// returns early when the informer feed reports EOF before any update.
fn serving5865() {
    let updates: Chan<u32> = Chan::new(0);
    {
        let updates = updates.clone();
        go_named("revisionWatcher", move || {
            let eof = true; // informer feed closed immediately
            if eof {
                return; // BUG: no update, channel never written/closed
            }
            updates.send(1);
        });
    }
    updates.recv(); // main: global deadlock
}

/// The 4 serving kernels.
pub const KERNELS: &[BugKernel] = &[
    BugKernel {
        name: "serving2137",
        project: Project::Serving,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::VeryRare,
        description: "breaker requests mutually defer when both activity tokens \
                      are visible; starving the waiter needs two coinciding \
                      preemptions (the paper's GOAT-D2-only bug)",
        main: serving2137,
        source_file: SRC,
    },
    BugKernel {
        name: "serving3068",
        project: Project::Serving,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "throttler revision and capacity locks taken in opposite \
                      orders by the two updaters",
        main: serving3068,
        source_file: SRC,
    },
    BugKernel {
        name: "serving4908",
        project: Project::Serving,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "stat collector keeps sending after the scraper stopped \
                      consuming the metric channel",
        main: serving4908,
        source_file: SRC,
    },
    BugKernel {
        name: "serving5865",
        project: Project::Serving,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "revision watcher returns on EOF without ever sending the \
                      update main is waiting for",
        main: serving5865,
        source_file: SRC,
    },
];
