//! Syncthing blocking-bug kernels.

use crate::{BugCause, BugKernel, ExpectedSymptom, Project, Rarity};
use goat_runtime::{go_named, time, Chan, Mutex, Select, WaitGroup};
use std::time::Duration;

const SRC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/kernels/syncthing.rs");

/// suture supervisor: `Stop` waits for the service to acknowledge while
/// the service blocks publishing an event under the supervisor mutex
/// `Stop` already holds — main joins through the wait group.
fn syncthing4829() {
    let mu = Mutex::new();
    let events: Chan<u32> = Chan::new(0);
    let wg = WaitGroup::new();
    wg.add(1);
    {
        let (mu, events, wg) = (mu.clone(), events.clone(), wg.clone());
        go_named("serve", move || {
            mu.lock();
            events.send(1); // BUG: publishes while holding the lock
            mu.unlock();
            wg.done();
        });
    }
    {
        let (mu, events) = (mu.clone(), events.clone());
        go_named("stop", move || {
            mu.lock(); // blocked by serve
            let _ = events.recv();
            mu.unlock();
        });
    }
    wg.wait(); // main: global deadlock
}

/// protocol: the dispatcher takes the close case while the cluster
/// config sender still blocks on its rendezvous.
fn syncthing5795() {
    let cluster_config: Chan<u32> = Chan::new(0);
    let closed: Chan<()> = Chan::new(1);
    closed.send(()); // connection torn down concurrently
    {
        let cluster_config = cluster_config.clone();
        go_named("ccSender", move || {
            cluster_config.send(1); // leaks if dispatcher closes first
        });
    }
    {
        let (cluster_config, closed) = (cluster_config.clone(), closed.clone());
        go_named("dispatcher", move || loop {
            // BUG: both cases ready — close may win over the pending
            // cluster config, stranding the sender.
            let done = Select::new().recv(&cluster_config, |_| false).recv(&closed, |_| true).run();
            if done {
                return;
            }
        });
    }
    time::sleep(Duration::from_millis(30));
}

/// The 2 syncthing kernels.
pub const KERNELS: &[BugKernel] = &[
    BugKernel {
        name: "syncthing4829",
        project: Project::Syncthing,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "service publishes an event while holding the supervisor \
                      mutex Stop needs to drain it; main waits on both",
        main: syncthing4829,
        source_file: SRC,
    },
    BugKernel {
        name: "syncthing5795",
        project: Project::Syncthing,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "dispatcher's select may take the close case while the \
                      cluster-config sender still blocks",
        main: syncthing5795,
        source_file: SRC,
    },
];
