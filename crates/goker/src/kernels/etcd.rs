//! etcd blocking-bug kernels, including `etcd7443` — one of the two
//! kernels the paper uses for its coverage study (figure 6a): extensive
//! channels, mutexes and nested selects inside loops.

use crate::{BugCause, BugKernel, ExpectedSymptom, Project, Rarity};
use goat_runtime::{go_named, gosched, time, Chan, Mutex, RwLock, Select, WaitGroup};
use std::time::Duration;

const SRC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/kernels/etcd.rs");

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// client: the retry path re-locks the client mutex already held by the
/// request path.
fn etcd5509() {
    let client = Mutex::new();
    client.lock();
    // request failed; retry() locks again on the same goroutine
    client.lock(); // main: global deadlock
    client.unlock();
    client.unlock();
}

/// watcher: the event loop blocks forwarding an event to `resultc`
/// after the controller stopped reading.
fn etcd6708() {
    let resultc: Chan<u32> = Chan::new(0);
    {
        let resultc = resultc.clone();
        go_named("eventLoop", move || {
            for ev in 0..3 {
                resultc.send(ev); // leaks on ev==1
            }
        });
    }
    {
        let resultc = resultc.clone();
        go_named("controller", move || {
            let _ = resultc.recv();
            // watcher canceled: stop reading (BUG: loop not stopped)
        });
    }
    time::sleep(ms(30));
}

/// raft node: `Status` sends its request while the node's run loop may
/// take the stop case first and exit, stranding the requester.
fn etcd6857() {
    let statusc: Chan<u32> = Chan::new(0);
    let stopc: Chan<()> = Chan::new(1);
    stopc.send(()); // stop already requested
    {
        let statusc = statusc.clone();
        go_named("statusRequest", move || {
            statusc.send(1); // leaks when the run loop exits first
        });
    }
    {
        let (statusc, stopc) = (statusc.clone(), stopc.clone());
        go_named("nodeRun", move || loop {
            // BUG: the status request and the stop signal are both
            // ready; the pseudo-random choice may pick stop and exit,
            // stranding the blocked status sender.
            let stop = Select::new().recv(&statusc, |_| false).recv(&stopc, |_| true).run();
            if stop {
                return;
            }
        });
    }
    time::sleep(ms(30));
}

/// mvcc watchable store: the sync loop takes the store mutex and then
/// pushes to a full victim channel; the victim drainer needs the store
/// mutex — a mixed cycle behind two nested selects in loops.
fn etcd7443() {
    let store = Mutex::new();
    let victims: Chan<u32> = Chan::new(1);
    let notify: Chan<()> = Chan::new(0);
    victims.send(0); // a victim batch is already pending
    {
        let (store, victims, notify) = (store.clone(), victims.clone(), notify.clone());
        go_named("victimLoop", move || loop {
            // poll for a kick from the sync loop
            let kicked = Select::new().recv(&notify, |_| true).default(|| false).run();
            // BUG window: between this poll and the lock below, the
            // sync loop can fill the victim queue while holding the
            // store mutex we are about to take.
            store.lock();
            let batch = victims.try_recv(); // drain under the store lock
            store.unlock();
            match batch {
                Some(Some(_retry)) => continue,
                _ if kicked => continue,
                _ => return,
            }
        });
    }
    {
        let (store, victims, notify) = (store.clone(), victims.clone(), notify.clone());
        go_named("syncLoop", move || {
            store.lock();
            // unsynced watchers found: queue them as victims
            victims.send(1); // blocks on a full queue while holding mu
            store.unlock();
            // fire-and-forget kick
            Select::new().send(&notify, (), || ()).default(|| ()).run();
        });
    }
    time::sleep(ms(50));
}

/// lease keep-alive: the stream writer blocks on the response channel
/// after the stream reader exited on an error.
fn etcd7492() {
    let respc: Chan<u32> = Chan::new(0);
    let wg = WaitGroup::new();
    wg.add(1);
    {
        let (respc, wg) = (respc.clone(), wg.clone());
        go_named("keepAliveSender", move || {
            wg.done();
            respc.send(1); // response forwarded
            respc.send(2); // BUG: reader exited after the first response
        });
    }
    {
        let respc = respc.clone();
        go_named("keepAliveReader", move || {
            let _ = respc.recv();
            // stream error: return without draining
        });
    }
    wg.wait();
    time::sleep(ms(30));
}

/// store: `Compact` re-enters `RLock` on the index RWMutex while a
/// writer queued in between (write-preferring lock).
fn etcd7902() {
    let index = RwLock::new();
    {
        let index = index.clone();
        go_named("compact", move || {
            index.rlock();
            gosched(); // scan work: lets the writer queue up
            index.rlock(); // BUG: second read-lock behind the writer
            index.runlock();
            index.runlock();
        });
    }
    {
        let index = index.clone();
        go_named("put", move || {
            index.lock();
            index.unlock();
        });
    }
    time::sleep(ms(30));
}

/// raft: `node.Propose` needs the node mutex held by `Stop`, which in
/// turn waits for the proposer to acknowledge — main joins via wait.
fn etcd10492() {
    let node = Mutex::new();
    let ack: Chan<()> = Chan::new(0);
    let wg = WaitGroup::new();
    wg.add(2);
    {
        let (node, ack, wg) = (node.clone(), ack.clone(), wg.clone());
        go_named("stop", move || {
            node.lock();
            ack.recv(); // BUG: waits for the proposer while holding node
            node.unlock();
            wg.done();
        });
    }
    {
        let (node, ack, wg) = (node.clone(), ack.clone(), wg.clone());
        go_named("propose", move || {
            node.lock(); // blocked by stop
            ack.send(());
            node.unlock();
            wg.done();
        });
    }
    wg.wait(); // global deadlock
}

/// The 7 etcd kernels.
pub const KERNELS: &[BugKernel] = &[
    BugKernel {
        name: "etcd5509",
        project: Project::Etcd,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "client retry path re-locks the client mutex held by the \
                      request path",
        main: etcd5509,
        source_file: SRC,
    },
    BugKernel {
        name: "etcd6708",
        project: Project::Etcd,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "watch event loop blocks forwarding to resultc after the \
                      controller stopped reading",
        main: etcd6708,
        source_file: SRC,
    },
    BugKernel {
        name: "etcd6857",
        project: Project::Etcd,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "node run loop may select the stop case over a concurrent \
                      status request, stranding the requester",
        main: etcd6857,
        source_file: SRC,
    },
    BugKernel {
        name: "etcd7443",
        project: Project::Etcd,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "watchable-store sync loop pushes victims onto a full queue \
                      while holding the store mutex the victim loop needs \
                      (coverage-study kernel, fig. 6a)",
        main: etcd7443,
        source_file: SRC,
    },
    BugKernel {
        name: "etcd7492",
        project: Project::Etcd,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "lease keep-alive writer blocks on the response channel after \
                      the reader exited on error",
        main: etcd7492,
        source_file: SRC,
    },
    BugKernel {
        name: "etcd7902",
        project: Project::Etcd,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "compaction re-enters RLock behind a queued writer on the \
                      index RWMutex",
        main: etcd7902,
        source_file: SRC,
    },
    BugKernel {
        name: "etcd10492",
        project: Project::Etcd,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "Stop waits for the proposer's ack while holding the node \
                      mutex the proposer needs",
        main: etcd10492,
        source_file: SRC,
    },
];
