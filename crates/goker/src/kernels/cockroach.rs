//! CockroachDB blocking-bug kernels.

use crate::{BugCause, BugKernel, ExpectedSymptom, Project, Rarity};
use goat_runtime::{go_named, gosched, time, Chan, Cond, Mutex, RwLock, Select, WaitGroup};
use std::time::Duration;

const SRC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/kernels/cockroach.rs");

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// gossip: `manage` locks the gossip mutex and then invokes a status
/// callback that locks it again — recursive lock on the same mutex.
fn cockroach584() {
    let gossip = Mutex::new();
    gossip.lock();
    // callback invoked while holding the lock
    gossip.lock(); // self deadlock: main blocks, builtin-visible
    gossip.unlock();
    gossip.unlock();
}

/// stopper: a worker parks on the quiescer channel while holding the
/// stopper mutex; `Quiesce` needs that mutex to signal the channel.
fn cockroach1055() {
    let mu = Mutex::new();
    let quiesce: Chan<()> = Chan::new(0);
    let wg = WaitGroup::new();
    wg.add(1);
    {
        let (mu, quiesce, wg) = (mu.clone(), quiesce.clone(), wg.clone());
        go_named("worker", move || {
            mu.lock();
            quiesce.recv(); // BUG: waits while holding the stopper mutex
            mu.unlock();
            wg.done();
        });
    }
    {
        let (mu, quiesce) = (mu.clone(), quiesce.clone());
        go_named("quiesce", move || {
            mu.lock(); // blocked by the worker forever
            quiesce.send(());
            mu.unlock();
        });
    }
    wg.wait(); // main joins the circular wait: global deadlock
}

/// stopper: `Stop` performs one rendezvous per registered worker, but a
/// worker that exits early on its own error path never receives.
fn cockroach1462() {
    let drain: Chan<()> = Chan::new(0);
    {
        let drain = drain.clone();
        go_named("worker", move || {
            let failed = true; // the task hit an error
            if failed {
                return; // BUG: exits without draining its token
            }
            drain.recv();
        });
    }
    {
        let drain = drain.clone();
        go_named("stopper", move || {
            drain.send(()); // leaks: the worker is gone
        });
    }
    time::sleep(ms(30));
}

/// storage event feed: the stopper's done notification races the last
/// payload; when the consumer's select sees both ready, the
/// pseudo-random choice may take `done` first and return with the
/// payload sender still blocked (the select nondeterminism of §II-B).
fn cockroach2448() {
    let events: Chan<u32> = Chan::new(0);
    let done: Chan<()> = Chan::new(1);
    {
        let events = events.clone();
        go_named("feed", move || {
            events.send(7); // rendezvous payload, leaks if abandoned
        });
    }
    {
        let done = done.clone();
        go_named("stopper", move || {
            done.send(()); // buffered: completes immediately
        });
    }
    {
        let (events, done) = (events.clone(), done.clone());
        go_named("consumer", move || {
            // BUG: both cases ready; taking done first abandons the feed
            let finished = Select::new().recv(&events, |_| false).recv(&done, |_| true).run();
            if finished {
                return;
            }
            let _ = done.recv(); // drain the stop notification
        });
    }
    time::sleep(ms(30));
}

/// raft storage: a reader re-enters `RLock` while a writer is already
/// queued — the write-preferring RWMutex deadlocks the reader against
/// the writer.
fn cockroach3710() {
    let store = RwLock::new();
    {
        let store = store.clone();
        go_named("processRaft", move || {
            store.rlock();
            gosched(); // raft tick work; lets the writer queue up
            store.rlock(); // BUG: recursive read-lock behind a writer
            store.runlock();
            store.runlock();
        });
    }
    {
        let store = store.clone();
        go_named("applySnapshot", move || {
            store.lock(); // writer waits for the first read lock
            store.unlock();
        });
    }
    time::sleep(ms(30));
}

/// test cluster: two nodes exchange gossip while locking each other's
/// state in opposite orders (AB-BA with a narrow window).
fn cockroach6181() {
    let node1 = Mutex::new();
    let node2 = Mutex::new();
    {
        let (node1, node2) = (node1.clone(), node2.clone());
        go_named("gossip1to2", move || {
            node1.lock();
            node2.lock(); // BUG window: node2 may already be held
            node2.unlock();
            node1.unlock();
        });
    }
    {
        let (node1, node2) = (node1.clone(), node2.clone());
        go_named("gossip2to1", move || {
            node2.lock();
            node1.lock();
            node1.unlock();
            node2.unlock();
        });
    }
    time::sleep(ms(30));
}

/// sql lease manager: `Acquire` locks the lease state then the name
/// cache; `Release` locks them in the opposite order, with cache work in
/// between widening the window.
fn cockroach7504() {
    let lease = Mutex::new();
    let cache = Mutex::new();
    let wg = WaitGroup::new();
    wg.add(2);
    {
        let (lease, cache, wg) = (lease.clone(), cache.clone(), wg.clone());
        go_named("acquire", move || {
            lease.lock();
            // refresh bookkeeping between the two acquisitions
            let scratch: Chan<u8> = Chan::new(1);
            scratch.send(0);
            scratch.recv();
            cache.lock();
            cache.unlock();
            lease.unlock();
            wg.done();
        });
    }
    {
        let (lease, cache, wg) = (lease.clone(), cache.clone(), wg.clone());
        go_named("release", move || {
            cache.lock();
            lease.lock();
            lease.unlock();
            cache.unlock();
            wg.done();
        });
    }
    wg.wait(); // main waits: the AB-BA becomes a global deadlock
}

/// gossip server: the error path returns without unlocking; the
/// subsequent `tightenNetwork` self-deadlocks on main.
fn cockroach9935() {
    let mu = Mutex::new();
    let failed: Chan<bool> = Chan::new(1);
    failed.send(true);
    mu.lock();
    if matches!(failed.try_recv(), Some(Some(true))) {
        // BUG: early error return skips unlock
    } else {
        mu.unlock();
    }
    mu.lock(); // main: lock never released — global deadlock
    mu.unlock();
}

/// store: the raft scheduler holds `store.mu` while pushing onto an
/// already-full ready queue; the worker draining the queue needs
/// `store.mu` first.
fn cockroach10214() {
    let mu = Mutex::new();
    let ready: Chan<u32> = Chan::new(1);
    ready.send(0); // queue already full from a previous tick
    {
        let (mu, ready) = (mu.clone(), ready.clone());
        go_named("enqueueRaft", move || {
            mu.lock();
            ready.send(1); // BUG: blocks on the full queue holding mu
            mu.unlock();
        });
    }
    {
        let (mu, ready) = (mu.clone(), ready.clone());
        go_named("raftWorker", move || {
            mu.lock(); // needs the store lock before draining
            let _ = ready.recv();
            mu.unlock();
        });
    }
    time::sleep(ms(30));
}

/// gossip client: the client goroutine waits for a server frame that the
/// disconnect path drops (lost wakeup between check and park).
fn cockroach10790() {
    let frames: Chan<u32> = Chan::new(1);
    let notify: Chan<()> = Chan::new(0);
    {
        let (frames, notify) = (frames.clone(), notify.clone());
        go_named("client", move || loop {
            if let Some(Some(_)) = frames.try_recv() {
                return;
            }
            // BUG window: the server's non-blocking notify lands here
            Select::new().recv(&notify, |_| ()).run();
        });
    }
    {
        let (frames, notify) = (frames.clone(), notify.clone());
        go_named("server", move || {
            frames.send(1);
            Select::new().send(&notify, (), || ()).default(|| ()).run();
        });
    }
    time::sleep(ms(30));
}

/// kv txn coordinator: the heartbeat goroutine waits on a done channel
/// that the commit path forgets to close on the 1-phase-commit fast
/// path.
fn cockroach13197() {
    let txn_done: Chan<()> = Chan::new(0);
    {
        go_named("heartbeat", move || {
            txn_done.recv(); // BUG: never closed on the fast path
        });
    }
    gosched(); // commit completes without signalling
}

/// sql rows: the row-fetch goroutine feeds an unbuffered channel; the
/// iterator is closed after the first row, abandoning the fetcher.
fn cockroach13755() {
    let rows: Chan<u32> = Chan::new(0);
    {
        let rows = rows.clone();
        go_named("rowFetcher", move || {
            for r in 0..4 {
                rows.send(r); // leaks at r==1
            }
            rows.close();
        });
    }
    {
        let rows = rows.clone();
        go_named("iterator", move || {
            let _ = rows.recv();
            // Close() without draining
        });
    }
    time::sleep(ms(30));
}

/// config cache: `GetSystemConfig` takes RLock and, on a miss, calls the
/// loader which takes Lock on the same RWMutex in the same goroutine.
fn cockroach16167() {
    let cfg = RwLock::new();
    cfg.rlock();
    // cache miss: loader wants the write lock while we hold the read
    cfg.lock(); // main: write-after-read upgrade, global deadlock
    cfg.unlock();
    cfg.runlock();
}

/// backup/restore: the coordinator returns on the first error without
/// closing the work channel; idle import workers block on range forever.
fn cockroach18101() {
    let work: Chan<u32> = Chan::new(0);
    for i in 0..2 {
        let work = work.clone();
        go_named(&format!("importWorker{i}"), move || {
            for _span in work.range() {
                // import the span
            }
        });
    }
    {
        let work = work.clone();
        go_named("coordinator", move || {
            work.send(1);
            let failed = true; // first import reports an error
            if failed {
                return; // BUG: work channel never closed
            }
            work.close();
        });
    }
    time::sleep(ms(40));
}

/// compactor: main signals the compaction loop over a rendezvous channel
/// but the loop polls with a default case and may be mid-iteration —
/// main blocks forever once the loop exits on its deadline.
fn cockroach24808() {
    let suggestions: Chan<u32> = Chan::new(0);
    {
        let suggestions = suggestions.clone();
        go_named("compactionLoop", move || {
            for _ in 0..2 {
                let got = Select::new().recv(&suggestions, |v| v).default(|| None).run();
                if got.is_some() {
                    return;
                }
                gosched(); // idle tick
            }
            // deadline reached: loop exits without ever receiving
        });
    }
    suggestions.send(9); // main: global deadlock if the loop timed out
}

/// consistency checker: the collector expects one response per replica,
/// but a replica that fails the diff exits without responding.
fn cockroach25456() {
    let responses: Chan<u32> = Chan::new(0);
    for i in 0..2 {
        let responses = responses.clone();
        go_named(&format!("replica{i}"), move || {
            let diff_failed = i == 1;
            if diff_failed {
                return; // BUG: no response sent
            }
            responses.send(i);
        });
    }
    {
        let responses = responses.clone();
        go_named("collector", move || {
            let _ = responses.recv();
            let _ = responses.recv(); // leaks: only one replica answered
        });
    }
    time::sleep(ms(30));
}

/// distsql outbox: the producer checks the stream state and then sends;
/// the consumer tears the stream down in between — send on closed
/// channel.
fn cockroach35073() {
    let stream: Chan<u32> = Chan::new(1);
    {
        let stream = stream.clone();
        go_named("outbox", move || {
            for row in 0..3 {
                if stream.is_closed() {
                    return;
                }
                // BUG window: the drainer may close between the check
                // and this send
                stream.send(row);
            }
        });
    }
    {
        let stream = stream.clone();
        go_named("drainer", move || {
            gosched(); // let the outbox get ahead
            stream.close(); // BUG: tears down while the outbox sends
        });
    }
    time::sleep(ms(30));
}

/// changefeed poller: the sink goroutine waits on a cond var; the
/// shutdown path sets the flag but signals before the sink starts
/// waiting (missed signal).
fn cockroach33458() {
    let mu = Mutex::new();
    let cv = Cond::new(&mu);
    {
        let (mu, cv) = (mu.clone(), cv.clone());
        go_named("sink", move || {
            // sink setup work widens the missed-signal window
            let scratch: Chan<u8> = Chan::new(1);
            scratch.send(0);
            scratch.recv();
            mu.lock();
            cv.wait(); // BUG: signal may already have fired
            mu.unlock();
        });
    }
    {
        let (mu, cv) = (mu.clone(), cv.clone());
        go_named("shutdown", move || {
            mu.lock();
            cv.signal(); // lost if the sink is not waiting yet
            mu.unlock();
        });
    }
    time::sleep(ms(30));
}

/// The 18 cockroach kernels.
pub const KERNELS: &[BugKernel] = &[
    BugKernel {
        name: "cockroach584",
        project: Project::Cockroach,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "gossip manage() invokes a status callback that re-locks the \
                      gossip mutex",
        main: cockroach584,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach1055",
        project: Project::Cockroach,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "stopper worker parks on the quiesce channel holding the \
                      stopper mutex that Quiesce needs",
        main: cockroach1055,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach1462",
        project: Project::Cockroach,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "stopper drains one token per worker but an erroring worker \
                      exits without receiving",
        main: cockroach1462,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach2448",
        project: Project::Cockroach,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "event feed consumer may take the done notification while the \
                      payload sender is still blocked",
        main: cockroach2448,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach3710",
        project: Project::Cockroach,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "recursive RLock behind a queued writer on the raft store's \
                      write-preferring RWMutex",
        main: cockroach3710,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach6181",
        project: Project::Cockroach,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Rare,
        description: "test-cluster gossip locks two node mutexes in opposite orders \
                      with a one-op inversion window",
        main: cockroach6181,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach7504",
        project: Project::Cockroach,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Uncommon,
        description: "lease manager and name cache locked in opposite orders by \
                      Acquire and Release; main waits on both",
        main: cockroach7504,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach9935",
        project: Project::Cockroach,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "gossip server error path returns without unlocking; the next \
                      lock self-deadlocks",
        main: cockroach9935,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach10214",
        project: Project::Cockroach,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "raft enqueue holds store.mu while pushing onto a full ready \
                      queue whose drainer needs store.mu",
        main: cockroach10214,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach10790",
        project: Project::Cockroach,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Rare,
        description: "gossip client loses the server's non-blocking frame \
                      notification between poll and park",
        main: cockroach10790,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach13197",
        project: Project::Cockroach,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "txn heartbeat goroutine waits on a done channel the 1PC fast \
                      path never closes",
        main: cockroach13197,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach13755",
        project: Project::Cockroach,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "sql rows iterator closed after the first row; the fetcher \
                      blocks sending the second",
        main: cockroach13755,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach16167",
        project: Project::Cockroach,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Common,
        description: "system-config cache read-lock upgraded to write-lock in the \
                      same goroutine",
        main: cockroach16167,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach18101",
        project: Project::Cockroach,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "restore coordinator errors out without closing the work \
                      channel; import workers block on range",
        main: cockroach18101,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach24808",
        project: Project::Cockroach,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::GlobalDeadlock,
        rarity: Rarity::Rare,
        description: "compactor loop polls with a default case and exits on its \
                      deadline; main's rendezvous send hangs",
        main: cockroach24808,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach25456",
        project: Project::Cockroach,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "consistency collector expects a response per replica; a \
                      failing replica exits silently",
        main: cockroach25456,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach35073",
        project: Project::Cockroach,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Crash,
        rarity: Rarity::Common,
        description: "outbox checks the stream then sends; the drainer closes in \
                      between — send on closed channel",
        main: cockroach35073,
        source_file: SRC,
    },
    BugKernel {
        name: "cockroach33458",
        project: Project::Cockroach,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "changefeed sink misses the shutdown cond-var signal fired \
                      during its setup window",
        main: cockroach33458,
        source_file: SRC,
    },
];
