//! gRPC-go blocking-bug kernels.

use crate::{BugCause, BugKernel, ExpectedSymptom, Project, Rarity};
use goat_runtime::{go_named, gosched, time, Chan, Mutex, Select};
use std::time::Duration;

const SRC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/src/kernels/grpc.rs");

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// benchmark client: two teardown paths both close the stop channel
/// after checking it — a check-then-close race that panics.
fn grpc660() {
    let stopc: Chan<u32> = Chan::new(1);
    for i in 0..2 {
        let stopc = stopc.clone();
        go_named(&format!("teardown{i}"), move || {
            if !stopc.is_closed() {
                // teardown bookkeeping widens the check-to-close window
                let scratch: Chan<u8> = Chan::new(1);
                scratch.send(0);
                scratch.recv();
                stopc.close(); // BUG: both paths may pass the check
            }
        });
    }
    time::sleep(ms(30));
}

/// server: `Serve`'s accept loop forwards connections on a rendezvous
/// channel; `Stop` kills the handler without draining pending accepts.
fn grpc795() {
    let conns: Chan<u32> = Chan::new(0);
    {
        let conns = conns.clone();
        go_named("acceptLoop", move || {
            for c in 0..3 {
                conns.send(c); // leaks once the handler stops
            }
        });
    }
    {
        let conns = conns.clone();
        go_named("handler", move || {
            let _ = conns.recv();
            // Stop(): handler exits, accept loop still sending
        });
    }
    time::sleep(ms(30));
}

/// clientconn: `resetTransport` holds `cc.mu` while waiting for the
/// transport to acknowledge on a rendezvous channel; `Close` needs
/// `cc.mu` to signal that acknowledgement.
fn grpc862() {
    let cc_mu = Mutex::new();
    let transport_ack: Chan<()> = Chan::new(0);
    {
        let (cc_mu, transport_ack) = (cc_mu.clone(), transport_ack.clone());
        go_named("resetTransport", move || {
            cc_mu.lock();
            transport_ack.recv(); // BUG: waits while holding cc.mu
            cc_mu.unlock();
        });
    }
    {
        let (cc_mu, transport_ack) = (cc_mu.clone(), transport_ack.clone());
        go_named("close", move || {
            cc_mu.lock(); // blocked by resetTransport forever
            transport_ack.send(());
            cc_mu.unlock();
        });
    }
    time::sleep(ms(30));
}

/// stream: the frame reader exits on a transport error without feeding
/// the receive buffer; the application-side reader waits forever.
fn grpc1275() {
    let recv_buf: Chan<u32> = Chan::new(0);
    {
        let recv_buf = recv_buf.clone();
        go_named("frameReader", move || {
            let transport_error = true;
            if transport_error {
                return; // BUG: recv_buf never fed, never closed
            }
            recv_buf.send(1);
        });
    }
    {
        let recv_buf = recv_buf.clone();
        go_named("appReader", move || {
            let _ = recv_buf.recv(); // leaks
        });
    }
    time::sleep(ms(30));
}

/// balancer: `watchAddrUpdates` blocks sending a resolved address while
/// `Close` waits for the watcher to finish — each side holds what the
/// other needs.
fn grpc1424() {
    let addr_ch: Chan<u32> = Chan::new(0);
    let watcher_done: Chan<()> = Chan::new(0);
    {
        let (addr_ch, watcher_done) = (addr_ch.clone(), watcher_done.clone());
        go_named("watchAddrUpdates", move || {
            addr_ch.send(1); // BUG: blocks once the consumer is gone
            watcher_done.send(());
        });
    }
    {
        let (addr_ch, watcher_done) = (addr_ch.clone(), watcher_done.clone());
        go_named("close", move || {
            // consume one update on the fast path, then wait for the
            // watcher — without draining further updates
            let _ = addr_ch.try_recv();
            watcher_done.recv(); // deadlock when try_recv missed it
        });
    }
    time::sleep(ms(30));
}

/// transport: the control-buffer writer parks between its readiness
/// check and its wait; the teardown's non-blocking wakeup lands exactly
/// in that gap and is lost.
fn grpc1460() {
    let items: Chan<u32> = Chan::new(1);
    let wakeup: Chan<()> = Chan::new(0);
    {
        let (items, wakeup) = (items.clone(), wakeup.clone());
        go_named("loopyWriter", move || loop {
            if let Some(Some(_frame)) = items.try_recv() {
                return; // frame flushed: writer done
            }
            // BUG window: the teardown's wakeup is dropped here
            Select::new().recv(&wakeup, |_| ()).run();
        });
    }
    {
        let (items, wakeup) = (items.clone(), wakeup.clone());
        go_named("controlBuf", move || {
            items.send(9); // buffered: never blocks
            Select::new().send(&wakeup, (), || ()).default(|| ()).run();
        });
    }
    time::sleep(ms(30));
}

/// resolver wrapper: the update callback is invoked while the wrapper
/// mutex is held, and the callback re-locks the wrapper.
fn grpc3017() {
    let wrapper = Mutex::new();
    {
        let wrapper = wrapper.clone();
        go_named("updateState", move || {
            wrapper.lock();
            // callback into the balancer, which re-enters the wrapper
            wrapper.lock(); // BUG: recursive lock, goroutine leaks
            wrapper.unlock();
            wrapper.unlock();
        });
    }
    gosched();
}

/// The 7 grpc kernels.
pub const KERNELS: &[BugKernel] = &[
    BugKernel {
        name: "grpc660",
        project: Project::Grpc,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Crash,
        rarity: Rarity::Uncommon,
        description: "two teardown paths race a check-then-close of the stop \
                      channel: close of closed channel",
        main: grpc660,
        source_file: SRC,
    },
    BugKernel {
        name: "grpc795",
        project: Project::Grpc,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "Stop() kills the connection handler without draining the \
                      accept loop's rendezvous channel",
        main: grpc795,
        source_file: SRC,
    },
    BugKernel {
        name: "grpc862",
        project: Project::Grpc,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "resetTransport waits for an ack while holding cc.mu; Close \
                      needs cc.mu to send the ack",
        main: grpc862,
        source_file: SRC,
    },
    BugKernel {
        name: "grpc1275",
        project: Project::Grpc,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "frame reader exits on a transport error without feeding or \
                      closing the stream's receive buffer",
        main: grpc1275,
        source_file: SRC,
    },
    BugKernel {
        name: "grpc1424",
        project: Project::Grpc,
        cause: BugCause::Mixed,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Uncommon,
        description: "Close's fast-path try-drain can miss the watcher's pending \
                      address update; both sides then wait forever",
        main: grpc1424,
        source_file: SRC,
    },
    BugKernel {
        name: "grpc1460",
        project: Project::Grpc,
        cause: BugCause::Communication,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Rare,
        description: "loopy writer loses the control buffer's non-blocking wakeup \
                      between its poll and its park",
        main: grpc1460,
        source_file: SRC,
    },
    BugKernel {
        name: "grpc3017",
        project: Project::Grpc,
        cause: BugCause::Resource,
        expected: ExpectedSymptom::Leak,
        rarity: Rarity::Common,
        description: "resolver update callback re-enters the wrapper mutex held \
                      by its caller",
        main: grpc3017,
        source_file: SRC,
    },
];
