//! Corrected variants of representative kernels.
//!
//! GoAT must *not* report bugs on correct programs; these fixed versions
//! of benchmark kernels exercise that direction (every program here
//! terminates with all goroutines finished under any schedule).

use goat_core::{FnProgram, Program};
use goat_runtime::{go_named, Chan, Mutex, Select, WaitGroup};
use std::sync::Arc;

/// Fixed moby28462: the status channel gets a buffer slot, so
/// StatusChange never blocks while holding the container lock.
pub fn moby28462_fixed() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("moby28462_fixed", || {
        let mu = Mutex::new();
        let status_ch: Chan<u32> = Chan::new(1); // FIX: buffered
        let wg = WaitGroup::new();
        wg.add(2);
        {
            let (mu, status_ch, wg) = (mu.clone(), status_ch.clone(), wg.clone());
            go_named("Monitor", move || {
                loop {
                    let got = Select::new().recv(&status_ch, |v| v).default(|| None).run();
                    if got.is_some() {
                        break;
                    }
                    mu.lock();
                    mu.unlock();
                }
                wg.done();
            });
        }
        {
            let (mu, status_ch, wg) = (mu.clone(), status_ch.clone(), wg.clone());
            go_named("StatusChange", move || {
                mu.lock();
                status_ch.send(1); // buffered: completes immediately
                mu.unlock();
                wg.done();
            });
        }
        wg.wait();
    }))
}

/// Fixed moby17176: the unlock is restored on the error path.
pub fn moby17176_fixed() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("moby17176_fixed", || {
        let mu = Mutex::new();
        let wg = WaitGroup::new();
        wg.add(2);
        {
            let (mu, wg) = (mu.clone(), wg.clone());
            go_named("deactivateDevice", move || {
                mu.lock();
                // error observed — FIX: unlock before returning
                mu.unlock();
                wg.done();
            });
        }
        {
            let (mu, wg) = (mu.clone(), wg.clone());
            go_named("removeDevice", move || {
                mu.lock();
                mu.unlock();
                wg.done();
            });
        }
        wg.wait();
    }))
}

/// Fixed cockroach13755: the fetcher selects on a stop channel so the
/// iterator's early close no longer strands it.
pub fn cockroach13755_fixed() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("cockroach13755_fixed", || {
        let rows: Chan<u32> = Chan::new(0);
        let stop: Chan<()> = Chan::new(0);
        let wg = WaitGroup::new();
        wg.add(1);
        {
            let (rows, stop, wg) = (rows.clone(), stop.clone(), wg.clone());
            go_named("rowFetcher", move || {
                for r in 0..4 {
                    let stopped =
                        Select::new().send(&rows, r, || false).recv(&stop, |_| true).run();
                    if stopped {
                        break; // FIX: stop is observable mid-send
                    }
                }
                wg.done();
            });
        }
        {
            let (rows, stop) = (rows.clone(), stop.clone());
            go_named("iterator", move || {
                let _ = rows.recv();
                stop.close(); // FIX: announce the early close
            });
        }
        wg.wait();
    }))
}

/// Fixed kubernetes26980: the result is delivered without holding the
/// queue lock.
pub fn kubernetes26980_fixed() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("kubernetes26980_fixed", || {
        let queue = Mutex::new();
        let pod_result: Chan<u32> = Chan::new(0);
        let wg = WaitGroup::new();
        wg.add(2);
        {
            let (queue, pod_result, wg) = (queue.clone(), pod_result.clone(), wg.clone());
            go_named("processNextWorkItem", move || {
                queue.lock();
                queue.unlock(); // FIX: release before waiting
                let _ = pod_result.recv();
                wg.done();
            });
        }
        {
            let (queue, pod_result, wg) = (queue.clone(), pod_result.clone(), wg.clone());
            go_named("podWorker", move || {
                queue.lock();
                queue.unlock();
                pod_result.send(1);
                wg.done();
            });
        }
        wg.wait();
    }))
}

/// Fixed etcd7443: victims are drained *before* taking the store mutex,
/// and the sync loop pushes with a non-blocking send.
pub fn etcd7443_fixed() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("etcd7443_fixed", || {
        let store = Mutex::new();
        let victims: Chan<u32> = Chan::new(1);
        victims.send(0);
        let wg = WaitGroup::new();
        wg.add(2);
        {
            let (store, victims, wg) = (store.clone(), victims.clone(), wg.clone());
            go_named("victimLoop", move || {
                // FIX: drain first, lock second
                while let Some(Some(_batch)) = victims.try_recv() {
                    store.lock();
                    store.unlock();
                }
                wg.done();
            });
        }
        {
            let (store, victims, wg) = (store.clone(), victims.clone(), wg.clone());
            go_named("syncLoop", move || {
                store.lock();
                let _ = victims.try_send(1); // FIX: never block under the lock
                store.unlock();
                wg.done();
            });
        }
        wg.wait();
    }))
}

/// Fixed serving2137: deferral decisions go through a single mutex-held
/// critical section, so exactly one request always serves the waiter.
pub fn serving2137_fixed() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("serving2137_fixed", || {
        let mu = Mutex::new();
        let completions: Chan<u32> = Chan::new(2);
        let served = Chan::<u8>::new(1); // holds a marker once someone served
        {
            let completions = completions.clone();
            go_named("waiter", move || {
                let _ = completions.recv();
            });
        }
        for i in 0..2u32 {
            let (mu, completions, served) = (mu.clone(), completions.clone(), served.clone());
            go_named(&format!("request{i}"), move || {
                // FIX: atomic check-and-claim under the mutex
                mu.lock();
                let claimed = served.try_send(1).is_ok();
                mu.unlock();
                if claimed {
                    completions.send(i);
                }
            });
        }
        goat_runtime::time::sleep(std::time::Duration::from_millis(20));
    }))
}

/// Fixed grpc660: close goes through a Once, so racing teardown paths
/// cannot double-close the stop channel.
pub fn grpc660_fixed() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("grpc660_fixed", || {
        let stopc: Chan<u32> = Chan::new(1);
        let close_once = goat_runtime::Once::new();
        let wg = WaitGroup::new();
        for i in 0..2 {
            wg.add(1);
            let (stopc, close_once, wg) = (stopc.clone(), close_once.clone(), wg.clone());
            go_named(&format!("teardown{i}"), move || {
                close_once.do_once(|| stopc.close()); // FIX
                wg.done();
            });
        }
        wg.wait();
    }))
}

/// Fixed cockroach9935: the error path releases the lock before
/// returning.
pub fn cockroach9935_fixed() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("cockroach9935_fixed", || {
        let mu = Mutex::new();
        let failed: Chan<bool> = Chan::new(1);
        failed.send(true);
        mu.lock();
        let _err = matches!(failed.try_recv(), Some(Some(true)));
        mu.unlock(); // FIX: unconditional unlock
        mu.lock();
        mu.unlock();
    }))
}

/// Fixed moby25348: `done` moves into a defer-like position covering the
/// error branch.
pub fn moby25348_fixed() -> Arc<dyn Program> {
    Arc::new(FnProgram::new("moby25348_fixed", || {
        let wg = WaitGroup::new();
        let errors: Chan<bool> = Chan::new(2);
        for i in 0..2 {
            wg.add(1);
            let (wg, errors) = (wg.clone(), errors.clone());
            go_named(&format!("pushLayer{i}"), move || {
                if i == 1 {
                    errors.send(true);
                }
                wg.done(); // FIX: done on every path
            });
        }
        wg.wait();
    }))
}

/// All fixed programs, for negative testing.
pub fn all_fixed() -> Vec<Arc<dyn Program>> {
    vec![
        moby28462_fixed(),
        moby17176_fixed(),
        cockroach13755_fixed(),
        kubernetes26980_fixed(),
        etcd7443_fixed(),
        serving2137_fixed(),
        grpc660_fixed(),
        cockroach9935_fixed(),
        moby25348_fixed(),
    ]
}
