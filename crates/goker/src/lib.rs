//! # goat-goker — the blocking-bug benchmark
//!
//! GoBench's **GoKer** suite distils real concurrency bugs from the top
//! nine open-source Go projects into minimal *bug kernels*. The GoAT
//! paper evaluates on its 68 *blocking* kernels (deadlocks and goroutine
//! leaks). This crate re-creates those 68 kernels against the
//! `goat-runtime` substrate.
//!
//! Each kernel preserves, from the original bug report:
//!
//! * the **cause class** — resource deadlock (mutex/RWMutex), channel
//!   communication deadlock, or mixed (channel + lock);
//! * the **symptom** — goroutine leak (partial deadlock), global
//!   deadlock, or crash;
//! * the **rarity class** — whether the bug fires on essentially every
//!   native run or needs a rare preemption window (the property GoAT's
//!   yield injection accelerates).
//!
//! The kernels are *re-creations that preserve the documented bug
//! pattern*, not line-by-line ports: GoKer's kernels carry project
//! plumbing that is irrelevant to scheduling behaviour; what matters for
//! reproducing the paper's evaluation is which primitives interact and
//! how narrow the buggy window is (see `DESIGN.md`, substitution table).
//!
//! ```
//! use goat_goker::{all_kernels, by_name};
//! assert_eq!(all_kernels().len(), 68);
//! let k = by_name("moby28462").expect("the paper's running example");
//! assert_eq!(k.project.to_string(), "moby");
//! ```

#![warn(missing_docs)]

pub mod fixed;
mod kernels;

use goat_core::Program;
use std::fmt;
use std::path::PathBuf;

/// The open-source project a kernel was distilled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Project {
    Cockroach,
    Etcd,
    Grpc,
    Hugo,
    Istio,
    Kubernetes,
    Moby,
    Serving,
    Syncthing,
}

impl Project {
    /// All projects in benchmark order.
    pub const ALL: [Project; 9] = [
        Project::Cockroach,
        Project::Etcd,
        Project::Grpc,
        Project::Hugo,
        Project::Istio,
        Project::Kubernetes,
        Project::Moby,
        Project::Serving,
        Project::Syncthing,
    ];
}

impl fmt::Display for Project {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Project::Cockroach => "cockroach",
            Project::Etcd => "etcd",
            Project::Grpc => "grpc",
            Project::Hugo => "hugo",
            Project::Istio => "istio",
            Project::Kubernetes => "kubernetes",
            Project::Moby => "moby",
            Project::Serving => "serving",
            Project::Syncthing => "syncthing",
        };
        f.write_str(s)
    }
}

/// The root cause class, following the Go bug taxonomy the paper cites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugCause {
    /// Circular wait on mutexes / RWMutexes / wait-groups / cond vars.
    Resource,
    /// Misused channel operations (missing sender/receiver/close).
    Communication,
    /// A cycle through both a lock and a channel (listing 1's class).
    Mixed,
}

impl fmt::Display for BugCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BugCause::Resource => "resource",
            BugCause::Communication => "communication",
            BugCause::Mixed => "mixed",
        })
    }
}

/// The symptom the bug produces when it manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpectedSymptom {
    /// Goroutines leak while main exits (partial deadlock).
    Leak,
    /// The whole program deadlocks (main blocked too).
    GlobalDeadlock,
    /// Either, depending on the interleaving.
    LeakOrGlobal,
    /// The program panics (e.g. send on closed channel).
    Crash,
}

/// How often the bug manifests under native (unperturbed) scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rarity {
    /// Fires on (nearly) every native execution.
    Common,
    /// Needs a preemption in a moderately wide window; a handful of
    /// native runs usually suffices.
    Uncommon,
    /// Needs a preemption in a narrow window: tens to hundreds of
    /// native runs, but few with yield injection.
    Rare,
    /// Needs coinciding rare events; essentially undetectable natively
    /// within 1000 runs — the kernels only schedule perturbation finds.
    VeryRare,
}

impl Rarity {
    /// The canonical per-kernel iteration budget for suite-style testing:
    /// enough yield-injection (D > 0) schedules to expose every kernel of
    /// the class with margin, without burning time on the easy ones. This
    /// is the single table both the exposure and replay suites draw from.
    pub fn iteration_budget(self) -> usize {
        match self {
            Rarity::Common => 10,
            Rarity::Uncommon => 120,
            Rarity::Rare => 400,
            Rarity::VeryRare => 800,
        }
    }

    /// [`iteration_budget`] clamped against the per-iteration watchdog.
    ///
    /// When `GOAT_ITER_TIMEOUT_MS` is set, every iteration may legally
    /// burn up to that much wall clock before the watchdog reclaims it,
    /// so a suite that schedules `budget` iterations commits to up to
    /// `budget × timeout` per kernel in the worst case. This caps the
    /// schedule so one pathological kernel cannot stall a suite for
    /// more than ~60 s of watchdog-bounded iterations, while never
    /// clamping below 10 iterations (enough for the Common class) and
    /// never above the nominal budget. Without the env knob this is
    /// exactly [`iteration_budget`].
    ///
    /// [`iteration_budget`]: Rarity::iteration_budget
    pub fn clamped_iteration_budget(self) -> usize {
        const SUITE_KERNEL_WALL_BUDGET_MS: u64 = 60_000;
        let budget = self.iteration_budget();
        match std::env::var("GOAT_ITER_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
        {
            Some(ms) => budget.min((SUITE_KERNEL_WALL_BUDGET_MS / ms).max(10) as usize),
            None => budget,
        }
    }
}

/// One GoKer-style blocking bug kernel.
pub struct BugKernel {
    /// Kernel name, `<project><issue>` (e.g. `moby28462`).
    pub name: &'static str,
    /// Source project.
    pub project: Project,
    /// Root cause class.
    pub cause: BugCause,
    /// Symptom when the bug manifests.
    pub expected: ExpectedSymptom,
    /// Native-manifestation rarity class.
    pub rarity: Rarity,
    /// What goes wrong, in one paragraph.
    pub description: &'static str,
    /// The kernel's main function.
    pub main: fn(),
    /// Source file containing the kernel (for the static CU scanner).
    pub source_file: &'static str,
}

impl fmt::Debug for BugKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BugKernel")
            .field("name", &self.name)
            .field("project", &self.project)
            .field("cause", &self.cause)
            .field("expected", &self.expected)
            .field("rarity", &self.rarity)
            .finish_non_exhaustive()
    }
}

impl Program for BugKernel {
    fn name(&self) -> &str {
        self.name
    }

    fn main(&self) {
        (self.main)()
    }

    fn sources(&self) -> Vec<PathBuf> {
        vec![PathBuf::from(self.source_file)]
    }
}

/// All 68 blocking bug kernels, in benchmark order.
pub fn all_kernels() -> Vec<&'static BugKernel> {
    kernels::all().to_vec()
}

/// Look up a kernel by name.
pub fn by_name(name: &str) -> Option<&'static BugKernel> {
    kernels::all().iter().copied().find(|k| k.name == name)
}

/// Kernels of one project.
pub fn by_project(project: Project) -> Vec<&'static BugKernel> {
    kernels::all().iter().copied().filter(|k| k.project == project).collect()
}

/// Aggregate composition of the benchmark, for reports and sanity checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SuiteStats {
    /// Kernels per project, in [`Project::ALL`] order.
    pub per_project: Vec<(Project, usize)>,
    /// Kernels per cause class `(resource, communication, mixed)`.
    pub per_cause: (usize, usize, usize),
    /// Kernels per rarity `(common, uncommon, rare, very_rare)`.
    pub per_rarity: (usize, usize, usize, usize),
    /// Kernels per expected symptom `(leak, global, leak_or_global, crash)`.
    pub per_symptom: (usize, usize, usize, usize),
}

/// Compute the benchmark's composition.
pub fn suite_stats() -> SuiteStats {
    let mut stats = SuiteStats {
        per_project: Project::ALL.iter().map(|p| (*p, by_project(*p).len())).collect(),
        ..Default::default()
    };
    for k in all_kernels() {
        match k.cause {
            BugCause::Resource => stats.per_cause.0 += 1,
            BugCause::Communication => stats.per_cause.1 += 1,
            BugCause::Mixed => stats.per_cause.2 += 1,
        }
        match k.rarity {
            Rarity::Common => stats.per_rarity.0 += 1,
            Rarity::Uncommon => stats.per_rarity.1 += 1,
            Rarity::Rare => stats.per_rarity.2 += 1,
            Rarity::VeryRare => stats.per_rarity.3 += 1,
        }
        match k.expected {
            ExpectedSymptom::Leak => stats.per_symptom.0 += 1,
            ExpectedSymptom::GlobalDeadlock => stats.per_symptom.1 += 1,
            ExpectedSymptom::LeakOrGlobal => stats.per_symptom.2 += 1,
            ExpectedSymptom::Crash => stats.per_symptom.3 += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn exactly_68_kernels() {
        assert_eq!(all_kernels().len(), 68);
    }

    #[test]
    fn names_are_unique_and_project_prefixed() {
        let mut seen = BTreeSet::new();
        for k in all_kernels() {
            assert!(seen.insert(k.name), "duplicate kernel {}", k.name);
            assert!(
                k.name.starts_with(&k.project.to_string()),
                "{} should be prefixed with {}",
                k.name,
                k.project
            );
            assert!(!k.description.is_empty());
        }
    }

    #[test]
    fn per_project_counts() {
        let count = |p| by_project(p).len();
        assert_eq!(count(Project::Cockroach), 18);
        assert_eq!(count(Project::Etcd), 7);
        assert_eq!(count(Project::Grpc), 7);
        assert_eq!(count(Project::Hugo), 2);
        assert_eq!(count(Project::Istio), 3);
        assert_eq!(count(Project::Kubernetes), 13);
        assert_eq!(count(Project::Moby), 12);
        assert_eq!(count(Project::Serving), 4);
        assert_eq!(count(Project::Syncthing), 2);
    }

    #[test]
    fn all_cause_classes_represented() {
        let causes: BTreeSet<String> = all_kernels().iter().map(|k| k.cause.to_string()).collect();
        assert_eq!(causes.len(), 3);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("moby28462").is_some());
        assert!(by_name("nonexistent999").is_none());
    }

    #[test]
    fn clamped_budget_bounds_suite_wall_clock() {
        // Only this test (in this binary) touches GOAT_ITER_TIMEOUT_MS,
        // so mutating it here cannot race another test.
        std::env::remove_var("GOAT_ITER_TIMEOUT_MS");
        for r in [Rarity::Common, Rarity::Uncommon, Rarity::Rare, Rarity::VeryRare] {
            assert_eq!(r.clamped_iteration_budget(), r.iteration_budget());
        }
        // 500 ms watchdog → 120 iterations fit the 60 s kernel budget:
        // only the classes above that are clamped.
        std::env::set_var("GOAT_ITER_TIMEOUT_MS", "500");
        assert_eq!(Rarity::Common.clamped_iteration_budget(), 10);
        assert_eq!(Rarity::Uncommon.clamped_iteration_budget(), 120);
        assert_eq!(Rarity::Rare.clamped_iteration_budget(), 120);
        assert_eq!(Rarity::VeryRare.clamped_iteration_budget(), 120);
        // Even an absurdly slow watchdog never clamps below 10.
        std::env::set_var("GOAT_ITER_TIMEOUT_MS", "600000");
        for r in [Rarity::Common, Rarity::Uncommon, Rarity::Rare, Rarity::VeryRare] {
            assert_eq!(r.clamped_iteration_budget(), 10);
        }
        // Unparsable / zero values behave as unset.
        std::env::set_var("GOAT_ITER_TIMEOUT_MS", "0");
        assert_eq!(Rarity::VeryRare.clamped_iteration_budget(), 800);
        std::env::remove_var("GOAT_ITER_TIMEOUT_MS");
    }

    #[test]
    fn suite_composition_matches_the_paper_shape() {
        let stats = suite_stats();
        let total: usize = stats.per_project.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 68);
        let (res, comm, mixed) = stats.per_cause;
        assert_eq!(res + comm + mixed, 68);
        assert!(res >= 10 && comm >= 20 && mixed >= 8, "all cause classes well represented");
        let (common, uncommon, rare, very_rare) = stats.per_rarity;
        assert_eq!(common + uncommon + rare + very_rare, 68);
        // Paper fig. 2: ≈70 % detected on the first native trial.
        assert!(common >= 40, "most bugs manifest natively ({common})");
        assert!(very_rare >= 2, "perturbation-only bugs exist");
        let (leak, gdl, _either, crash) = stats.per_symptom;
        assert!(leak > gdl, "leaks dominate, as in GoKer");
        assert!(gdl >= 10, "builtin-visible global deadlocks exist");
        assert!(crash >= 2, "crash kernels exist");
    }

    #[test]
    fn source_files_exist() {
        for k in all_kernels() {
            assert!(
                std::path::Path::new(k.source_file).exists(),
                "missing source for {}: {}",
                k.name,
                k.source_file
            );
        }
    }
}
