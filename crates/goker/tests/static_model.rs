//! Real-data validation of the static scanner: the CU model built from
//! the benchmark's own source files must (a) find every primitive class
//! the taxonomy defines, and (b) contain every CU the kernels touch
//! dynamically — the paper's requirement that the static model `M` be a
//! faithful skeleton for yield injection and coverage accounting.

use goat_core::Program;
use goat_model::{scan_sources, CuKind, CuTable};
use goat_runtime::{Config, Runtime};
use std::collections::BTreeSet;

fn scan_benchmark_sources() -> CuTable {
    let files: BTreeSet<&'static str> =
        goat_goker::all_kernels().iter().map(|k| k.source_file).collect();
    scan_sources(files).expect("benchmark sources scan")
}

#[test]
fn benchmark_model_covers_the_whole_taxonomy() {
    let m = scan_benchmark_sources();
    assert!(m.len() > 300, "the 68 kernels should contain hundreds of CUs: {}", m.len());
    for kind in [
        CuKind::Send,
        CuKind::Recv,
        CuKind::Close,
        CuKind::Lock,
        CuKind::Unlock,
        CuKind::Wait,
        CuKind::Add,
        CuKind::Done,
        CuKind::Signal,
        CuKind::Go,
        CuKind::Select,
        CuKind::Range,
    ] {
        assert!(m.count_kind(kind) > 0, "no {kind} CU anywhere in the benchmark — taxonomy gap");
    }
}

#[test]
fn dynamic_cus_are_a_subset_of_the_static_model() {
    let m = scan_benchmark_sources();
    let mut missing = Vec::new();
    for kernel in goat_goker::all_kernels() {
        let r = Runtime::run(Config::new(1).with_delay_bound(1), move || Program::main(kernel));
        let Some(ect) = r.ect else { continue };
        for ev in ect.iter() {
            let Some(cu) = &ev.cu else { continue };
            // Only ops that literally appear in kernel sources count;
            // internal re-acquisitions (Cond::wait's relock) carry the
            // wait-site CU and op events of mismatched kind are skipped
            // by the same rule coverage extraction uses.
            let relevant = ev.kind.is_op_completion()
                || matches!(
                    ev.kind,
                    goat_trace::EventKind::GoCreate { internal: false, .. }
                        | goat_trace::EventKind::SelectBegin { .. }
                );
            if relevant && m.lookup(&cu.file, cu.line, cu.kind).is_none() {
                missing.push(format!("{}: {cu} ({})", kernel.name, ev.kind));
            }
        }
    }
    missing.sort();
    missing.dedup();
    assert!(
        missing.is_empty(),
        "dynamic CUs absent from the static model:\n{}",
        missing.join("\n")
    );
}

#[test]
fn every_kernel_contributes_cus_to_the_model() {
    // Scan each project file individually: each must contain CUs for all
    // of its kernels (each kernel has at least a `go` or a primitive op).
    for kernel in goat_goker::all_kernels() {
        let m = goat_model::scan_file(kernel.source_file).expect("scan");
        assert!(m.len() >= 4, "{}: suspiciously few CUs in {}", kernel.name, kernel.source_file);
    }
}
