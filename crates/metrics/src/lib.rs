//! # goat-metrics — campaign telemetry for GoAT
//!
//! A small, dependency-light observability layer shared by the
//! runtime, campaign engine and bench binaries:
//!
//! - a process-wide [`Registry`] of counters, gauges and log2-bucket
//!   [`Histogram`]s (optionally labeled by kernel/variant), rendered
//!   as a human summary table by the bench binaries' `--stats` flag;
//! - an opt-in JSONL event stream ([`sink`]) activated by
//!   `GOAT_TELEMETRY=path`, buffered and flushed on teardown *and*
//!   panic so crashed campaigns still leave parseable output;
//! - a single global on/off switch ([`enabled`]) that hot paths check
//!   with one relaxed atomic load, keeping the disabled-telemetry
//!   overhead unmeasurable.
//!
//! The crate is a leaf: it depends only on (vendored) serde and
//! serde_json, so any layer of the workspace can use it without
//! cycles.
//!
//! ## Metric-name inventory
//!
//! Names are flat dotted strings registered by the layers above; this
//! is the canonical list (grep for the literal to find the producer):
//!
//! | prefix | names |
//! |---|---|
//! | `sched.*` (per-run scheduler) | `picks`, `random_picks`, `blocks`, `unblocks`, `yields_injected` |
//! | `run.*` / `runtime.*` | `run.steps`, `runtime.runs` |
//! | `pool.*` (worker-thread pool) | `checkout_ns` (histogram), `checkout_spun` (checkouts consumed in an idle worker's spin window, no futex wake) |
//! | `ect.*` / `coverage.*` | `ect.events`, `coverage.requirements`, `coverage.trace_events` |
//! | `campaign.*` | `iterations`, `reorder_depth_max`, `memo_hits` / `memo_misses` (duplicate-schedule analysis memo) |
//! | `supervision.*` | `timeouts`, `retries`, `infra_failures`, `quarantines`, `faults_injected`, `checkpoint_writes`, `checkpoint_resumes` |
//! | `guided.*` | `arm_pulls`, `arm_new_coverage` (labelled `arm<idx>:<strategy>`; guided campaigns only) |
//! | `isolate.*` (process-isolation worker pool) | `workers_spawned`, `workers_reused`, `workers_killed`, `workers_died`, `workers_drained` (idle pool teardown: per campaign for lone runs, per suite in suite mode), `runs`; IPC data plane: `ipc_ser_ns` / `ipc_transport_ns` / `ipc_deser_ns` (per-run encode, write→result-arrival, decode histograms), `ipc_bytes_tx` / `ipc_bytes_rx` (bytes on the wire, counters) |
//! | `suite.*` (suite orchestrator, `-target all`) | `kernels`, `jobs`, `steals` (cross-kernel claim switches), `kernels_inflight_max`, `budget_donated` / `budget_granted` (adaptive reallocation), `warm_bufs_reused` (analysis scratch recycled across kernels), `isolate_workers_reused` (sandboxed-worker checkouts served warm during the suite) |
//! | `telemetry.*` | `events_dropped` (sink back-pressure) |

#![warn(missing_docs)]

mod registry;
pub mod sink;

pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS};
pub use sink::{emit, flush, TELEMETRY_ENV};

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Tri-state for lazy env resolution: 0 = unresolved, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);
static FORCED: AtomicBool = AtomicBool::new(false);

/// Is telemetry collection enabled for this process?
///
/// Hot paths gate per-event work on this: one relaxed atomic load.
/// Resolves lazily on first call: on if `GOAT_TELEMETRY` names a path
/// or [`set_enabled`]`(true)` was called, off otherwise.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => resolve_enabled(),
        1 => false,
        _ => true,
    }
}

#[cold]
fn resolve_enabled() -> bool {
    let on = FORCED.load(Ordering::Relaxed)
        || std::env::var_os(sink::TELEMETRY_ENV).is_some_and(|v| !v.is_empty());
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Force telemetry collection on or off (used by `--stats` and tests).
pub fn set_enabled(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-wide metrics registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The current label context (kernel/variant under test).
static CONTEXT: Mutex<Option<String>> = Mutex::new(None);

/// Set the label attached to subsequently reported labeled metrics —
/// campaigns set this to the program name under test. `None` clears it.
pub fn set_context(label: Option<&str>) {
    *CONTEXT.lock().expect("metrics context") = label.map(str::to_string);
}

/// The current label context, if any.
pub fn context() -> Option<String> {
    CONTEXT.lock().expect("metrics context").clone()
}

/// Convenience: a counter in the global registry labeled with the
/// current [`context`].
pub fn counter(name: &'static str) -> std::sync::Arc<Counter> {
    global().counter_with(name, context().as_deref())
}

/// Convenience: an unlabeled histogram in the global registry.
pub fn histogram(name: &'static str) -> std::sync::Arc<Histogram> {
    global().histogram(name)
}

/// Convenience: an unlabeled gauge in the global registry.
pub fn gauge(name: &'static str) -> std::sync::Arc<Gauge> {
    global().gauge(name)
}

#[cfg(test)]
mod tests {
    #[test]
    fn set_enabled_toggles() {
        super::set_enabled(true);
        assert!(super::enabled());
        super::set_enabled(false);
        assert!(!super::enabled());
    }

    #[test]
    fn context_roundtrip() {
        super::set_context(Some("etcd6708"));
        assert_eq!(super::context().as_deref(), Some("etcd6708"));
        super::set_context(None);
        assert_eq!(super::context(), None);
    }
}
