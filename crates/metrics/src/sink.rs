//! Opt-in JSONL event export.
//!
//! When `GOAT_TELEMETRY=path` is set (or a sink is installed
//! programmatically with [`init_path`]), every [`emit`] call appends
//! one JSON object per line to the file. The writer is buffered; it is
//! flushed explicitly at run/campaign teardown and from a chained
//! panic hook, so a crashing campaign still leaves a parseable stream
//! on disk.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, OnceLock};

/// The installed sink, if any. `None` inside the `OnceLock` means
/// "initialization ran and telemetry export is off".
static SINK: OnceLock<Option<Mutex<BufWriter<File>>>> = OnceLock::new();

/// Environment variable naming the JSONL output path.
pub const TELEMETRY_ENV: &str = "GOAT_TELEMETRY";

fn open(path: &Path) -> Option<Mutex<BufWriter<File>>> {
    match File::create(path) {
        Ok(f) => Some(Mutex::new(BufWriter::new(f))),
        Err(e) => {
            eprintln!("goat-metrics: cannot open {} for telemetry: {e}", path.display());
            None
        }
    }
}

fn install_panic_flush() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        flush();
        prev(info);
    }));
}

/// Lazily resolve the sink from the environment on first use.
fn sink() -> &'static Option<Mutex<BufWriter<File>>> {
    SINK.get_or_init(|| {
        let path = std::env::var_os(TELEMETRY_ENV)?;
        if path.is_empty() {
            return None;
        }
        let s = open(Path::new(&path));
        if s.is_some() {
            crate::set_enabled(true);
            install_panic_flush();
        }
        s
    })
}

/// Install a JSONL sink at `path` explicitly (e.g. from a `--telemetry`
/// flag), overriding the environment. Returns false if a sink decision
/// was already made for this process, or the file cannot be created.
pub fn init_path(path: &Path) -> bool {
    let mut installed = false;
    let r = SINK.get_or_init(|| {
        let s = open(path);
        installed = s.is_some();
        s
    });
    if installed {
        crate::set_enabled(true);
        install_panic_flush();
    }
    installed && r.is_some()
}

/// Whether a JSONL sink is active for this process.
pub fn active() -> bool {
    sink().is_some()
}

/// Serialize `event` as one JSON line into the sink. No-op when no
/// sink is installed; serialization cost is only paid when active.
pub fn emit<T: serde::Serialize>(event: &T) {
    let Some(s) = sink() else { return };
    let Ok(line) = serde_json::to_string(event) else { return };
    let mut w = s.lock().expect("telemetry sink");
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
}

/// Flush buffered telemetry to disk. Called at run/campaign teardown
/// and from the panic hook; safe to call any number of times.
pub fn flush() {
    if let Some(Some(s)) = SINK.get() {
        if let Ok(mut w) = s.lock() {
            let _ = w.flush();
        }
    }
}
