//! Opt-in JSONL event export.
//!
//! When `GOAT_TELEMETRY=path` is set (or a sink is installed
//! programmatically with [`init_path`]), every [`emit`] call appends
//! one JSON object per line to the file. The writer is buffered; it is
//! flushed explicitly at run/campaign teardown and from a chained
//! panic hook, so a crashing campaign still leaves a parseable stream
//! on disk.
//!
//! The sink is **non-fatal**: any I/O error (full disk, revoked file
//! descriptor, injected fault) permanently degrades it to a disabled
//! writer. The campaign keeps running, subsequent events are counted
//! in the registry's `telemetry.events_dropped` counter, and the
//! panic-hook flush path stays safe — losing observability must never
//! cost the observation campaign itself.
//!
//! Fault injection: a `sink:err[:after=N]` spec in the `GOAT_FAULT`
//! environment variable (the grammar of `goat-runtime`'s faultpoint
//! module, honoured here because this crate sits below the runtime)
//! makes the Nth write fail deliberately, so tests and CI can exercise
//! the degrade path on a healthy disk.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Mutex, OnceLock};

/// The sink writer; `None` inside the mutex means the sink degraded
/// after an I/O error and now drops (and counts) every event.
struct Sink {
    w: Mutex<Option<BufWriter<File>>>,
    /// Writes remaining until an injected failure: negative = no fault
    /// planned, 0 = fail the next write.
    fail_countdown: AtomicI64,
}

/// The installed sink, if any. `None` inside the `OnceLock` means
/// "initialization ran and telemetry export is off".
static SINK: OnceLock<Option<Sink>> = OnceLock::new();

/// Environment variable naming the JSONL output path.
pub const TELEMETRY_ENV: &str = "GOAT_TELEMETRY";

/// Parse a `sink:err[:after=N]` spec out of `GOAT_FAULT`, if present.
/// (Full grammar lives in `goat-runtime`'s faultpoint module; this
/// crate is beneath the runtime so it reads its own site directly.)
fn injected_fail_after() -> Option<i64> {
    let raw = std::env::var("GOAT_FAULT").ok()?;
    for one in raw.split(',').map(str::trim) {
        let mut parts = one.splitn(3, ':');
        if parts.next() != Some("sink") || parts.next() != Some("err") {
            continue;
        }
        let after = match parts.next() {
            None => 0,
            Some(p) => p.strip_prefix("after=").unwrap_or(p).parse::<i64>().ok()?,
        };
        return Some(after.max(0));
    }
    None
}

fn open(path: &Path) -> Option<Sink> {
    match File::create(path) {
        Ok(f) => Some(Sink {
            w: Mutex::new(Some(BufWriter::new(f))),
            fail_countdown: AtomicI64::new(injected_fail_after().unwrap_or(-1)),
        }),
        Err(e) => {
            eprintln!("goat-metrics: cannot open {} for telemetry: {e}", path.display());
            None
        }
    }
}

fn install_panic_flush() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        flush();
        prev(info);
    }));
}

/// Lazily resolve the sink from the environment on first use.
fn sink() -> &'static Option<Sink> {
    SINK.get_or_init(|| {
        let path = std::env::var_os(TELEMETRY_ENV)?;
        if path.is_empty() {
            return None;
        }
        let s = open(Path::new(&path));
        if s.is_some() {
            crate::set_enabled(true);
            install_panic_flush();
        }
        s
    })
}

/// Install a JSONL sink at `path` explicitly (e.g. from a `--telemetry`
/// flag), overriding the environment. Returns false if a sink decision
/// was already made for this process, or the file cannot be created.
pub fn init_path(path: &Path) -> bool {
    let mut installed = false;
    let r = SINK.get_or_init(|| {
        let s = open(path);
        installed = s.is_some();
        s
    });
    if installed {
        crate::set_enabled(true);
        install_panic_flush();
    }
    installed && r.is_some()
}

/// Whether a JSONL sink is installed *and still healthy* (a degraded
/// sink counts as inactive: its events are dropped).
pub fn active() -> bool {
    match sink() {
        Some(s) => s.w.lock().map(|w| w.is_some()).unwrap_or(false),
        None => false,
    }
}

/// Events dropped because the sink degraded after an I/O error.
pub fn events_dropped() -> u64 {
    dropped_counter().get()
}

fn dropped_counter() -> std::sync::Arc<crate::Counter> {
    crate::global().counter_with("telemetry.events_dropped", None)
}

impl Sink {
    /// Degrade permanently after a write failure: drop the writer,
    /// count the event, and keep the campaign running.
    fn degrade(&self, w: &mut Option<BufWriter<File>>, why: &str) {
        *w = None;
        dropped_counter().inc();
        eprintln!("goat-metrics: telemetry sink write failed ({why}); disabling sink and counting dropped events — the campaign continues");
    }
}

/// Serialize `event` as one JSON line into the sink. No-op when no
/// sink is installed; serialization cost is only paid when active. An
/// I/O failure degrades the sink (see module docs) instead of
/// propagating.
pub fn emit<T: serde::Serialize>(event: &T) {
    let Some(s) = sink() else { return };
    let Ok(line) = serde_json::to_string(event) else { return };
    let Ok(mut w) = s.w.lock() else { return };
    let Some(writer) = w.as_mut() else {
        dropped_counter().inc();
        return;
    };
    if s.fail_countdown.load(Ordering::Relaxed) >= 0
        && s.fail_countdown.fetch_sub(1, Ordering::Relaxed) == 0
    {
        s.degrade(&mut w, "injected fault: sink:err");
        return;
    }
    if let Err(e) = writer.write_all(line.as_bytes()).and_then(|()| writer.write_all(b"\n")) {
        s.degrade(&mut w, &e.to_string());
    }
}

/// Flush buffered telemetry to disk. Called at run/campaign teardown
/// and from the panic hook; safe to call any number of times, even
/// after the sink degraded.
pub fn flush() {
    if let Some(Some(s)) = SINK.get() {
        if let Ok(mut w) = s.w.lock() {
            if let Some(writer) = w.as_mut() {
                if let Err(e) = writer.flush() {
                    s.degrade(&mut w, &e.to_string());
                }
            }
        }
    }
}
