//! The metrics registry: named counters, gauges and log2-bucket
//! histograms, optionally labeled (by kernel/variant).
//!
//! Design constraints, in order:
//!
//! 1. **Hot paths pay nothing when telemetry is off** — every recording
//!    site either guards on [`crate::enabled`] (one relaxed atomic
//!    load) or accumulates into plain fields it already owns and only
//!    reports into the registry at run teardown.
//! 2. **Recording is lock-cheap when on** — metric handles are
//!    `Arc`-shared atomics; the registry lock is taken only to *look
//!    up* a handle (once per run / per call site), never per event.
//! 3. **Readable output** — [`Registry::render_table`] prints the
//!    human `--stats` table; [`Histogram::snapshot`] feeds the
//!    serializable campaign telemetry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (e.g. idle workers, reorder
/// buffer depth). Tracks the high-water mark alongside the level.
#[derive(Debug, Default)]
pub struct Gauge {
    level: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.level.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by a delta.
    pub fn add(&self, d: i64) {
        let v = self.level.fetch_add(d, Ordering::Relaxed) + d;
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.level.load(Ordering::Relaxed)
    }

    /// High-water mark since creation.
    pub fn high_water(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: values up to 2^63 land in bucket 63.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucket histogram: `record(v)` lands in bucket
/// `bit_width(v)` (0 → bucket 0, 1 → 1, 2..3 → 2, 4..7 → 3, …), so
/// bucket `i > 0` spans `[2^(i-1), 2^i)`. Cheap enough for hot paths:
/// one relaxed `fetch_add` per record plus two for count/sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize; // bit_width(v)
        self.buckets[b.min(HISTOGRAM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time summary of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Serializable summary of a [`Histogram`]: total count/sum/max plus the
/// non-empty log2 buckets as `(bucket_index, count)` pairs, where bucket
/// `i > 0` covers values in `[2^(i-1), 2^i)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty `(log2 bucket, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A metric handle held by the registry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Registry key: metric name plus an optional label (kernel/variant).
type Key = (&'static str, Option<String>);

/// The process-wide metrics registry.
///
/// Lookups lock a `BTreeMap`; recording through the returned `Arc`
/// handles is lock-free. Call sites that record per-event cache the
/// handle (once per run), so the lock is cold.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Metric>>,
}

impl Registry {
    /// Counter handle for `name` with no label.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.counter_with(name, None)
    }

    /// Counter handle for `name` labeled `label` (e.g. a kernel name).
    pub fn counter_with(&self, name: &'static str, label: Option<&str>) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("metrics registry");
        match m
            .entry((name, label.map(str::to_string)))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Gauge handle for `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("metrics registry");
        match m.entry((name, None)).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Histogram handle for `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("metrics registry");
        match m
            .entry((name, None))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Value of a counter, summed across all labels (0 if absent).
    pub fn counter_total(&self, name: &'static str) -> u64 {
        let m = self.metrics.lock().expect("metrics registry");
        m.iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, v)| match v {
                Metric::Counter(c) => c.get(),
                _ => 0,
            })
            .sum()
    }

    /// Snapshot of a histogram (empty if absent).
    pub fn histogram_snapshot(&self, name: &'static str) -> HistogramSnapshot {
        let m = self.metrics.lock().expect("metrics registry");
        match m.get(&(name, None)) {
            Some(Metric::Histogram(h)) => h.snapshot(),
            _ => HistogramSnapshot::default(),
        }
    }

    /// Render the human `--stats` summary table: one row per metric
    /// (and label), sorted by name.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let m = self.metrics.lock().expect("metrics registry");
        let mut out = String::new();
        let _ = writeln!(out, "{:<36} {:<16} {:>14}  detail", "metric", "label", "value");
        let _ = writeln!(out, "{}", "-".repeat(86));
        for ((name, label), metric) in m.iter() {
            let label = label.as_deref().unwrap_or("-");
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{:<36} {:<16} {:>14}", name, label, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{:<36} {:<16} {:>14}  high-water {}",
                        name,
                        label,
                        g.get(),
                        g.high_water()
                    );
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = writeln!(
                        out,
                        "{:<36} {:<16} {:>14}  mean {:.0}, max {}",
                        name,
                        label,
                        s.count,
                        s.mean(),
                        s.max
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = Registry::default();
        let c = r.counter("a");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.counter_total("a"), 5);
    }

    #[test]
    fn labeled_counters_are_distinct_but_total() {
        let r = Registry::default();
        r.counter_with("runs", Some("k1")).add(2);
        r.counter_with("runs", Some("k2")).add(3);
        assert_eq!(r.counter_with("runs", Some("k1")).get(), 2);
        assert_eq!(r.counter_total("runs"), 5);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let r = Registry::default();
        let g = r.gauge("depth");
        g.set(3);
        g.add(4);
        g.add(-6);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 7);
    }

    #[test]
    fn histogram_log2_buckets() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
        assert!((s.mean() - 206.0).abs() < 1.0);
    }

    #[test]
    fn histogram_snapshot_serializes() {
        let h = Histogram::default();
        h.record(7);
        let json = serde_json::to_string(&h.snapshot()).expect("serialize");
        assert!(json.contains("\"buckets\":[[3,1]]"), "{json}");
        let back: HistogramSnapshot = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back, h.snapshot());
    }

    #[test]
    fn table_renders_all_kinds() {
        let r = Registry::default();
        r.counter("c").add(9);
        r.gauge("g").set(2);
        r.histogram("h").record(100);
        let t = r.render_table();
        assert!(t.contains("c"), "{t}");
        assert!(t.contains("high-water"), "{t}");
        assert!(t.contains("mean"), "{t}");
    }
}
