//! Property-based tests for trace well-formedness and goroutine-tree
//! construction over randomly generated (but structurally valid)
//! event sequences.

use goat_trace::{BlockReason, Ect, Event, EventKind, GTree, Gid, TraceStats, VTime};
use proptest::prelude::*;

/// Abstract actions from which a *valid* trace is synthesized.
#[derive(Debug, Clone)]
enum Action {
    Spawn { parent_pick: usize, internal: bool },
    Emit { g_pick: usize, what: u8 },
    End { g_pick: usize },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<usize>(), any::<bool>())
            .prop_map(|(parent_pick, internal)| Action::Spawn { parent_pick, internal }),
        (any::<usize>(), 0..5u8).prop_map(|(g_pick, what)| Action::Emit { g_pick, what }),
        any::<usize>().prop_map(|g_pick| Action::End { g_pick }),
    ]
}

/// Synthesize a well-formed trace from an action script: goroutines only
/// emit after creation and never after their end.
fn build_trace(actions: &[Action]) -> (Ect, usize, usize) {
    let mut ect = Ect::new();
    let mut alive: Vec<Gid> = vec![Gid::MAIN];
    let mut next = 2u64;
    let mut seq = 0u64;
    let mut spawns = 0usize;
    let mut ends = 0usize;
    let push = |ect: &mut Ect, seq: &mut u64, g: Gid, kind: EventKind| {
        ect.push(Event { seq: *seq, ts: VTime(*seq * 7), g, kind, cu: None });
        *seq += 1;
    };
    push(&mut ect, &mut seq, Gid::MAIN, EventKind::GoStart);
    for a in actions {
        match a {
            Action::Spawn { parent_pick, internal } => {
                if alive.is_empty() {
                    continue;
                }
                let parent = alive[parent_pick % alive.len()];
                let child = Gid(next);
                next += 1;
                spawns += 1;
                push(
                    &mut ect,
                    &mut seq,
                    parent,
                    EventKind::GoCreate {
                        new_g: child,
                        name: format!("g{}", child.0).into(),
                        internal: *internal,
                    },
                );
                push(&mut ect, &mut seq, child, EventKind::GoStart);
                alive.push(child);
            }
            Action::Emit { g_pick, what } => {
                if alive.is_empty() {
                    continue;
                }
                let g = alive[g_pick % alive.len()];
                let kind = match what {
                    0 => EventKind::GoSched { trace_stop: false },
                    1 => EventKind::GoBlock {
                        reason: BlockReason::Recv,
                        holder_cu: None,
                        holder: None,
                    },
                    2 => EventKind::ChMake { ch: goat_trace::RId(u64::from(*what)), cap: 1 },
                    3 => EventKind::GoPreempt,
                    _ => EventKind::UserLog { msg: "x".into() },
                };
                push(&mut ect, &mut seq, g, kind);
            }
            Action::End { g_pick } => {
                if alive.len() <= 1 {
                    continue; // keep main alive until the end
                }
                let idx = 1 + (g_pick % (alive.len() - 1));
                let g = alive.remove(idx);
                ends += 1;
                push(&mut ect, &mut seq, g, EventKind::GoEnd);
            }
        }
    }
    push(&mut ect, &mut seq, Gid::MAIN, EventKind::GoSched { trace_stop: true });
    (ect, spawns, ends)
}

proptest! {
    #[test]
    fn synthesized_traces_are_well_formed(actions in prop::collection::vec(action_strategy(), 0..80)) {
        let (ect, _, _) = build_trace(&actions);
        prop_assert!(ect.well_formed().is_ok(), "{:?}", ect.well_formed());
    }

    #[test]
    fn tree_node_count_is_spawns_plus_main(actions in prop::collection::vec(action_strategy(), 0..80)) {
        let (ect, spawns, _) = build_trace(&actions);
        let tree = GTree::from_ect(&ect);
        prop_assert_eq!(tree.len(), spawns + 1);
        // BFS reaches every node exactly once.
        prop_assert_eq!(tree.bfs().len(), tree.len());
        // Every non-root node's parent contains it as a child.
        for node in tree.nodes() {
            if let Some(p) = node.parent {
                let parent = tree.get(p).expect("parent exists");
                prop_assert!(parent.children.contains(&node.g));
            }
        }
    }

    #[test]
    fn app_filter_drops_internal_subtrees(actions in prop::collection::vec(action_strategy(), 0..80)) {
        let (ect, _, _) = build_trace(&actions);
        let tree = GTree::from_ect(&ect);
        for node in tree.app_nodes() {
            prop_assert!(!node.internal);
            // Walk ancestry back to main without crossing internals.
            let mut cur = node.g;
            loop {
                let n = tree.get(cur).expect("node");
                prop_assert!(!n.internal, "app node has internal ancestor");
                match n.parent {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
    }

    #[test]
    fn stats_totals_match_trace_length(actions in prop::collection::vec(action_strategy(), 0..80)) {
        let (ect, _, _) = build_trace(&actions);
        let stats = TraceStats::of(&ect);
        prop_assert_eq!(stats.categories.total(), ect.len());
        let per_g_total: usize = stats.goroutines.values().map(|p| p.events).sum();
        prop_assert_eq!(per_g_total, ect.len());
    }

    #[test]
    fn json_roundtrip_preserves_traces(actions in prop::collection::vec(action_strategy(), 0..40)) {
        let (ect, _, _) = build_trace(&actions);
        let json = ect.to_json().expect("serialize");
        let back = Ect::from_json(&json).expect("parse");
        prop_assert_eq!(back, ect);
    }

    #[test]
    fn mutated_traces_are_rejected(
        actions in prop::collection::vec(action_strategy(), 3..40),
        victim in any::<usize>(),
    ) {
        let (ect, spawns, _) = build_trace(&actions);
        prop_assume!(spawns > 0);
        // Mutation: duplicate some goroutine's GoCreate (double create).
        let creates: Vec<&Event> = ect
            .iter()
            .filter(|e| matches!(e.kind, EventKind::GoCreate { .. }))
            .collect();
        let dup = creates[victim % creates.len()].clone();
        let mut events: Vec<Event> = ect.events().to_vec();
        events.push(Event { seq: events.len() as u64, ..dup });
        let mutated: Ect = events.into_iter().collect();
        prop_assert!(mutated.well_formed().is_err());
    }
}
