//! The ECT container: a totally ordered event sequence with queries.

use crate::event::{Event, EventKind, Gid};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::OnceLock;

/// Per-trace goroutine index, computed once on first use and shared by
/// [`Ect::goroutines`] and [`Ect::per_goroutine`].
#[derive(Debug, Clone, Default)]
struct GIndex {
    /// Distinct goroutines in first-appearance order (including created
    /// but never-scheduled goroutines).
    order: Vec<Gid>,
    /// Event indices emitted by each goroutine, in trace order.
    per_g: BTreeMap<Gid, Vec<usize>>,
}

/// An execution concurrency trace: the totally ordered event sequence
/// produced by one program run (paper §III-D).
///
/// ```
/// use goat_trace::{Ect, Event, EventKind, Gid, VTime};
/// let mut ect = Ect::new();
/// ect.push(Event {
///     seq: 0, ts: VTime::ZERO, g: Gid::MAIN,
///     kind: EventKind::GoStart, cu: None,
/// });
/// assert_eq!(ect.len(), 1);
/// assert!(ect.well_formed().is_ok());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ect {
    events: Vec<Event>,
    /// Lazily computed goroutine index; invalidated by `push`, never
    /// serialized and ignored by equality.
    #[serde(skip)]
    gindex: OnceLock<GIndex>,
}

impl Ect {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an already collected event vector (the once-per-run assembly
    /// point — moves the buffer, no per-event re-push).
    ///
    /// # Panics
    /// Panics if sequence numbers are not dense (`0..n`): the ECT is a
    /// total order.
    pub fn from_events(events: Vec<Event>) -> Self {
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq as usize, i, "ECT sequence numbers must be dense");
        }
        // One relaxed atomic load when telemetry is off.
        if goat_metrics::enabled() {
            goat_metrics::histogram("ect.events").record(events.len() as u64);
        }
        Ect { events, gindex: OnceLock::new() }
    }

    /// Take back the underlying event vector (for buffer recycling).
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Append an event.
    ///
    /// # Panics
    /// Panics if `ev.seq` does not equal the current length: the ECT is a
    /// total order and sequence numbers are dense.
    pub fn push(&mut self, ev: Event) {
        assert_eq!(ev.seq as usize, self.events.len(), "ECT sequence numbers must be dense");
        self.events.push(ev);
        self.gindex = OnceLock::new();
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events in total order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterate over events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The goroutine index, computed once per trace and reused by every
    /// caller (traces are immutable once collected; `push` invalidates).
    fn gindex(&self) -> &GIndex {
        self.gindex.get_or_init(|| {
            let mut idx = GIndex::default();
            let mut seen = BTreeSet::new();
            for (i, ev) in self.events.iter().enumerate() {
                if seen.insert(ev.g) {
                    idx.order.push(ev.g);
                }
                idx.per_g.entry(ev.g).or_default().push(i);
                if let EventKind::GoCreate { new_g, .. } = &ev.kind {
                    if seen.insert(*new_g) {
                        idx.order.push(*new_g);
                    }
                }
            }
            idx
        })
    }

    /// The distinct goroutines appearing in the trace, in first-appearance
    /// order.
    pub fn goroutines(&self) -> &[Gid] {
        &self.gindex().order
    }

    /// Indices of events emitted by each goroutine, preserving order.
    pub fn per_goroutine(&self) -> &BTreeMap<Gid, Vec<usize>> {
        &self.gindex().per_g
    }

    /// The last event emitted by goroutine `g`, if any.
    pub fn last_event_of(&self, g: Gid) -> Option<&Event> {
        self.events.iter().rev().find(|e| e.g == g)
    }

    /// The `GoCreate` event that spawned `g`, if traced.
    pub fn creation_of(&self, g: Gid) -> Option<&Event> {
        self.events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::GoCreate { new_g, .. } if *new_g == g))
    }

    /// Serialize the trace to a JSON string.
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error on failure (should not
    /// happen for well-formed traces).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parse a trace from JSON produced by [`Ect::to_json`].
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Check structural invariants of the trace:
    ///
    /// 1. sequence numbers are dense and increasing;
    /// 2. timestamps are non-decreasing;
    /// 3. each goroutine is created at most once;
    /// 4. no goroutine (except main) emits events before its `GoCreate`;
    /// 5. `GoEnd`/`GoStop` is the final event of its goroutine.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn well_formed(&self) -> Result<(), WellFormedError> {
        let mut created: BTreeMap<Gid, u64> = BTreeMap::new();
        let mut ended: BTreeMap<Gid, u64> = BTreeMap::new();
        let mut last_ts = None;
        for (i, ev) in self.events.iter().enumerate() {
            if ev.seq != i as u64 {
                return Err(WellFormedError::NonDenseSeq { at: i, seq: ev.seq });
            }
            if let Some(prev) = last_ts {
                if ev.ts < prev {
                    return Err(WellFormedError::TimeRegression { seq: ev.seq });
                }
            }
            last_ts = Some(ev.ts);
            if let Some(&end_seq) = ended.get(&ev.g) {
                return Err(WellFormedError::EventAfterEnd { g: ev.g, end_seq, seq: ev.seq });
            }
            if ev.g != Gid::MAIN && ev.g != Gid::RUNTIME && !created.contains_key(&ev.g) {
                return Err(WellFormedError::UncreatedGoroutine { g: ev.g, seq: ev.seq });
            }
            match &ev.kind {
                EventKind::GoCreate { new_g, .. } if created.insert(*new_g, ev.seq).is_some() => {
                    return Err(WellFormedError::DoubleCreate { g: *new_g, seq: ev.seq });
                }
                EventKind::GoEnd | EventKind::GoStop => {
                    ended.insert(ev.g, ev.seq);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The trace's schedule fingerprint (see
    /// [`crate::tracebuf::schedule_fingerprint`]): equal fingerprints
    /// mean the same interleaving of the same operations. The runtime
    /// computes this online while recording; this offline twin serves
    /// deserialized or replayed traces.
    pub fn fingerprint(&self) -> u64 {
        crate::tracebuf::schedule_fingerprint(self.events.iter())
    }

    /// Render the trace as a human-readable interleaving listing, one
    /// event per line (used by goat-core's reports).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}

impl PartialEq for Ect {
    fn eq(&self, other: &Self) -> bool {
        // The lazily computed index is derived state; only events count.
        self.events == other.events
    }
}

impl FromIterator<Event> for Ect {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Ect::from_events(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Ect {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Violation reported by [`Ect::well_formed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormedError {
    /// Sequence numbers are not `0..n`.
    NonDenseSeq {
        /// Index in the vector.
        at: usize,
        /// Offending sequence number.
        seq: u64,
    },
    /// A timestamp decreased.
    TimeRegression {
        /// Sequence number of the offending event.
        seq: u64,
    },
    /// A goroutine was created twice.
    DoubleCreate {
        /// The goroutine.
        g: Gid,
        /// Sequence number of the second creation.
        seq: u64,
    },
    /// A goroutine other than main emitted an event before its creation.
    UncreatedGoroutine {
        /// The goroutine.
        g: Gid,
        /// Sequence number of the premature event.
        seq: u64,
    },
    /// A goroutine emitted an event after its `GoEnd`/`GoStop`.
    EventAfterEnd {
        /// The goroutine.
        g: Gid,
        /// Sequence number of its end event.
        end_seq: u64,
        /// Sequence number of the offending event.
        seq: u64,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::NonDenseSeq { at, seq } => {
                write!(f, "non-dense sequence number {seq} at index {at}")
            }
            WellFormedError::TimeRegression { seq } => {
                write!(f, "timestamp regressed at event {seq}")
            }
            WellFormedError::DoubleCreate { g, seq } => {
                write!(f, "goroutine {g} created twice (second at event {seq})")
            }
            WellFormedError::UncreatedGoroutine { g, seq } => {
                write!(f, "goroutine {g} emitted event {seq} before its GoCreate")
            }
            WellFormedError::EventAfterEnd { g, end_seq, seq } => {
                write!(f, "goroutine {g} emitted event {seq} after its end at {end_seq}")
            }
        }
    }
}

impl std::error::Error for WellFormedError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, VTime};

    fn ev(seq: u64, g: u64, kind: EventKind) -> Event {
        Event { seq, ts: VTime(seq * 10), g: Gid(g), kind, cu: None }
    }

    fn create(seq: u64, g: u64, new_g: u64) -> Event {
        ev(
            seq,
            g,
            EventKind::GoCreate {
                new_g: Gid(new_g),
                name: format!("g{new_g}").into(),
                internal: false,
            },
        )
    }

    #[test]
    fn simple_trace_is_well_formed() {
        let ect: Ect = vec![
            ev(0, 1, EventKind::GoStart),
            create(1, 1, 2),
            ev(2, 2, EventKind::GoStart),
            ev(3, 2, EventKind::GoEnd),
            ev(4, 1, EventKind::GoSched { trace_stop: true }),
        ]
        .into_iter()
        .collect();
        assert!(ect.well_formed().is_ok());
        assert_eq!(ect.goroutines(), vec![Gid(1), Gid(2)]);
        assert_eq!(ect.last_event_of(Gid(2)).unwrap().kind, EventKind::GoEnd);
        assert!(ect.creation_of(Gid(2)).is_some());
        assert!(ect.creation_of(Gid(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn push_rejects_sparse_seq() {
        let mut ect = Ect::new();
        ect.push(ev(5, 1, EventKind::GoStart));
    }

    #[test]
    fn detects_event_after_end() {
        let mut ect = Ect::new();
        ect.push(ev(0, 1, EventKind::GoStart));
        ect.push(create(1, 1, 2));
        ect.push(ev(2, 2, EventKind::GoEnd));
        ect.push(ev(3, 2, EventKind::GoStart));
        assert!(matches!(ect.well_formed(), Err(WellFormedError::EventAfterEnd { g: Gid(2), .. })));
    }

    #[test]
    fn detects_uncreated_goroutine() {
        let mut ect = Ect::new();
        ect.push(ev(0, 7, EventKind::GoStart));
        assert!(matches!(
            ect.well_formed(),
            Err(WellFormedError::UncreatedGoroutine { g: Gid(7), .. })
        ));
    }

    #[test]
    fn detects_double_create() {
        let mut ect = Ect::new();
        ect.push(create(0, 1, 2));
        ect.push(create(1, 1, 2));
        assert!(matches!(ect.well_formed(), Err(WellFormedError::DoubleCreate { g: Gid(2), .. })));
    }

    #[test]
    fn detects_time_regression() {
        let mut ect = Ect::new();
        ect.push(Event { seq: 0, ts: VTime(100), g: Gid(1), kind: EventKind::GoStart, cu: None });
        ect.push(Event { seq: 1, ts: VTime(50), g: Gid(1), kind: EventKind::GoEnd, cu: None });
        assert!(matches!(ect.well_formed(), Err(WellFormedError::TimeRegression { seq: 1 })));
    }

    #[test]
    fn json_roundtrip() {
        let ect: Ect =
            vec![ev(0, 1, EventKind::GoStart), ev(1, 1, EventKind::GoEnd)].into_iter().collect();
        let json = ect.to_json().unwrap();
        assert_eq!(Ect::from_json(&json).unwrap(), ect);
    }

    #[test]
    fn render_lists_every_event() {
        let ect: Ect =
            vec![ev(0, 1, EventKind::GoStart), ev(1, 1, EventKind::GoEnd)].into_iter().collect();
        let r = ect.render();
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("GoStart"));
    }

    #[test]
    fn per_goroutine_partitions_indices() {
        let ect: Ect = vec![
            ev(0, 1, EventKind::GoStart),
            create(1, 1, 2),
            ev(2, 2, EventKind::GoStart),
            ev(3, 1, EventKind::GoSched { trace_stop: false }),
        ]
        .into_iter()
        .collect();
        let per = ect.per_goroutine();
        assert_eq!(per[&Gid(1)], vec![0, 1, 3]);
        assert_eq!(per[&Gid(2)], vec![2]);
        let total: usize = per.values().map(Vec::len).sum();
        assert_eq!(total, ect.len());
    }
}
