//! Process-wide trace-buffer recycling pool.
//!
//! A yield-injection campaign collects one event vector per iteration;
//! at 10k+ events per trace that is the single largest per-iteration
//! allocation. Instead of re-growing a fresh `Vec` from zero every run,
//! the scheduler checks a buffer out of this pool at startup and the
//! campaign merge loop returns the (cleared, capacity-preserving) vector
//! once analysis is done, so steady-state campaigns allocate trace
//! storage only until the high-water trace size is reached.
//!
//! The pool is deliberately dumb: a mutex over a stack of buffers, LIFO
//! so the hottest (cache-warm, fully grown) buffer is reused first.
//! Capacity is bounded by the `GOAT_TRACE_POOL_MAX` environment knob
//! (default 32 buffers; `0` disables recycling entirely — every take is
//! fresh and every return is dropped). The `goat` CLI exposes it as the
//! `-trace-pool-max` flag; env wins when both are set. Both bug and
//! non-bug traces flow back here — bug ECTs are returned by the front
//! end once their report has been rendered.
//!
//! Counters are plain relaxed atomics (not gated behind telemetry) so
//! [`stats`] is always meaningful; the campaign runner surfaces them in
//! `CampaignTelemetry` when telemetry is on.

use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static RECYCLED: AtomicU64 = AtomicU64::new(0);
static FRESH: AtomicU64 = AtomicU64::new(0);
static RETURNED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn pool() -> &'static Mutex<Vec<Vec<Event>>> {
    static POOL: OnceLock<Mutex<Vec<Vec<Event>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Maximum number of idle buffers retained, from `GOAT_TRACE_POOL_MAX`
/// (read once per process; `0` disables recycling).
pub fn pool_max() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("GOAT_TRACE_POOL_MAX").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
    })
}

/// Check an empty event buffer out of the pool (recycled when one is
/// idle, freshly allocated otherwise).
pub fn take_buffer() -> Vec<Event> {
    if pool_max() > 0 {
        if let Some(buf) = pool().lock().expect("trace pool poisoned").pop() {
            RECYCLED.fetch_add(1, Ordering::Relaxed);
            debug_assert!(buf.is_empty());
            return buf;
        }
    }
    FRESH.fetch_add(1, Ordering::Relaxed);
    Vec::new()
}

/// Return a no-longer-needed event buffer to the pool. The buffer is
/// cleared (events dropped now, while it is cache-hot) but keeps its
/// capacity; buffers beyond the pool cap are dropped outright.
pub fn recycle_buffer(mut buf: Vec<Event>) {
    buf.clear();
    let max = pool_max();
    if max > 0 {
        let mut p = pool().lock().expect("trace pool poisoned");
        if p.len() < max {
            p.push(buf);
            RETURNED.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    DROPPED.fetch_add(1, Ordering::Relaxed);
}

/// Cumulative recycling counters for this process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracePoolStats {
    /// Buffer checkouts served from the pool.
    pub recycled: u64,
    /// Buffer checkouts that had to allocate.
    pub fresh: u64,
    /// Buffers successfully returned to the pool.
    pub returned: u64,
    /// Buffers dropped because the pool was full (or recycling disabled).
    pub dropped: u64,
}

/// Snapshot the process-wide recycling counters.
pub fn stats() -> TracePoolStats {
    TracePoolStats {
        recycled: RECYCLED.load(Ordering::Relaxed),
        fresh: FRESH.load(Ordering::Relaxed),
        returned: RETURNED.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Gid, VTime};

    #[test]
    fn buffers_round_trip_and_keep_capacity() {
        let mut buf = take_buffer();
        buf.reserve(1024);
        buf.push(Event {
            seq: 0,
            ts: VTime::ZERO,
            g: Gid::MAIN,
            kind: EventKind::GoStart,
            cu: None,
        });
        let cap = buf.capacity();
        recycle_buffer(buf);
        // LIFO: the next take sees the buffer we just returned, emptied.
        let buf2 = take_buffer();
        assert!(buf2.is_empty());
        assert!(buf2.capacity() >= cap || stats().dropped > 0);
        let s = stats();
        assert!(s.recycled + s.fresh >= 2);
    }
}
