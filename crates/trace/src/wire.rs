//! Compact little-endian binary codec for trace events.
//!
//! The process-isolation data plane (`GOAT_ISOLATE=proc` with
//! `GOAT_IPC=bin`) ships whole execution concurrency traces across the
//! worker pipe on every iteration; JSON-encoding a million-event trace
//! costs more than executing it. This module provides the wire
//! primitives (LEB128 varints, zigzag signed varints, length-prefixed
//! strings) and a delta codec for event sequences:
//!
//! * `seq`, `ts` and `g` are encoded as zigzag deltas against the
//!   previous event — dense sequences cost one byte per field;
//! * CU file paths and goroutine names are interned into a per-buffer
//!   string table, so each distinct path is transmitted once and every
//!   repeat is a one/two-byte index (decoded straight back into
//!   [`Istr`] handles, keeping decoded events `Copy`-cheap);
//! * every event kind is a one-byte tag followed by its varint payload.
//!
//! The codec is lossless: `decode_events(encode_events(evs)) == evs`
//! for arbitrary event buffers (proven by differential proptests
//! against the JSON path in `tests/ipc_wire.rs`), and the decode side
//! draws its event vector from the [`crate::recycle`] trace-buffer
//! pool so round-tripped traces participate in buffer recycling like
//! natively recorded ones.

use crate::event::{BlockReason, Event, EventKind, Gid, RId, SelCaseFlavor, VTime};
use goat_model::{Cu, CuKind, Istr};
use std::collections::HashMap;
use std::io::{self, ErrorKind};

/// Append `v` as a LEB128 varint (7 bits per byte, little-endian).
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Append `v` zigzag-mapped to an unsigned varint (small magnitudes of
/// either sign stay short).
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append an `f64` as its 8 IEEE-754 bits, little-endian (bit-exact
/// round trip, unlike any decimal rendering).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Append a `bool` as one byte.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

fn err(msg: &str) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, format!("wire: {msg}"))
}

/// Cursor over an encoded payload; every accessor validates bounds and
/// returns [`ErrorKind::InvalidData`] on truncated or malformed input
/// instead of panicking (the bytes come from another process).
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(|| err("truncated byte"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a LEB128 varint.
    pub fn uvarint(&mut self) -> io::Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(err("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b < 0x80 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(err("varint too long"));
            }
        }
    }

    /// Read a zigzag varint.
    pub fn ivarint(&mut self) -> io::Result<i64> {
        let v = self.uvarint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Read an `f64` written by [`put_f64`].
    pub fn f64(&mut self) -> io::Result<f64> {
        let bytes = self.bytes_fixed(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(a)))
    }

    /// Read a `bool` written by [`put_bool`].
    pub fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(err(&format!("bad bool byte {other}"))),
        }
    }

    /// Read exactly `n` raw bytes.
    pub fn bytes_fixed(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(err("truncated bytes"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a length-prefixed string written by [`put_str`].
    pub fn str(&mut self) -> io::Result<&'a str> {
        let len = self.uvarint()? as usize;
        if len > self.remaining() {
            return Err(err("string length exceeds payload"));
        }
        let bytes = self.bytes_fixed(len)?;
        std::str::from_utf8(bytes).map_err(|_| err("string is not UTF-8"))
    }
}

/// Encode-side string interning table: the first occurrence of a string
/// travels inline (marker `0` + payload), repeats travel as `index+1`.
#[derive(Default)]
struct StrTableEnc {
    idx: HashMap<&'static str, u64>,
}

impl StrTableEnc {
    fn put(&mut self, buf: &mut Vec<u8>, s: Istr) {
        match self.idx.get(s.as_str()) {
            Some(&i) => put_uvarint(buf, i + 1),
            None => {
                put_uvarint(buf, 0);
                put_str(buf, s.as_str());
                self.idx.insert(s.as_str(), self.idx.len() as u64);
            }
        }
    }
}

/// Decode-side table mirroring [`StrTableEnc`]; entries land in the
/// process-wide [`Istr`] arena.
#[derive(Default)]
struct StrTableDec {
    strs: Vec<Istr>,
}

impl StrTableDec {
    fn get(&mut self, r: &mut Reader<'_>) -> io::Result<Istr> {
        match r.uvarint()? {
            0 => {
                let s = Istr::new(r.str()?);
                self.strs.push(s);
                Ok(s)
            }
            i => self
                .strs
                .get((i - 1) as usize)
                .copied()
                .ok_or_else(|| err("string table index out of range")),
        }
    }
}

fn put_opt_rid(buf: &mut Vec<u8>, r: Option<RId>) {
    match r {
        Some(RId(v)) => {
            buf.push(1);
            put_uvarint(buf, v);
        }
        None => buf.push(0),
    }
}

fn get_opt_rid(r: &mut Reader<'_>) -> io::Result<Option<RId>> {
    Ok(match r.bool()? {
        true => Some(RId(r.uvarint()?)),
        false => None,
    })
}

fn block_reason_tag(b: BlockReason) -> u8 {
    match b {
        BlockReason::Send => 0,
        BlockReason::Recv => 1,
        BlockReason::Select => 2,
        BlockReason::Sync => 3,
        BlockReason::Cond => 4,
        BlockReason::WaitGroup => 5,
        BlockReason::Sleep => 6,
    }
}

fn block_reason_from(t: u8) -> io::Result<BlockReason> {
    Ok(match t {
        0 => BlockReason::Send,
        1 => BlockReason::Recv,
        2 => BlockReason::Select,
        3 => BlockReason::Sync,
        4 => BlockReason::Cond,
        5 => BlockReason::WaitGroup,
        6 => BlockReason::Sleep,
        other => return Err(err(&format!("bad block reason {other}"))),
    })
}

fn flavor_tag(f: SelCaseFlavor) -> u8 {
    match f {
        SelCaseFlavor::Send => 0,
        SelCaseFlavor::Recv => 1,
        SelCaseFlavor::Default => 2,
    }
}

fn flavor_from(t: u8) -> io::Result<SelCaseFlavor> {
    Ok(match t {
        0 => SelCaseFlavor::Send,
        1 => SelCaseFlavor::Recv,
        2 => SelCaseFlavor::Default,
        other => return Err(err(&format!("bad select flavor {other}"))),
    })
}

fn cu_kind_tag(k: CuKind) -> u8 {
    CuKind::ALL.iter().position(|&c| c == k).expect("CuKind::ALL is total") as u8
}

fn cu_kind_from(t: u8) -> io::Result<CuKind> {
    CuKind::ALL.get(t as usize).copied().ok_or_else(|| err(&format!("bad CU kind {t}")))
}

fn put_cu(buf: &mut Vec<u8>, table: &mut StrTableEnc, cu: Option<&Cu>) {
    match cu {
        Some(c) => {
            buf.push(1);
            table.put(buf, c.file);
            put_uvarint(buf, u64::from(c.line));
            buf.push(cu_kind_tag(c.kind));
        }
        None => buf.push(0),
    }
}

fn get_cu(r: &mut Reader<'_>, table: &mut StrTableDec) -> io::Result<Option<Cu>> {
    if !r.bool()? {
        return Ok(None);
    }
    let file = table.get(r)?;
    let line = r.uvarint()? as u32;
    let kind = cu_kind_from(r.u8()?)?;
    Ok(Some(Cu { file, line, kind }))
}

// Event-kind tags, in declaration order of [`EventKind`].
const T_PROC_START: u8 = 0;
const T_PROC_STOP: u8 = 1;
const T_GOMAXPROCS: u8 = 2;
const T_GC_START: u8 = 3;
const T_GC_DONE: u8 = 4;
const T_GC_STW_START: u8 = 5;
const T_GC_STW_DONE: u8 = 6;
const T_GC_SWEEP_START: u8 = 7;
const T_GC_SWEEP_DONE: u8 = 8;
const T_HEAP_ALLOC: u8 = 9;
const T_GO_CREATE: u8 = 10;
const T_GO_START: u8 = 11;
const T_GO_END: u8 = 12;
const T_GO_STOP: u8 = 13;
const T_GO_SCHED: u8 = 14;
const T_GO_PREEMPT: u8 = 15;
const T_GO_SLEEP: u8 = 16;
const T_GO_BLOCK: u8 = 17;
const T_GO_UNBLOCK: u8 = 18;
const T_GO_WAITING: u8 = 19;
const T_GO_BLOCK_NET: u8 = 20;
const T_GO_IN_SYSCALL: u8 = 21;
const T_GO_SYS_CALL: u8 = 22;
const T_GO_SYS_EXIT: u8 = 23;
const T_GO_SYS_BLOCK: u8 = 24;
const T_USER_LOG: u8 = 25;
const T_USER_TASK_CREATE: u8 = 26;
const T_USER_TASK_END: u8 = 27;
const T_USER_REGION: u8 = 28;
const T_FUTILE_WAKEUP: u8 = 29;
const T_TIMER_FIRE: u8 = 30;
const T_CH_MAKE: u8 = 31;
const T_CH_SEND: u8 = 32;
const T_CH_RECV: u8 = 33;
const T_CH_CLOSE: u8 = 34;
const T_SELECT_BEGIN: u8 = 35;
const T_SELECT_END: u8 = 36;
const T_MU_LOCK: u8 = 37;
const T_MU_UNLOCK: u8 = 38;
const T_RW_RLOCK: u8 = 39;
const T_RW_RUNLOCK: u8 = 40;
const T_WG_ADD: u8 = 41;
const T_WG_DONE: u8 = 42;
const T_WG_WAIT: u8 = 43;
const T_COND_WAIT: u8 = 44;
const T_COND_SIGNAL: u8 = 45;
const T_COND_BROADCAST: u8 = 46;

fn put_kind(buf: &mut Vec<u8>, table: &mut StrTableEnc, kind: &EventKind) {
    use EventKind::*;
    match kind {
        ProcStart => buf.push(T_PROC_START),
        ProcStop => buf.push(T_PROC_STOP),
        Gomaxprocs { n } => {
            buf.push(T_GOMAXPROCS);
            put_uvarint(buf, u64::from(*n));
        }
        GcStart => buf.push(T_GC_START),
        GcDone => buf.push(T_GC_DONE),
        GcStwStart => buf.push(T_GC_STW_START),
        GcStwDone => buf.push(T_GC_STW_DONE),
        GcSweepStart => buf.push(T_GC_SWEEP_START),
        GcSweepDone => buf.push(T_GC_SWEEP_DONE),
        HeapAlloc { bytes } => {
            buf.push(T_HEAP_ALLOC);
            put_uvarint(buf, *bytes);
        }
        GoCreate { new_g, name, internal } => {
            buf.push(T_GO_CREATE);
            put_uvarint(buf, new_g.0);
            table.put(buf, *name);
            put_bool(buf, *internal);
        }
        GoStart => buf.push(T_GO_START),
        GoEnd => buf.push(T_GO_END),
        GoStop => buf.push(T_GO_STOP),
        GoSched { trace_stop } => {
            buf.push(T_GO_SCHED);
            put_bool(buf, *trace_stop);
        }
        GoPreempt => buf.push(T_GO_PREEMPT),
        GoSleep => buf.push(T_GO_SLEEP),
        GoBlock { reason, holder_cu, holder } => {
            buf.push(T_GO_BLOCK);
            buf.push(block_reason_tag(*reason));
            put_cu(buf, table, holder_cu.as_ref());
            match holder {
                Some(g) => {
                    buf.push(1);
                    put_uvarint(buf, g.0);
                }
                None => buf.push(0),
            }
        }
        GoUnblock { g } => {
            buf.push(T_GO_UNBLOCK);
            put_uvarint(buf, g.0);
        }
        GoWaiting => buf.push(T_GO_WAITING),
        GoBlockNet => buf.push(T_GO_BLOCK_NET),
        GoInSyscall => buf.push(T_GO_IN_SYSCALL),
        GoSysCall => buf.push(T_GO_SYS_CALL),
        GoSysExit => buf.push(T_GO_SYS_EXIT),
        GoSysBlock => buf.push(T_GO_SYS_BLOCK),
        UserLog { msg } => {
            buf.push(T_USER_LOG);
            put_str(buf, msg);
        }
        UserTaskCreate => buf.push(T_USER_TASK_CREATE),
        UserTaskEnd => buf.push(T_USER_TASK_END),
        UserRegion => buf.push(T_USER_REGION),
        FutileWakeup => buf.push(T_FUTILE_WAKEUP),
        TimerFire { timer } => {
            buf.push(T_TIMER_FIRE);
            put_uvarint(buf, timer.0);
        }
        ChMake { ch, cap } => {
            buf.push(T_CH_MAKE);
            put_uvarint(buf, ch.0);
            put_uvarint(buf, *cap as u64);
        }
        ChSend { ch } => {
            buf.push(T_CH_SEND);
            put_uvarint(buf, ch.0);
        }
        ChRecv { ch, closed } => {
            buf.push(T_CH_RECV);
            put_uvarint(buf, ch.0);
            put_bool(buf, *closed);
        }
        ChClose { ch } => {
            buf.push(T_CH_CLOSE);
            put_uvarint(buf, ch.0);
        }
        SelectBegin { cases, has_default } => {
            buf.push(T_SELECT_BEGIN);
            put_uvarint(buf, cases.len() as u64);
            for (flavor, ch) in cases {
                buf.push(flavor_tag(*flavor));
                put_opt_rid(buf, *ch);
            }
            put_bool(buf, *has_default);
        }
        SelectEnd { chosen, flavor, ch } => {
            buf.push(T_SELECT_END);
            put_uvarint(buf, *chosen as u64);
            buf.push(flavor_tag(*flavor));
            put_opt_rid(buf, *ch);
        }
        MuLock { mu } => {
            buf.push(T_MU_LOCK);
            put_uvarint(buf, mu.0);
        }
        MuUnlock { mu } => {
            buf.push(T_MU_UNLOCK);
            put_uvarint(buf, mu.0);
        }
        RwRLock { mu } => {
            buf.push(T_RW_RLOCK);
            put_uvarint(buf, mu.0);
        }
        RwRUnlock { mu } => {
            buf.push(T_RW_RUNLOCK);
            put_uvarint(buf, mu.0);
        }
        WgAdd { wg, delta, count } => {
            buf.push(T_WG_ADD);
            put_uvarint(buf, wg.0);
            put_ivarint(buf, *delta);
            put_ivarint(buf, *count);
        }
        WgDone { wg, count } => {
            buf.push(T_WG_DONE);
            put_uvarint(buf, wg.0);
            put_ivarint(buf, *count);
        }
        WgWait { wg } => {
            buf.push(T_WG_WAIT);
            put_uvarint(buf, wg.0);
        }
        CondWait { cv } => {
            buf.push(T_COND_WAIT);
            put_uvarint(buf, cv.0);
        }
        CondSignal { cv } => {
            buf.push(T_COND_SIGNAL);
            put_uvarint(buf, cv.0);
        }
        CondBroadcast { cv } => {
            buf.push(T_COND_BROADCAST);
            put_uvarint(buf, cv.0);
        }
    }
}

fn get_kind(r: &mut Reader<'_>, table: &mut StrTableDec) -> io::Result<EventKind> {
    use EventKind::*;
    Ok(match r.u8()? {
        T_PROC_START => ProcStart,
        T_PROC_STOP => ProcStop,
        T_GOMAXPROCS => Gomaxprocs { n: r.uvarint()? as u32 },
        T_GC_START => GcStart,
        T_GC_DONE => GcDone,
        T_GC_STW_START => GcStwStart,
        T_GC_STW_DONE => GcStwDone,
        T_GC_SWEEP_START => GcSweepStart,
        T_GC_SWEEP_DONE => GcSweepDone,
        T_HEAP_ALLOC => HeapAlloc { bytes: r.uvarint()? },
        T_GO_CREATE => {
            GoCreate { new_g: Gid(r.uvarint()?), name: table.get(r)?, internal: r.bool()? }
        }
        T_GO_START => GoStart,
        T_GO_END => GoEnd,
        T_GO_STOP => GoStop,
        T_GO_SCHED => GoSched { trace_stop: r.bool()? },
        T_GO_PREEMPT => GoPreempt,
        T_GO_SLEEP => GoSleep,
        T_GO_BLOCK => GoBlock {
            reason: block_reason_from(r.u8()?)?,
            holder_cu: get_cu(r, table)?,
            holder: match r.bool()? {
                true => Some(Gid(r.uvarint()?)),
                false => None,
            },
        },
        T_GO_UNBLOCK => GoUnblock { g: Gid(r.uvarint()?) },
        T_GO_WAITING => GoWaiting,
        T_GO_BLOCK_NET => GoBlockNet,
        T_GO_IN_SYSCALL => GoInSyscall,
        T_GO_SYS_CALL => GoSysCall,
        T_GO_SYS_EXIT => GoSysExit,
        T_GO_SYS_BLOCK => GoSysBlock,
        T_USER_LOG => UserLog { msg: r.str()?.to_string() },
        T_USER_TASK_CREATE => UserTaskCreate,
        T_USER_TASK_END => UserTaskEnd,
        T_USER_REGION => UserRegion,
        T_FUTILE_WAKEUP => FutileWakeup,
        T_TIMER_FIRE => TimerFire { timer: RId(r.uvarint()?) },
        T_CH_MAKE => ChMake { ch: RId(r.uvarint()?), cap: r.uvarint()? as usize },
        T_CH_SEND => ChSend { ch: RId(r.uvarint()?) },
        T_CH_RECV => ChRecv { ch: RId(r.uvarint()?), closed: r.bool()? },
        T_CH_CLOSE => ChClose { ch: RId(r.uvarint()?) },
        T_SELECT_BEGIN => {
            let n = r.uvarint()? as usize;
            if n > r.remaining() {
                return Err(err("select case count exceeds payload"));
            }
            let mut cases = Vec::with_capacity(n);
            for _ in 0..n {
                let flavor = flavor_from(r.u8()?)?;
                cases.push((flavor, get_opt_rid(r)?));
            }
            SelectBegin { cases, has_default: r.bool()? }
        }
        T_SELECT_END => SelectEnd {
            chosen: r.uvarint()? as usize,
            flavor: flavor_from(r.u8()?)?,
            ch: get_opt_rid(r)?,
        },
        T_MU_LOCK => MuLock { mu: RId(r.uvarint()?) },
        T_MU_UNLOCK => MuUnlock { mu: RId(r.uvarint()?) },
        T_RW_RLOCK => RwRLock { mu: RId(r.uvarint()?) },
        T_RW_RUNLOCK => RwRUnlock { mu: RId(r.uvarint()?) },
        T_WG_ADD => WgAdd { wg: RId(r.uvarint()?), delta: r.ivarint()?, count: r.ivarint()? },
        T_WG_DONE => WgDone { wg: RId(r.uvarint()?), count: r.ivarint()? },
        T_WG_WAIT => WgWait { wg: RId(r.uvarint()?) },
        T_COND_WAIT => CondWait { cv: RId(r.uvarint()?) },
        T_COND_SIGNAL => CondSignal { cv: RId(r.uvarint()?) },
        T_COND_BROADCAST => CondBroadcast { cv: RId(r.uvarint()?) },
        other => return Err(err(&format!("bad event tag {other}"))),
    })
}

/// Append `events` in the delta wire format: a varint count followed by
/// one record per event (`[kind tag][Δseq][Δts][Δg][payload][cu?]`).
pub fn encode_events(events: &[Event], buf: &mut Vec<u8>) {
    put_uvarint(buf, events.len() as u64);
    let mut table = StrTableEnc::default();
    let (mut prev_seq, mut prev_ts, mut prev_g) = (0u64, 0u64, 0u64);
    for ev in events {
        put_kind(buf, &mut table, &ev.kind);
        put_ivarint(buf, ev.seq.wrapping_sub(prev_seq) as i64);
        put_ivarint(buf, ev.ts.0.wrapping_sub(prev_ts) as i64);
        put_ivarint(buf, ev.g.0.wrapping_sub(prev_g) as i64);
        put_cu(buf, &mut table, ev.cu.as_ref());
        (prev_seq, prev_ts, prev_g) = (ev.seq, ev.ts.0, ev.g.0);
    }
}

/// Decode an event sequence written by [`encode_events`]. The returned
/// vector comes from the [`crate::recycle`] pool, so callers that hand
/// it to [`crate::Ect::from_events`] keep the recycling loop closed.
pub fn decode_events(r: &mut Reader<'_>) -> io::Result<Vec<Event>> {
    let n = r.uvarint()? as usize;
    // Each event costs at least 4 bytes on the wire; a count that
    // cannot fit the remaining payload is corrupt, not an allocation.
    if n > r.remaining() {
        return Err(err("event count exceeds payload"));
    }
    let mut table = StrTableDec::default();
    let mut events = crate::recycle::take_buffer();
    events.reserve(n);
    let (mut prev_seq, mut prev_ts, mut prev_g) = (0u64, 0u64, 0u64);
    for _ in 0..n {
        let kind = get_kind(r, &mut table)?;
        let seq = prev_seq.wrapping_add(r.ivarint()? as u64);
        let ts = prev_ts.wrapping_add(r.ivarint()? as u64);
        let g = prev_g.wrapping_add(r.ivarint()? as u64);
        let cu = get_cu(r, &mut table)?;
        (prev_seq, prev_ts, prev_g) = (seq, ts, g);
        events.push(Event { seq, ts: VTime(ts), g: Gid(g), kind, cu });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(Reader::new(&buf).uvarint().unwrap(), v);
        }
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(Reader::new(&buf).ivarint().unwrap(), v);
        }
    }

    #[test]
    fn truncated_varint_is_invalid_data() {
        let buf = [0x80u8, 0x80];
        assert!(Reader::new(&buf).uvarint().is_err());
        // 11 continuation bytes can never be a valid u64.
        let long = [0xffu8; 11];
        assert!(Reader::new(&long).uvarint().is_err());
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for v in [0.0f64, -0.0, 0.5, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            assert_eq!(Reader::new(&buf).f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn events_roundtrip_with_interned_strings() {
        let cu = Cu::new("wire/test.rs", 42, CuKind::Send);
        let events = vec![
            Event { seq: 0, ts: VTime(0), g: Gid(1), kind: EventKind::GoStart, cu: None },
            Event {
                seq: 1,
                ts: VTime(100),
                g: Gid(1),
                kind: EventKind::GoCreate { new_g: Gid(2), name: "worker".into(), internal: false },
                cu: Some(Cu::new("wire/test.rs", 7, CuKind::Go)),
            },
            Event {
                seq: 2,
                ts: VTime(100),
                g: Gid(2),
                kind: EventKind::ChSend { ch: RId(3) },
                cu: Some(cu),
            },
            Event {
                seq: 3,
                ts: VTime(250),
                g: Gid(2),
                kind: EventKind::SelectBegin {
                    cases: vec![(SelCaseFlavor::Recv, Some(RId(3))), (SelCaseFlavor::Send, None)],
                    has_default: true,
                },
                cu: Some(Cu::new("wire/test.rs", 42, CuKind::Select)),
            },
            Event {
                seq: 4,
                ts: VTime(260),
                g: Gid(2),
                kind: EventKind::SelectEnd {
                    chosen: usize::MAX,
                    flavor: SelCaseFlavor::Default,
                    ch: None,
                },
                cu: None,
            },
            Event {
                seq: 5,
                ts: VTime(300),
                g: Gid(1),
                kind: EventKind::WgAdd { wg: RId(9), delta: -2, count: -1 },
                cu: None,
            },
        ];
        let mut buf = Vec::new();
        encode_events(&events, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_events(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back, events);
        // The repeated file path travels exactly once; later CUs refer
        // to it by table index.
        let path = b"wire/test.rs";
        let copies = buf.windows(path.len()).filter(|w| w == path).count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn empty_event_buffer_roundtrips() {
        let mut buf = Vec::new();
        encode_events(&[], &mut buf);
        let back = decode_events(&mut Reader::new(&buf)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_event_payload_is_rejected() {
        // A count claiming more events than bytes remain.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1_000_000);
        assert!(decode_events(&mut Reader::new(&buf)).is_err());
        // A bad kind tag.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1);
        buf.extend_from_slice(&[0xf7, 0, 0, 0, 0]);
        assert!(decode_events(&mut Reader::new(&buf)).is_err());
    }
}
