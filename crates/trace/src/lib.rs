//! # goat-trace — execution concurrency traces (ECT)
//!
//! GoAT enhances Go's standard execution tracer with *concurrency events*
//! so that a program run produces an **execution concurrency trace**: a
//! totally ordered sequence of events, each corresponding to exactly one
//! source statement, describing everything the concurrency primitives did
//! (paper §III-D).
//!
//! This crate defines:
//!
//! * the event vocabulary ([`event::EventKind`]) — the standard tracer's
//!   categories of Table II (process, GC/mem, goroutine, syscall, user,
//!   misc) plus GoAT's concurrency extension (channel / mutex / wait-group
//!   / condition-variable / select events, each carrying its CU source
//!   location);
//! * the trace container ([`ect::Ect`]) with queries, serialization, and
//!   well-formedness checking;
//! * goroutine trees ([`gtree::GTree`]) built from an ECT, with the
//!   paper's application-level goroutine filter (§III-E).

#![warn(missing_docs)]

pub mod ect;
pub mod event;
pub mod gtree;
pub mod recycle;
pub mod stats;
pub mod tracebuf;
pub mod wire;

pub use ect::{Ect, WellFormedError};
pub use event::{BlockReason, Event, EventCategory, EventKind, Gid, RId, SelCaseFlavor, VTime};
pub use gtree::{GNode, GTree, GTreeBuilder};
pub use recycle::{recycle_buffer, take_buffer, TracePoolStats};
pub use stats::{GoroutineProfile, TraceStats};
pub use tracebuf::{schedule_fingerprint, TraceBuf};
