//! The ECT event vocabulary.
//!
//! Mirrors the Go execution tracer's event families (paper Table II) and
//! adds GoAT's concurrency extension events. Every event records the
//! emitting goroutine, a total-order sequence number, a virtual timestamp
//! and — for concurrency events — the CU source location it corresponds
//! to (each event "corresponds to exactly one statement in the source
//! code").

use goat_model::{Cu, Istr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Goroutine identifier. The main goroutine is always [`Gid::MAIN`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Gid(pub u64);

impl Gid {
    /// The main goroutine (the one executing the program's `main`).
    pub const MAIN: Gid = Gid(1);
    /// Pseudo-goroutine id used for events emitted by the runtime itself
    /// (timer firings, bootstrap); analogous to Go's g0.
    pub const RUNTIME: Gid = Gid(0);
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Identifier of a traced resource (channel, mutex, wait-group, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RId(pub u64);

impl fmt::Display for RId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Virtual (logical) time in nanoseconds.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VTime(pub u64);

impl VTime {
    /// Zero time.
    pub const ZERO: VTime = VTime(0);

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        VTime(ns)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        VTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub fn from_secs(s: u64) -> Self {
        VTime(s * 1_000_000_000)
    }

    /// Nanosecond value.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration in nanoseconds.
    pub fn saturating_add(self, ns: u64) -> VTime {
        VTime(self.0.saturating_add(ns))
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

/// Why a goroutine blocked (payload of [`EventKind::GoBlock`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockReason {
    /// Blocked on a channel send.
    Send,
    /// Blocked on a channel receive.
    Recv,
    /// Blocked in a select with no ready case and no default.
    Select,
    /// Blocked acquiring a mutex or rw-lock.
    Sync,
    /// Blocked in a condition-variable wait.
    Cond,
    /// Blocked in a wait-group wait.
    WaitGroup,
    /// Blocked in a virtual-time sleep.
    Sleep,
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockReason::Send => "send",
            BlockReason::Recv => "recv",
            BlockReason::Select => "select",
            BlockReason::Sync => "sync",
            BlockReason::Cond => "cond",
            BlockReason::WaitGroup => "waitgroup",
            BlockReason::Sleep => "sleep",
        };
        f.write_str(s)
    }
}

/// Flavour of the select case that fired (payload of `SelectEnd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelCaseFlavor {
    /// A send case fired.
    Send,
    /// A receive case fired.
    Recv,
    /// The default case fired (non-blocking select).
    Default,
}

/// Event families of the Go execution tracer (paper Table II), plus
/// GoAT's concurrency extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventCategory {
    /// Process/thread start and stop.
    Process,
    /// Garbage collection and memory operation events.
    GcMem,
    /// Goroutine lifecycle events: create, block, start, stop, end, …
    Goroutine,
    /// Interactions with system calls.
    Syscall,
    /// User-annotated regions and tasks.
    User,
    /// System-related events such as futile wakeups or timers.
    Misc,
    /// GoAT's concurrency-primitive events (the tracer enhancement).
    Concurrency,
}

/// One event kind of the ECT vocabulary.
///
/// The first six families reproduce the standard tracer's alphabet; the
/// `Concurrency` family is GoAT's enhancement carrying per-primitive
/// semantics. Events that complete a potentially blocking operation (e.g.
/// [`EventKind::ChSend`]) are emitted *after* the operation finishes;
/// whether the goroutine blocked first is derivable from the immediately
/// preceding [`EventKind::GoBlock`] in that goroutine's event sequence,
/// and who it woke is derivable from the [`EventKind::GoUnblock`] events
/// it emitted just before the completion event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    // ---- Process ----
    /// A logical processor starts running goroutines.
    ProcStart,
    /// A logical processor stops.
    ProcStop,
    /// GOMAXPROCS-style parallelism announcement.
    Gomaxprocs {
        /// Number of logical processors.
        n: u32,
    },

    // ---- GC / memory ----
    /// Garbage collection cycle starts (synthetic in this runtime: the
    /// scheduler emits periodic GC pairs so traces carry the category).
    GcStart,
    /// Garbage collection cycle ends.
    GcDone,
    /// Stop-the-world phase begins (vocabulary fidelity; not emitted).
    GcStwStart,
    /// Stop-the-world phase ends (vocabulary fidelity; not emitted).
    GcStwDone,
    /// Concurrent sweep begins (vocabulary fidelity; not emitted).
    GcSweepStart,
    /// Concurrent sweep ends (vocabulary fidelity; not emitted).
    GcSweepDone,
    /// Heap allocation counter update.
    HeapAlloc {
        /// Total bytes allocated.
        bytes: u64,
    },

    // ---- Goroutine lifecycle ----
    /// `g` created goroutine `new_g`; `cu` is the `go` statement site.
    GoCreate {
        /// The newly created goroutine.
        new_g: Gid,
        /// Human-readable name of the new goroutine (interned: repeated
        /// spawns of the same site share one allocation).
        name: Istr,
        /// True for runtime-internal goroutines (watchdog, tracer), which
        /// the application-level filter removes.
        internal: bool,
    },
    /// Goroutine starts running on a processor.
    GoStart,
    /// Goroutine finished (returned from its function).
    GoEnd,
    /// Goroutine stopped without finishing (run aborted).
    GoStop,
    /// Goroutine yielded the processor (`runtime.Gosched()`).
    ///
    /// The main goroutine's final event in a successful execution is a
    /// `GoSched` with `trace_stop = true` (the `runtime.traceStop`
    /// hand-over described in §III-E.1).
    GoSched {
        /// True for the final trace-stopping yield of the main goroutine.
        trace_stop: bool,
    },
    /// Goroutine was preempted by an injected perturbation yield.
    GoPreempt,
    /// Goroutine went to sleep (virtual time).
    GoSleep,
    /// Goroutine blocked; the payload says why, and for lock blocking the
    /// acquisition site of the current holder is recorded so Req3's
    /// *blocking* requirement can be attributed.
    GoBlock {
        /// Why the goroutine blocked.
        reason: BlockReason,
        /// CU where the current holder acquired the contended resource.
        holder_cu: Option<Cu>,
        /// The goroutine currently holding the contended resource.
        holder: Option<Gid>,
    },
    /// The emitting goroutine made `g` runnable again.
    GoUnblock {
        /// The goroutine woken up.
        g: Gid,
    },
    /// Goroutine is waiting (emitted for goroutines parked at trace start).
    GoWaiting,
    /// Goroutine blocked on network I/O (vocabulary fidelity; the
    /// virtual runtime has no real network, so this is never emitted).
    GoBlockNet,
    /// Goroutine recorded as in-syscall at trace start (fidelity).
    GoInSyscall,

    // ---- Syscall ----
    /// Goroutine entered a system call (unused by the virtual runtime,
    /// kept for vocabulary fidelity).
    GoSysCall,
    /// Goroutine exited a system call.
    GoSysExit,
    /// Goroutine blocked in a system call.
    GoSysBlock,

    // ---- User ----
    /// User-annotated log message.
    UserLog {
        /// Free-form message.
        msg: String,
    },
    /// User task creation (bounded tracing regions).
    UserTaskCreate,
    /// User task end.
    UserTaskEnd,
    /// User region marker.
    UserRegion,

    // ---- Misc ----
    /// A wakeup that found nothing to do.
    FutileWakeup,
    /// A virtual timer fired.
    TimerFire {
        /// The timer's resource id.
        timer: RId,
    },

    // ---- Concurrency extension (GoAT) ----
    /// Channel created.
    ChMake {
        /// Channel id.
        ch: RId,
        /// Buffer capacity (0 = unbuffered/rendezvous).
        cap: usize,
    },
    /// Channel send completed.
    ChSend {
        /// Channel id.
        ch: RId,
    },
    /// Channel receive completed.
    ChRecv {
        /// Channel id.
        ch: RId,
        /// True if the receive returned because the channel was closed
        /// (and drained), i.e. the zero-value/`None` path.
        closed: bool,
    },
    /// Channel closed.
    ChClose {
        /// Channel id.
        ch: RId,
    },
    /// A select statement started evaluating its cases.
    ///
    /// The per-case descriptors are how the dynamic side "obtains the
    /// cases of each select statement at runtime" for Req2.
    SelectBegin {
        /// Flavour and channel of every channel case, in case order.
        cases: Vec<(SelCaseFlavor, Option<RId>)>,
        /// Whether the select has a default case.
        has_default: bool,
    },
    /// A select statement committed to a case.
    SelectEnd {
        /// Index of the chosen channel case, or `usize::MAX` for default.
        chosen: usize,
        /// Flavour of the chosen case.
        flavor: SelCaseFlavor,
        /// Channel of the chosen case (none for default).
        ch: Option<RId>,
    },
    /// Mutex (or rw-lock write side) acquired.
    MuLock {
        /// Mutex id.
        mu: RId,
    },
    /// Mutex (or rw-lock write side) released.
    MuUnlock {
        /// Mutex id.
        mu: RId,
    },
    /// RwLock read side acquired.
    RwRLock {
        /// Lock id.
        mu: RId,
    },
    /// RwLock read side released.
    RwRUnlock {
        /// Lock id.
        mu: RId,
    },
    /// WaitGroup counter add.
    WgAdd {
        /// Wait-group id.
        wg: RId,
        /// Signed delta applied.
        delta: i64,
        /// Counter value after the add.
        count: i64,
    },
    /// WaitGroup done (counter decrement).
    WgDone {
        /// Wait-group id.
        wg: RId,
        /// Counter value after the decrement.
        count: i64,
    },
    /// WaitGroup wait completed.
    WgWait {
        /// Wait-group id.
        wg: RId,
    },
    /// Condition-variable wait completed (woken and lock re-acquired).
    CondWait {
        /// Condition-variable id.
        cv: RId,
    },
    /// Condition-variable signal.
    CondSignal {
        /// Condition-variable id.
        cv: RId,
    },
    /// Condition-variable broadcast.
    CondBroadcast {
        /// Condition-variable id.
        cv: RId,
    },
}

impl EventKind {
    /// The Table II family this event belongs to.
    pub fn category(&self) -> EventCategory {
        use EventKind::*;
        match self {
            ProcStart | ProcStop | Gomaxprocs { .. } => EventCategory::Process,
            GcStart
            | GcDone
            | GcStwStart
            | GcStwDone
            | GcSweepStart
            | GcSweepDone
            | HeapAlloc { .. } => EventCategory::GcMem,
            GoCreate { .. }
            | GoStart
            | GoEnd
            | GoStop
            | GoSched { .. }
            | GoPreempt
            | GoSleep
            | GoBlock { .. }
            | GoUnblock { .. }
            | GoWaiting
            | GoBlockNet
            | GoInSyscall => EventCategory::Goroutine,
            GoSysCall | GoSysExit | GoSysBlock => EventCategory::Syscall,
            UserLog { .. } | UserTaskCreate | UserTaskEnd | UserRegion => EventCategory::User,
            FutileWakeup | TimerFire { .. } => EventCategory::Misc,
            ChMake { .. }
            | ChSend { .. }
            | ChRecv { .. }
            | ChClose { .. }
            | SelectBegin { .. }
            | SelectEnd { .. }
            | MuLock { .. }
            | MuUnlock { .. }
            | RwRLock { .. }
            | RwRUnlock { .. }
            | WgAdd { .. }
            | WgDone { .. }
            | WgWait { .. }
            | CondWait { .. }
            | CondSignal { .. }
            | CondBroadcast { .. } => EventCategory::Concurrency,
        }
    }

    /// Short mnemonic for rendering interleavings.
    pub fn mnemonic(&self) -> &'static str {
        use EventKind::*;
        match self {
            ProcStart => "ProcStart",
            ProcStop => "ProcStop",
            Gomaxprocs { .. } => "Gomaxprocs",
            GcStart => "GCStart",
            GcDone => "GCDone",
            GcStwStart => "GCSTWStart",
            GcStwDone => "GCSTWDone",
            GcSweepStart => "GCSweepStart",
            GcSweepDone => "GCSweepDone",
            HeapAlloc { .. } => "HeapAlloc",
            GoCreate { .. } => "GoCreate",
            GoStart => "GoStart",
            GoEnd => "GoEnd",
            GoStop => "GoStop",
            GoSched { .. } => "GoSched",
            GoPreempt => "GoPreempt",
            GoSleep => "GoSleep",
            GoBlock { .. } => "GoBlock",
            GoUnblock { .. } => "GoUnblock",
            GoWaiting => "GoWaiting",
            GoBlockNet => "GoBlockNet",
            GoInSyscall => "GoInSyscall",
            GoSysCall => "GoSysCall",
            GoSysExit => "GoSysExit",
            GoSysBlock => "GoSysBlock",
            UserLog { .. } => "UserLog",
            UserTaskCreate => "UserTaskCreate",
            UserTaskEnd => "UserTaskEnd",
            UserRegion => "UserRegion",
            FutileWakeup => "FutileWakeup",
            TimerFire { .. } => "TimerFire",
            ChMake { .. } => "ChMake",
            ChSend { .. } => "ChSend",
            ChRecv { .. } => "ChRecv",
            ChClose { .. } => "ChClose",
            SelectBegin { .. } => "SelectBegin",
            SelectEnd { .. } => "SelectEnd",
            MuLock { .. } => "MuLock",
            MuUnlock { .. } => "MuUnlock",
            RwRLock { .. } => "RwRLock",
            RwRUnlock { .. } => "RwRUnlock",
            WgAdd { .. } => "WgAdd",
            WgDone { .. } => "WgDone",
            WgWait { .. } => "WgWait",
            CondWait { .. } => "CondWait",
            CondSignal { .. } => "CondSignal",
            CondBroadcast { .. } => "CondBroadcast",
        }
    }

    /// Does this event complete a (potentially blocking) concurrency
    /// operation? Such events are the anchors of coverage extraction.
    pub fn is_op_completion(&self) -> bool {
        use EventKind::*;
        matches!(
            self,
            ChSend { .. }
                | ChRecv { .. }
                | ChClose { .. }
                | SelectEnd { .. }
                | MuLock { .. }
                | MuUnlock { .. }
                | RwRLock { .. }
                | RwRUnlock { .. }
                | WgAdd { .. }
                | WgDone { .. }
                | WgWait { .. }
                | CondWait { .. }
                | CondSignal { .. }
                | CondBroadcast { .. }
        )
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use EventKind::*;
        match self {
            GoCreate { new_g, name, .. } => write!(f, "GoCreate({new_g} \"{name}\")"),
            GoSched { trace_stop: true } => write!(f, "GoSched(traceStop)"),
            GoBlock { reason, .. } => write!(f, "GoBlock({reason})"),
            GoUnblock { g } => write!(f, "GoUnblock({g})"),
            ChSend { ch } => write!(f, "ChSend({ch})"),
            ChRecv { ch, closed } => {
                write!(f, "ChRecv({ch}{})", if *closed { ", closed" } else { "" })
            }
            ChClose { ch } => write!(f, "ChClose({ch})"),
            SelectEnd { chosen, flavor, .. } if *chosen == usize::MAX => {
                write!(f, "SelectEnd(default/{flavor:?})")
            }
            SelectEnd { chosen, flavor, .. } => write!(f, "SelectEnd(case{chosen}/{flavor:?})"),
            MuLock { mu } => write!(f, "MuLock({mu})"),
            MuUnlock { mu } => write!(f, "MuUnlock({mu})"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// One entry of an execution concurrency trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Position in the total order (0-based, strictly increasing).
    pub seq: u64,
    /// Virtual timestamp.
    pub ts: VTime,
    /// The goroutine that emitted the event.
    pub g: Gid,
    /// What happened.
    pub kind: EventKind,
    /// The CU source location this event corresponds to, when applicable.
    pub cu: Option<Cu>,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<5} {:>10} {:<5} {}", self.seq, self.ts, self.g.to_string(), self.kind)?;
        if let Some(cu) = &self.cu {
            write!(f, "  @ {cu}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_vocabulary() {
        // A representative of each family maps to the right category.
        assert_eq!(EventKind::ProcStart.category(), EventCategory::Process);
        assert_eq!(EventKind::GcStart.category(), EventCategory::GcMem);
        assert_eq!(EventKind::GoEnd.category(), EventCategory::Goroutine);
        assert_eq!(EventKind::GoSysCall.category(), EventCategory::Syscall);
        assert_eq!(EventKind::UserTaskEnd.category(), EventCategory::User);
        assert_eq!(EventKind::FutileWakeup.category(), EventCategory::Misc);
        assert_eq!(EventKind::ChSend { ch: RId(1) }.category(), EventCategory::Concurrency);
    }

    #[test]
    fn vtime_constructors_agree() {
        assert_eq!(VTime::from_millis(1), VTime::from_nanos(1_000_000));
        assert_eq!(VTime::from_secs(1), VTime::from_millis(1000));
        assert_eq!(VTime::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn display_is_never_empty() {
        let kinds: Vec<EventKind> = vec![
            EventKind::GoStart,
            EventKind::GoSched { trace_stop: true },
            EventKind::GoBlock { reason: BlockReason::Send, holder_cu: None, holder: None },
            EventKind::SelectEnd { chosen: usize::MAX, flavor: SelCaseFlavor::Default, ch: None },
            EventKind::ChRecv { ch: RId(3), closed: true },
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
            assert!(!k.mnemonic().is_empty());
        }
    }

    #[test]
    fn event_roundtrips_through_json() {
        let ev = Event {
            seq: 7,
            ts: VTime::from_millis(3),
            g: Gid(2),
            kind: EventKind::GoCreate { new_g: Gid(3), name: "worker".into(), internal: false },
            cu: Some(goat_model::Cu::new("k.rs", 12, goat_model::CuKind::Go)),
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn vocabulary_covers_all_tracer_families() {
        // The standard tracer's alphabet is ~49 events across six
        // families (paper Table II); this vocabulary mirrors the
        // families and adds the concurrency extension. Guard the shape:
        // every family must be represented.
        use EventKind::*;
        let representatives: Vec<EventKind> = vec![
            ProcStart,
            GcStwStart,
            GcSweepDone,
            GoBlockNet,
            GoInSyscall,
            GoSysBlock,
            UserRegion,
            FutileWakeup,
            CondBroadcast { cv: RId(1) },
        ];
        let mut families: std::collections::BTreeSet<String> = Default::default();
        for k in &representatives {
            families.insert(format!("{:?}", k.category()));
            assert!(!k.mnemonic().is_empty());
        }
        assert_eq!(families.len(), 7, "all seven families represented");
    }

    #[test]
    fn op_completion_classification() {
        assert!(EventKind::MuLock { mu: RId(1) }.is_op_completion());
        assert!(!EventKind::GoStart.is_op_completion());
        assert!(!EventKind::SelectBegin { cases: vec![], has_default: false }.is_op_completion());
    }
}
