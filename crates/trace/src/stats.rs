//! Trace statistics: aggregate views of an ECT.
//!
//! The standard Go tracer feeds visualizers like `pprof` that summarise
//! goroutine latency and blocking behaviour (paper §III-D). This module
//! provides the equivalent aggregations over an ECT: event counts per
//! Table II category, per-goroutine blocking profiles with virtual-time
//! accounting, and per-resource contention counts.

use crate::ect::Ect;
use crate::event::{BlockReason, EventCategory, EventKind, Gid, RId, VTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Event counts per Table II category.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCounts {
    /// Counts keyed by category debug name.
    counts: BTreeMap<String, usize>,
}

impl CategoryCounts {
    /// Count of one category.
    pub fn get(&self, cat: EventCategory) -> usize {
        self.counts.get(&format!("{cat:?}")).copied().unwrap_or(0)
    }

    /// Total events counted.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

/// Blocking profile of one goroutine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GoroutineProfile {
    /// Events emitted by this goroutine.
    pub events: usize,
    /// Times the goroutine blocked, by reason.
    pub blocks: BTreeMap<String, usize>,
    /// Total virtual time spent blocked.
    pub blocked_vtime: VTime,
    /// Virtual time of the goroutine's first event.
    pub first_seen: VTime,
    /// Virtual time of the goroutine's last event.
    pub last_seen: VTime,
    /// Did the goroutine finish (`GoEnd`, or main's trace-stop yield)?
    pub finished: bool,
}

impl GoroutineProfile {
    /// Total number of blocking episodes.
    pub fn total_blocks(&self) -> usize {
        self.blocks.values().sum()
    }
}

/// Full statistics of one trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Event counts per tracer category.
    pub categories: CategoryCounts,
    /// Per-goroutine profiles.
    pub goroutines: BTreeMap<Gid, GoroutineProfile>,
    /// Blocking episodes per contended resource (from lock-block events).
    pub contended_resources: BTreeMap<RId, usize>,
    /// Total injected/native preemption yields observed.
    pub preemptions: usize,
    /// Trace duration in virtual time.
    pub duration: VTime,
    /// Goroutines created with the internal flag (watchdog/tracer).
    pub internal: std::collections::BTreeSet<Gid>,
}

impl TraceStats {
    /// Compute statistics for a trace in one pass.
    pub fn of(ect: &Ect) -> TraceStats {
        let mut stats = TraceStats::default();
        let mut block_start: BTreeMap<Gid, (VTime, BlockReason)> = BTreeMap::new();
        for ev in ect.iter() {
            *stats.categories.counts.entry(format!("{:?}", ev.kind.category())).or_default() += 1;
            stats.duration = ev.ts;

            let profile = stats
                .goroutines
                .entry(ev.g)
                .or_insert_with(|| GoroutineProfile { first_seen: ev.ts, ..Default::default() });
            profile.events += 1;
            profile.last_seen = ev.ts;
            match &ev.kind {
                EventKind::GoBlock { reason, .. } => {
                    *profile.blocks.entry(reason.to_string()).or_default() += 1;
                    block_start.insert(ev.g, (ev.ts, *reason));
                }
                EventKind::GoEnd => profile.finished = true,
                EventKind::GoSched { trace_stop: true } => profile.finished = true,
                EventKind::GoPreempt => stats.preemptions += 1,
                EventKind::GoCreate { new_g, internal: true, .. } => {
                    stats.internal.insert(*new_g);
                }
                _ => {}
            }
            // Any later event by a blocked goroutine means it resumed.
            if !matches!(ev.kind, EventKind::GoBlock { .. }) {
                if let Some((start, _)) = block_start.remove(&ev.g) {
                    let prof = stats.goroutines.get_mut(&ev.g).expect("profile exists");
                    prof.blocked_vtime =
                        VTime(prof.blocked_vtime.0 + ev.ts.0.saturating_sub(start.0));
                }
            }
        }
        // Goroutines still blocked at trace end: count the open episode.
        for (g, (start, _)) in block_start {
            if let Some(prof) = stats.goroutines.get_mut(&g) {
                prof.blocked_vtime =
                    VTime(prof.blocked_vtime.0 + stats.duration.0.saturating_sub(start.0));
            }
        }
        // Contention per resource from lock/rw completion events after a
        // block by the same goroutine.
        let mut last_block: BTreeMap<Gid, bool> = BTreeMap::new();
        for ev in ect.iter() {
            match &ev.kind {
                EventKind::GoBlock { reason: BlockReason::Sync, .. } => {
                    last_block.insert(ev.g, true);
                }
                EventKind::MuLock { mu } | EventKind::RwRLock { mu } => {
                    if last_block.remove(&ev.g).unwrap_or(false) {
                        *stats.contended_resources.entry(*mu).or_default() += 1;
                    }
                }
                _ => {
                    last_block.remove(&ev.g);
                }
            }
        }
        stats
    }

    /// Application goroutines that never finished (the runtime
    /// pseudo-goroutine and internal goroutines are excluded).
    pub fn unfinished(&self) -> Vec<Gid> {
        self.goroutines
            .iter()
            .filter(|(g, p)| !p.finished && **g != Gid::RUNTIME && !self.internal.contains(g))
            .map(|(g, _)| *g)
            .collect()
    }

    /// The goroutine that spent the most virtual time blocked.
    pub fn most_blocked(&self) -> Option<(Gid, VTime)> {
        self.goroutines
            .iter()
            .max_by_key(|(_, p)| p.blocked_vtime)
            .map(|(g, p)| (*g, p.blocked_vtime))
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events over {}, {} preemption(s)",
            self.categories.total(),
            self.duration,
            self.preemptions
        )?;
        writeln!(f, "{:<6} {:>7} {:>8} {:>12}  blocks", "gid", "events", "done", "blocked")?;
        for (g, p) in &self.goroutines {
            let blocks: Vec<String> = p.blocks.iter().map(|(r, n)| format!("{r}×{n}")).collect();
            writeln!(
                f,
                "{:<6} {:>7} {:>8} {:>12}  {}",
                g.to_string(),
                p.events,
                if p.finished { "yes" } else { "NO" },
                p.blocked_vtime.to_string(),
                blocks.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(seq: u64, ts: u64, g: u64, kind: EventKind) -> Event {
        Event { seq, ts: VTime(ts), g: Gid(g), kind, cu: None }
    }

    fn sample() -> Ect {
        vec![
            ev(0, 0, 1, EventKind::GoStart),
            ev(1, 10, 1, EventKind::GoCreate { new_g: Gid(2), name: "w".into(), internal: false }),
            ev(2, 20, 2, EventKind::GoStart),
            ev(
                3,
                30,
                2,
                EventKind::GoBlock {
                    reason: BlockReason::Sync,
                    holder_cu: None,
                    holder: Some(Gid(1)),
                },
            ),
            ev(4, 40, 1, EventKind::GoUnblock { g: Gid(2) }),
            ev(5, 50, 2, EventKind::MuLock { mu: RId(9) }),
            ev(6, 60, 2, EventKind::GoEnd),
            ev(7, 70, 1, EventKind::GoSched { trace_stop: true }),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn counts_categories_and_duration() {
        let stats = TraceStats::of(&sample());
        assert_eq!(stats.categories.total(), 8);
        assert_eq!(stats.categories.get(EventCategory::Concurrency), 1);
        assert!(stats.categories.get(EventCategory::Goroutine) >= 6);
        assert_eq!(stats.duration, VTime(70));
    }

    #[test]
    fn per_goroutine_profiles() {
        let stats = TraceStats::of(&sample());
        let g2 = &stats.goroutines[&Gid(2)];
        assert_eq!(g2.events, 4);
        assert!(g2.finished);
        assert_eq!(g2.total_blocks(), 1);
        // blocked from ts=30 until its next event at ts=50
        assert_eq!(g2.blocked_vtime, VTime(20));
        let g1 = &stats.goroutines[&Gid(1)];
        assert!(g1.finished, "main finished via trace-stop yield");
        assert_eq!(g1.total_blocks(), 0);
        assert!(stats.unfinished().is_empty());
    }

    #[test]
    fn contention_attributed_to_the_mutex() {
        let stats = TraceStats::of(&sample());
        assert_eq!(stats.contended_resources.get(&RId(9)), Some(&1));
        assert_eq!(stats.most_blocked(), Some((Gid(2), VTime(20))));
    }

    #[test]
    fn leaked_goroutine_counts_open_block_episode() {
        let ect: Ect = vec![
            ev(0, 0, 1, EventKind::GoStart),
            ev(1, 10, 1, EventKind::GoCreate { new_g: Gid(2), name: "l".into(), internal: false }),
            ev(2, 20, 2, EventKind::GoStart),
            ev(
                3,
                30,
                2,
                EventKind::GoBlock { reason: BlockReason::Recv, holder_cu: None, holder: None },
            ),
            ev(4, 100, 1, EventKind::GoSched { trace_stop: true }),
        ]
        .into_iter()
        .collect();
        let stats = TraceStats::of(&ect);
        assert_eq!(stats.unfinished(), vec![Gid(2)]);
        assert_eq!(stats.goroutines[&Gid(2)].blocked_vtime, VTime(70));
    }

    #[test]
    fn display_marks_unfinished_goroutines() {
        let stats = TraceStats::of(&sample());
        let text = stats.to_string();
        assert!(text.contains("G1"));
        assert!(text.contains("sync×1"));
    }
}
