//! Per-run trace buffer with out-of-lock append and an online schedule
//! fingerprint.
//!
//! Historically every ECT event was appended while holding the global
//! scheduler lock, so trace recording inflated the scheduler's critical
//! sections. Under the single-token discipline that lock is unnecessary
//! for ordering: only the current token holder emits user events, and
//! every handoff releases the token *after* the holder's emissions, so
//! appends from successive holders are already totally ordered. The
//! [`TraceBuf`] exploits this — the token holder appends directly,
//! drawing the dense sequence number from an atomic counter, and the
//! scheduler lock shrinks to scheduler state only.
//!
//! While appending, the buffer also folds each event's
//! `(goroutine, kind, CU)` triple into an FNV-1a *schedule fingerprint*.
//! Two runs with equal fingerprints executed the same interleaving of
//! the same operations, so the campaign runner can memoize per-schedule
//! analysis results (see `goat-core`). Timestamps and sequence numbers
//! are excluded: they are functions of the interleaving and would only
//! slow the fold down.

use crate::event::{Event, EventKind, Gid, VTime};
use crate::recycle;
use goat_model::Cu;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a 64-bit offset basis: the empty-schedule fingerprint.
pub const FP_SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FP_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold one word into an FNV-1a accumulator.
#[inline]
fn fold(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FP_PRIME)
}

/// A compact, collision-resistant word for the event kind: the low bits
/// are a per-variant code, the payload (resource ids, flags, counts) is
/// packed above so that e.g. sends on different channels fingerprint
/// differently. Variant payloads that merely restate the interleaving
/// (goroutine names, log text) are omitted.
fn fp_kind(kind: &EventKind) -> u64 {
    match kind {
        EventKind::ProcStart => 1,
        EventKind::ProcStop => 2,
        EventKind::Gomaxprocs { n } => 3 | (u64::from(*n) << 8),
        EventKind::GcStart => 4,
        EventKind::GcDone => 5,
        EventKind::GcStwStart => 6,
        EventKind::GcStwDone => 7,
        EventKind::GcSweepStart => 8,
        EventKind::GcSweepDone => 9,
        EventKind::HeapAlloc { bytes } => 10 ^ (bytes << 8),
        EventKind::GoCreate { new_g, internal, .. } => {
            11 | (u64::from(*internal) << 8) | (new_g.0 << 9)
        }
        EventKind::GoStart => 12,
        EventKind::GoEnd => 13,
        EventKind::GoStop => 14,
        EventKind::GoSched { trace_stop } => 15 | (u64::from(*trace_stop) << 8),
        EventKind::GoPreempt => 16,
        EventKind::GoSleep => 17,
        EventKind::GoBlock { reason, holder, .. } => {
            18 | ((*reason as u64) << 8) | holder.map_or(0, |g| (g.0 + 1) << 16)
        }
        EventKind::GoUnblock { g } => 19 | (g.0 << 8),
        EventKind::GoWaiting => 20,
        EventKind::GoBlockNet => 21,
        EventKind::GoInSyscall => 22,
        EventKind::GoSysCall => 23,
        EventKind::GoSysExit => 24,
        EventKind::GoSysBlock => 25,
        EventKind::UserLog { .. } => 26,
        EventKind::UserTaskCreate => 27,
        EventKind::UserTaskEnd => 28,
        EventKind::UserRegion => 29,
        EventKind::FutileWakeup => 30,
        EventKind::TimerFire { timer } => 31 | (timer.0 << 8),
        EventKind::ChMake { ch, cap } => 32 | (ch.0 << 8) ^ ((*cap as u64) << 32),
        EventKind::ChSend { ch } => 33 | (ch.0 << 8),
        EventKind::ChRecv { ch, closed } => 34 | (u64::from(*closed) << 8) | (ch.0 << 9),
        EventKind::ChClose { ch } => 35 | (ch.0 << 8),
        EventKind::SelectBegin { cases, has_default } => {
            36 | (u64::from(*has_default) << 8) | ((cases.len() as u64) << 9)
        }
        EventKind::SelectEnd { chosen, flavor, ch } => {
            37 | ((*flavor as u64) << 8) ^ ((*chosen as u64) << 16) ^ ch.map_or(0, |c| c.0 << 40)
        }
        EventKind::MuLock { mu } => 38 | (mu.0 << 8),
        EventKind::MuUnlock { mu } => 39 | (mu.0 << 8),
        EventKind::RwRLock { mu } => 40 | (mu.0 << 8),
        EventKind::RwRUnlock { mu } => 41 | (mu.0 << 8),
        EventKind::WgAdd { wg, delta, count } => {
            42 | (wg.0 << 8) ^ ((*delta as u64) << 24) ^ ((*count as u64) << 44)
        }
        EventKind::WgDone { wg, count } => 43 | (wg.0 << 8) ^ ((*count as u64) << 24),
        EventKind::WgWait { wg } => 44 | (wg.0 << 8),
        EventKind::CondWait { cv } => 45 | (cv.0 << 8),
        EventKind::CondSignal { cv } => 46 | (cv.0 << 8),
        EventKind::CondBroadcast { cv } => 47 | (cv.0 << 8),
    }
}

/// Fold one event into the accumulator. The CU is identified by its
/// interned file pointer (canonical per distinct path, the same identity
/// `goat-core`'s analysis plane relies on) plus line and kind — stable
/// for the lifetime of the process, which is exactly the lifetime of a
/// memo table.
#[inline]
fn fold_event(h: u64, g: Gid, kind: &EventKind, cu: &Option<Cu>) -> u64 {
    let h = fold(h, g.0);
    let h = fold(h, fp_kind(kind));
    match cu {
        None => fold(h, 0),
        Some(c) => {
            let h = fold(h, c.file.as_str().as_ptr() as u64);
            fold(h, 0x8000_0000_0000_0000 | (u64::from(c.line) << 8) | (c.kind as u64))
        }
    }
}

/// Fingerprint an already collected event sequence — the offline twin
/// of the online fold, used to fingerprint deserialized or replayed
/// traces and to cross-check the online accumulator in tests.
pub fn schedule_fingerprint<'a, I: IntoIterator<Item = &'a Event>>(events: I) -> u64 {
    events.into_iter().fold(FP_SEED, |h, ev| fold_event(h, ev.g, &ev.kind, &ev.cu))
}

/// Interior state: the event vector and the derived flags that must
/// change atomically with it.
struct TraceState {
    events: Vec<Event>,
    /// Online schedule fingerprint over the recorded prefix.
    fp: u64,
    /// The event cap was reached; further pushes are dropped (and no
    /// longer folded, so the fingerprint describes exactly the ECT that
    /// analysis will see).
    full: bool,
    /// The buffer was collected; late pushes (teardown stragglers) are
    /// dropped.
    closed: bool,
}

/// One run's trace sink: lock-free with respect to the scheduler lock.
///
/// Thread safety relies on the runtime's token discipline only for
/// *ordering*; the buffer itself is internally synchronized (a private
/// mutex never held across any other lock acquisition), so stray late
/// appends can never corrupt it.
pub struct TraceBuf {
    enabled: bool,
    max_events: usize,
    /// Virtual clock mirror, published by the scheduler's tick so
    /// appends can timestamp events without the scheduler lock.
    clock: AtomicU64,
    /// Dense total-order sequence counter.
    seq: AtomicU64,
    st: Mutex<TraceState>,
}

impl TraceBuf {
    /// A buffer for one run. When tracing is enabled the event vector is
    /// checked out of the process-wide recycle pool.
    pub fn new(enabled: bool, max_events: usize) -> TraceBuf {
        let events = if enabled { recycle::take_buffer() } else { Vec::new() };
        TraceBuf {
            enabled,
            max_events,
            clock: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            st: Mutex::new(TraceState { events, fp: FP_SEED, full: false, closed: false }),
        }
    }

    /// Poison-tolerant lock: a panicking goroutine thread must not make
    /// the trace (the evidence!) unreadable.
    fn lock(&self) -> std::sync::MutexGuard<'_, TraceState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publish the scheduler's virtual clock (called from `tick`).
    pub fn set_clock(&self, ns: u64) {
        self.clock.store(ns, Ordering::Release);
    }

    /// The current virtual clock, nanoseconds.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Append one event, stamping it with the next dense sequence number
    /// and the current virtual time. No-op when tracing is disabled,
    /// the event cap was reached, or the buffer was already collected.
    pub fn push(&self, g: Gid, kind: EventKind, cu: Option<Cu>) {
        if !self.enabled {
            return;
        }
        let mut st = self.lock();
        if st.closed || st.full {
            return;
        }
        if st.events.len() >= self.max_events {
            st.full = true;
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(seq as usize, st.events.len(), "seq counter tracks the event vector");
        st.fp = fold_event(st.fp, g, &kind, &cu);
        let ts = VTime(self.clock.load(Ordering::Acquire));
        st.events.push(Event { seq, ts, g, kind, cu });
    }

    /// Collect the run's events and fingerprint, closing the buffer.
    /// Returns `(None, fp)` when tracing was disabled.
    pub fn take(&self) -> (Option<Vec<Event>>, u64) {
        let mut st = self.lock();
        st.closed = true;
        let fp = st.fp;
        if self.enabled {
            (Some(std::mem::take(&mut st.events)), fp)
        } else {
            (None, fp)
        }
    }
}

impl std::fmt::Debug for TraceBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("TraceBuf")
            .field("enabled", &self.enabled)
            .field("len", &st.events.len())
            .field("full", &st.full)
            .field("closed", &st.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RId;

    #[test]
    fn online_fingerprint_matches_offline() {
        let tb = TraceBuf::new(true, 100);
        tb.push(Gid::MAIN, EventKind::GoStart, None);
        tb.set_clock(10);
        tb.push(Gid::MAIN, EventKind::ChSend { ch: RId(1) }, None);
        tb.push(Gid(2), EventKind::ChRecv { ch: RId(1), closed: false }, None);
        let (events, fp) = tb.take();
        let events = events.expect("enabled");
        assert_eq!(fp, schedule_fingerprint(events.iter()));
        assert_ne!(fp, FP_SEED);
        assert_eq!(events[1].ts, VTime(10));
        assert_eq!(events.last().unwrap().seq, 2);
    }

    #[test]
    fn distinct_schedules_fingerprint_differently() {
        let a = TraceBuf::new(true, 100);
        a.push(Gid(1), EventKind::ChSend { ch: RId(1) }, None);
        a.push(Gid(2), EventKind::ChRecv { ch: RId(1), closed: false }, None);
        let b = TraceBuf::new(true, 100);
        b.push(Gid(2), EventKind::ChRecv { ch: RId(1), closed: false }, None);
        b.push(Gid(1), EventKind::ChSend { ch: RId(1) }, None);
        assert_ne!(a.take().1, b.take().1);
    }

    #[test]
    fn cap_stops_recording_and_folding() {
        let tb = TraceBuf::new(true, 1);
        tb.push(Gid(1), EventKind::GoStart, None);
        tb.push(Gid(1), EventKind::GoEnd, None);
        let (events, fp) = tb.take();
        let events = events.expect("enabled");
        assert_eq!(events.len(), 1);
        assert_eq!(fp, schedule_fingerprint(events.iter()), "fp covers only the recorded prefix");
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let tb = TraceBuf::new(false, 100);
        tb.push(Gid(1), EventKind::GoStart, None);
        let (events, fp) = tb.take();
        assert!(events.is_none());
        assert_eq!(fp, FP_SEED);
    }

    #[test]
    fn closed_buffer_drops_late_pushes() {
        let tb = TraceBuf::new(true, 100);
        tb.push(Gid(1), EventKind::GoStart, None);
        let _ = tb.take();
        tb.push(Gid(1), EventKind::GoEnd, None);
        let (events, _) = tb.take();
        assert_eq!(events.expect("enabled").len(), 0, "collected buffer stays collected");
    }
}
