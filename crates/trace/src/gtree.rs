//! Goroutine trees (paper §III-E, figure 3).
//!
//! GoAT constructs a tree of application-level goroutines from an ECT:
//! nodes are goroutines, and a directed edge denotes the parent-child
//! relationship in which the child was created by a `go` statement the
//! parent executed. Each node carries the goroutine's creation site, its
//! full event index sequence and its final event — the inputs of the
//! deadlock-detection procedure and of coverage accounting.

use crate::ect::Ect;
use crate::event::{Event, EventKind, Gid};
use goat_model::Cu;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// One node of a goroutine tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GNode {
    /// The goroutine this node describes.
    pub g: Gid,
    /// Human-readable name recorded at creation ("main" for the root).
    pub name: String,
    /// Parent goroutine (none for the main goroutine).
    pub parent: Option<Gid>,
    /// The `go` statement CU that created this goroutine.
    pub create_cu: Option<Cu>,
    /// Children in creation order.
    pub children: Vec<Gid>,
    /// Indices (into the ECT) of the events this goroutine emitted.
    pub events: Vec<usize>,
    /// The final event this goroutine emitted, if any.
    pub last_event: Option<EventKind>,
    /// CU of the final event, if any.
    pub last_cu: Option<Cu>,
    /// True for runtime-internal goroutines (watchdog, tracer).
    pub internal: bool,
}

impl GNode {
    /// Did this goroutine run to completion (`GoEnd`)?
    pub fn finished(&self) -> bool {
        matches!(self.last_event, Some(EventKind::GoEnd))
    }
}

/// A goroutine tree built from an ECT.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GTree {
    nodes: BTreeMap<Gid, GNode>,
    root: Option<Gid>,
}

impl GTree {
    /// Build the goroutine tree of a trace.
    ///
    /// The main goroutine ([`Gid::MAIN`]) is the root. Goroutines whose
    /// `GoCreate` is marked internal — and their descendants — are kept in
    /// the tree but flagged, so the application-level filter
    /// ([`GTree::app_nodes`]) can exclude them exactly as §III-E requires
    /// (a goroutine is application-level iff it is main, or its ancestry
    /// reaches main without passing through a runtime/tracer goroutine).
    pub fn from_ect(ect: &Ect) -> Self {
        let mut b = GTreeBuilder::new();
        for (i, ev) in ect.iter().enumerate() {
            b.observe(i, ev);
        }
        b.finish()
    }

    /// The root (main) goroutine node.
    pub fn root(&self) -> Option<&GNode> {
        self.root.and_then(|g| self.nodes.get(&g))
    }

    /// Look up a node.
    pub fn get(&self, g: Gid) -> Option<&GNode> {
        self.nodes.get(&g)
    }

    /// Number of nodes (including internal goroutines).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, in goroutine-id order.
    pub fn nodes(&self) -> impl Iterator<Item = &GNode> {
        self.nodes.values()
    }

    /// Application-level nodes only (main and descendants not flagged
    /// internal), in BFS order from the root.
    pub fn app_nodes(&self) -> Vec<&GNode> {
        self.bfs().into_iter().filter(|n| !n.internal).collect()
    }

    /// BFS traversal from the root (the order `DeadlockCheck` uses).
    pub fn bfs(&self) -> Vec<&GNode> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut queue = VecDeque::from([root]);
        while let Some(g) = queue.pop_front() {
            if let Some(n) = self.nodes.get(&g) {
                out.push(n);
                queue.extend(n.children.iter().copied());
            }
        }
        out
    }

    /// Render the tree as ASCII art (the paper's figure-3-style report).
    ///
    /// The `_ect` parameter is kept for signature stability (earlier
    /// revisions resolved event payloads); rendering only needs the tree.
    pub fn render(&self, _ect: &Ect) -> String {
        let mut out = String::new();
        if let Some(root) = self.root() {
            self.render_node(root, "", true, &mut out);
        }
        out
    }

    fn render_node(&self, node: &GNode, prefix: &str, last: bool, out: &mut String) {
        let branch = if prefix.is_empty() {
            ""
        } else if last {
            "└── "
        } else {
            "├── "
        };
        let status = match &node.last_event {
            Some(EventKind::GoEnd) => "finished".to_string(),
            Some(EventKind::GoSched { trace_stop: true }) => "finished (main)".to_string(),
            Some(EventKind::GoBlock { reason, .. }) => format!("BLOCKED on {reason}"),
            Some(k) => format!("last: {k}"),
            None => "never ran".to_string(),
        };
        let mut line = format!("{prefix}{branch}{} \"{}\" — {status}", node.g, node.name);
        if let Some(cu) = &node.last_cu {
            let _ = write!(line, " @ {cu}");
        }
        if node.internal {
            line.push_str(" [internal]");
        }
        out.push_str(&line);
        out.push('\n');
        let child_prefix = if prefix.is_empty() {
            String::new()
        } else {
            format!("{prefix}{}", if last { "    " } else { "│   " })
        };
        let n = node.children.len();
        for (i, c) in node.children.iter().enumerate() {
            if let Some(child) = self.nodes.get(c) {
                let p = if prefix.is_empty() { "  ".to_string() } else { child_prefix.clone() };
                self.render_node(child, &p, i + 1 == n, out);
            }
        }
    }

    /// The events of goroutine `g`, resolved against the trace.
    pub fn events_of<'a>(&self, g: Gid, ect: &'a Ect) -> Vec<&'a Event> {
        self.nodes
            .get(&g)
            .map(|n| n.events.iter().map(|&i| &ect.events()[i]).collect())
            .unwrap_or_default()
    }
}

/// Incremental goroutine-tree builder: feed events in trace order via
/// [`GTreeBuilder::observe`], then [`GTreeBuilder::finish`].
///
/// This is the engine behind [`GTree::from_ect`], exposed so the fused
/// single-pass trace analyzer in `goat-core` can interleave tree
/// construction with coverage extraction in one sweep. Goroutine ids are
/// assigned densely by the runtime (main is `Gid(1)`, spawns count up),
/// so the per-event bookkeeping indexes a flat slot table instead of a
/// `BTreeMap` — the tree's sorted-map shape is only materialised once at
/// `finish`.
#[derive(Debug, Clone)]
pub struct GTreeBuilder {
    slots: Vec<Option<GNode>>,
}

impl Default for GTreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GTreeBuilder {
    /// A builder with the main goroutine pre-seeded as the root.
    pub fn new() -> Self {
        let mut b = GTreeBuilder { slots: Vec::new() };
        b.reset();
        b
    }

    /// Clear back to the freshly-created state, keeping the slot table's
    /// allocation (for reuse across campaign iterations).
    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        *self.slot_mut(Gid::MAIN) = Some(GNode {
            g: Gid::MAIN,
            name: "main".to_string(),
            parent: None,
            create_cu: None,
            children: Vec::new(),
            events: Vec::new(),
            last_event: None,
            last_cu: None,
            internal: false,
        });
    }

    fn slot_mut(&mut self, g: Gid) -> &mut Option<GNode> {
        let i = g.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        &mut self.slots[i]
    }

    fn slot(&self, g: Gid) -> Option<&GNode> {
        self.slots.get(g.0 as usize).and_then(Option::as_ref)
    }

    /// Account for event `ev` at trace index `i` (events must arrive in
    /// trace order).
    pub fn observe(&mut self, i: usize, ev: &Event) {
        if let EventKind::GoCreate { new_g, name, internal } = &ev.kind {
            let parent_internal = self.slot(ev.g).map(|n| n.internal).unwrap_or(false);
            *self.slot_mut(*new_g) = Some(GNode {
                g: *new_g,
                name: name.to_string(),
                parent: Some(ev.g),
                create_cu: ev.cu,
                children: Vec::new(),
                events: Vec::new(),
                last_event: None,
                last_cu: None,
                internal: *internal || parent_internal,
            });
            if let Some(p) = self.slot_mut(ev.g).as_mut() {
                p.children.push(*new_g);
            }
        }
        if let Some(n) = self.slot_mut(ev.g).as_mut() {
            n.events.push(i);
            n.last_event = Some(ev.kind.clone());
            n.last_cu = ev.cu;
        }
    }

    /// Assemble the tree, leaving the builder reset for reuse.
    pub fn finish(&mut self) -> GTree {
        let mut nodes = BTreeMap::new();
        for slot in self.slots.iter_mut() {
            if let Some(n) = slot.take() {
                nodes.insert(n.g, n);
            }
        }
        self.reset();
        GTree { nodes, root: Some(Gid::MAIN) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BlockReason, VTime};
    use goat_model::{Cu, CuKind};

    fn ev(seq: u64, g: u64, kind: EventKind) -> Event {
        Event { seq, ts: VTime(seq), g: Gid(g), kind, cu: None }
    }

    fn sample_ect() -> Ect {
        vec![
            ev(0, 1, EventKind::GoStart),
            Event {
                seq: 1,
                ts: VTime(1),
                g: Gid(1),
                kind: EventKind::GoCreate {
                    new_g: Gid(2),
                    name: "monitor".into(),
                    internal: false,
                },
                cu: Some(Cu::new("k.rs", 12, CuKind::Go)),
            },
            Event {
                seq: 2,
                ts: VTime(2),
                g: Gid(1),
                kind: EventKind::GoCreate {
                    new_g: Gid(3),
                    name: "goat::watchdog".into(),
                    internal: true,
                },
                cu: None,
            },
            ev(3, 2, EventKind::GoStart),
            ev(
                4,
                2,
                EventKind::GoBlock { reason: BlockReason::Sync, holder_cu: None, holder: None },
            ),
            ev(5, 3, EventKind::GoStart),
            ev(6, 3, EventKind::GoEnd),
            ev(7, 1, EventKind::GoSched { trace_stop: true }),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn builds_parent_child_edges() {
        let ect = sample_ect();
        let t = GTree::from_ect(&ect);
        assert_eq!(t.len(), 3);
        let root = t.root().unwrap();
        assert_eq!(root.children, vec![Gid(2), Gid(3)]);
        let m = t.get(Gid(2)).unwrap();
        assert_eq!(m.parent, Some(Gid(1)));
        assert_eq!(m.create_cu.as_ref().unwrap().line, 12);
        assert_eq!(m.name, "monitor");
    }

    #[test]
    fn records_last_events() {
        let ect = sample_ect();
        let t = GTree::from_ect(&ect);
        assert!(matches!(
            t.get(Gid(2)).unwrap().last_event,
            Some(EventKind::GoBlock { reason: BlockReason::Sync, .. })
        ));
        assert!(t.get(Gid(3)).unwrap().finished());
        assert!(matches!(
            t.root().unwrap().last_event,
            Some(EventKind::GoSched { trace_stop: true })
        ));
    }

    #[test]
    fn app_filter_removes_internal() {
        let ect = sample_ect();
        let t = GTree::from_ect(&ect);
        let app: Vec<Gid> = t.app_nodes().iter().map(|n| n.g).collect();
        assert_eq!(app, vec![Gid(1), Gid(2)]);
    }

    #[test]
    fn internal_flag_is_inherited() {
        let mut events = sample_ect().events().to_vec();
        let seq = events.len() as u64;
        events.push(Event {
            seq,
            ts: VTime(100),
            g: Gid(3),
            kind: EventKind::GoCreate { new_g: Gid(4), name: "helper".into(), internal: false },
            cu: None,
        });
        // Rebuild with dense sequence numbers; g3 creating g4 after its
        // GoEnd is not well-formed, but tree construction is lenient.
        let ect: Ect = events
            .into_iter()
            .enumerate()
            .map(|(i, mut e)| {
                e.seq = i as u64;
                e.ts = VTime(i as u64);
                e
            })
            .collect();
        let t = GTree::from_ect(&ect);
        assert!(t.get(Gid(4)).unwrap().internal, "children of internal goroutines are internal");
    }

    #[test]
    fn bfs_is_level_order() {
        let ect = sample_ect();
        let t = GTree::from_ect(&ect);
        let order: Vec<Gid> = t.bfs().iter().map(|n| n.g).collect();
        assert_eq!(order, vec![Gid(1), Gid(2), Gid(3)]);
    }

    #[test]
    fn render_mentions_block_state() {
        let ect = sample_ect();
        let t = GTree::from_ect(&ect);
        let r = t.render(&ect);
        assert!(r.contains("BLOCKED on sync"), "{r}");
        assert!(r.contains("main"), "{r}");
        assert!(r.contains("[internal]"), "{r}");
    }

    #[test]
    fn events_of_resolves_indices() {
        let ect = sample_ect();
        let t = GTree::from_ect(&ect);
        let evs = t.events_of(Gid(2), &ect);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::GoStart);
    }
}
