//! Root-cause analysis: *why* did this run deadlock when that one
//! passed?
//!
//! The paper lists root-cause analysis among the debugging procedures an
//! ECT enables (§I, objective 1). This module makes it concrete: given a
//! failing execution and a passing execution of the same program, find
//! the **divergence point** — the first scheduling decision where the
//! two runs took different turns — and render the fatal window around
//! it. Because the runtime records every nondeterministic choice
//! ([`goat_runtime::ReplayLog`]), the divergence is exact, not
//! heuristic.

use crate::analysis::{analyze_run, GoatVerdict};
use crate::program::Program;
use goat_runtime::{Config, Decision, ReplayLog, Runtime};
use goat_trace::{Ect, Event};
use std::fmt::Write as _;
use std::sync::Arc;

/// The first point where two executions of the same program differ.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the first differing scheduler decision (into both logs).
    pub decision_index: usize,
    /// What the failing run decided there.
    pub failing_decision: Option<Decision>,
    /// What the passing run decided there.
    pub passing_decision: Option<Decision>,
    /// Length of the common event prefix of the two traces.
    pub common_events: usize,
    /// The first event unique to the failing run, if any.
    pub failing_event: Option<Event>,
    /// The first event unique to the passing run, if any.
    pub passing_event: Option<Event>,
}

/// Compare two events for divergence purposes: sequence numbers always
/// align by construction and timestamps track steps, so the meaningful
/// payload is (goroutine, kind, CU).
fn same_event(a: &Event, b: &Event) -> bool {
    a.g == b.g && a.kind == b.kind && a.cu == b.cu
}

/// Locate the divergence between a failing and a passing execution.
///
/// Returns `None` when the runs are identical (same schedule — then the
/// verdicts cannot differ either).
pub fn find_divergence(
    failing: (&Ect, &ReplayLog),
    passing: (&Ect, &ReplayLog),
) -> Option<Divergence> {
    let (f_ect, f_log) = failing;
    let (p_ect, p_log) = passing;
    let decision_index = f_log
        .decisions
        .iter()
        .zip(p_log.decisions.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| f_log.decisions.len().min(p_log.decisions.len()));
    if decision_index == f_log.decisions.len() && f_log.decisions.len() == p_log.decisions.len() {
        return None;
    }
    let common_events =
        f_ect.iter().zip(p_ect.iter()).take_while(|(a, b)| same_event(a, b)).count();
    Some(Divergence {
        decision_index,
        failing_decision: f_log.decisions.get(decision_index).cloned(),
        passing_decision: p_log.decisions.get(decision_index).cloned(),
        common_events,
        failing_event: f_ect.events().get(common_events).cloned(),
        passing_event: p_ect.events().get(common_events).cloned(),
    })
}

fn describe_decision(d: &Option<Decision>) -> String {
    match d {
        Some(Decision::Pick(g)) => format!("scheduled {g}"),
        Some(Decision::SelectChoice(i)) => format!("selected case {i}"),
        Some(Decision::YieldAt(true)) => "yielded at the next concurrency usage".to_string(),
        Some(Decision::YieldAt(false)) => "did not yield".to_string(),
        None => "(run ended)".to_string(),
    }
}

/// Render a human-readable root-cause report for a failing run, given a
/// passing run of the same program for contrast.
pub fn root_cause_report(
    program: &str,
    failing: (&GoatVerdict, &Ect, &ReplayLog),
    passing: (&Ect, &ReplayLog),
) -> String {
    let (verdict, f_ect, f_log) = failing;
    let (p_ect, p_log) = passing;
    let mut out = String::new();
    let _ = writeln!(out, "=== root-cause analysis: {program} ===");
    let _ = writeln!(out, "failing verdict: {verdict}");
    match find_divergence((f_ect, f_log), (p_ect, p_log)) {
        None => {
            let _ = writeln!(out, "the two runs are identical — no schedule divergence");
        }
        Some(d) => {
            let _ = writeln!(
                out,
                "runs agree for {} events and {} scheduler decisions, then diverge:",
                d.common_events, d.decision_index
            );
            let _ = writeln!(out, "  failing run: {}", describe_decision(&d.failing_decision));
            let _ = writeln!(out, "  passing run: {}", describe_decision(&d.passing_decision));
            if let Some(ev) = &d.failing_event {
                let _ = writeln!(out, "  first failing-only event: {ev}");
            }
            if let Some(ev) = &d.passing_event {
                let _ = writeln!(out, "  first passing-only event: {ev}");
            }
            let _ = writeln!(out, "--- failing window (5 events before/after) ---");
            let events = f_ect.events();
            let from = d.common_events.saturating_sub(5);
            let to = (d.common_events + 5).min(events.len());
            for ev in &events[from..to] {
                let marker = if ev.seq as usize == d.common_events { ">>" } else { "  " };
                let _ = writeln!(out, "{marker} {ev}");
            }
        }
    }
    out
}

/// Search for a passing schedule of `program` and contrast it with the
/// failing run: the one-call diagnosis entry point.
///
/// Returns `None` if no passing schedule is found within `budget` seeds
/// (e.g. the bug is deterministic — then there is no schedule to blame).
pub fn diagnose(
    program: Arc<dyn Program>,
    failing_verdict: &GoatVerdict,
    failing_ect: &Ect,
    failing_schedule: &ReplayLog,
    budget: usize,
) -> Option<String> {
    for seed in 0..budget as u64 {
        let cfg = Config::new(0xD1A6_0000u64.wrapping_add(seed));
        let p = Arc::clone(&program);
        let run = Runtime::run(cfg, move || p.main());
        if analyze_run(&run) == GoatVerdict::Pass {
            let p_ect = run.ect.as_ref()?;
            return Some(root_cause_report(
                program.name(),
                (failing_verdict, failing_ect, failing_schedule),
                (p_ect, &run.schedule),
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FnProgram;
    use crate::runner::{Goat, GoatConfig};
    use goat_runtime::{go_named, time, Chan, Mutex, Select};
    use std::time::Duration;

    fn listing1_program() -> Arc<dyn Program> {
        Arc::new(FnProgram::new("moby28462-like", || {
            let mu = Mutex::new();
            let status: Chan<u32> = Chan::new(0);
            {
                let (mu, status) = (mu.clone(), status.clone());
                go_named("Monitor", move || loop {
                    let got = Select::new().recv(&status, |v| v).default(|| None).run();
                    if got.is_some() {
                        return;
                    }
                    mu.lock();
                    mu.unlock();
                });
            }
            {
                let (mu, status) = (mu.clone(), status.clone());
                go_named("StatusChange", move || {
                    mu.lock();
                    status.send(1);
                    mu.unlock();
                });
            }
            time::sleep(Duration::from_millis(30));
        }))
    }

    #[test]
    fn diagnosis_pinpoints_the_fatal_preemption() {
        let program = listing1_program();
        let goat = Goat::new(GoatConfig::default().with_iterations(300));
        let result = goat.test(Arc::clone(&program));
        let verdict = result.bug.expect("leak found");
        let ect = result.bug_ect.expect("trace");
        let schedule = result.bug_schedule.expect("schedule");
        let report = diagnose(Arc::clone(&program), &verdict, &ect, &schedule, 100)
            .expect("a passing schedule exists for this racy bug");
        assert!(report.contains("diverge"), "{report}");
        assert!(report.contains("failing verdict: PDL"), "{report}");
        assert!(report.contains("failing window"), "{report}");
    }

    #[test]
    fn identical_runs_have_no_divergence() {
        let program = listing1_program();
        let p = Arc::clone(&program);
        let a = Runtime::run(Config::new(3), move || p.main());
        let p = Arc::clone(&program);
        let b = Runtime::run(Config::new(3), move || p.main());
        let d = find_divergence(
            (a.ect.as_ref().unwrap(), &a.schedule),
            (b.ect.as_ref().unwrap(), &b.schedule),
        );
        assert!(d.is_none(), "{d:?}");
    }

    #[test]
    fn different_seeds_diverge_at_a_decision() {
        let program = listing1_program();
        let mut pair = None;
        for (sa, sb) in [(1u64, 2u64), (3, 7), (5, 11)] {
            let p = Arc::clone(&program);
            let a = Runtime::run(Config::new(sa), move || p.main());
            let p = Arc::clone(&program);
            let b = Runtime::run(Config::new(sb), move || p.main());
            if a.schedule != b.schedule {
                pair = Some((a, b));
                break;
            }
        }
        let (a, b) = pair.expect("some seed pair diverges");
        let d = find_divergence(
            (a.ect.as_ref().unwrap(), &a.schedule),
            (b.ect.as_ref().unwrap(), &b.schedule),
        )
        .expect("divergence found");
        assert!(d.failing_decision.is_some() || d.passing_decision.is_some());
        // decisions agree up to the reported index
        assert_eq!(
            a.schedule.decisions[..d.decision_index],
            b.schedule.decisions[..d.decision_index]
        );
    }
}
