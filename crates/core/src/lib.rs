//! # goat-core — the GoAT tool
//!
//! GoAT (Go Analysis and Testing) combines static and dynamic analysis
//! to debug blocking bugs in Go-style concurrent programs:
//!
//! 1. **Static analysis** — a source scan builds the CU model `M`
//!    ([`Goat::static_model`], backed by `goat-model`).
//! 2. **Instrumented execution** — the `goat-runtime` executes the
//!    program with tracing on and yield handlers (bounded by `D`) in
//!    front of every CU.
//! 3. **Offline analysis** — the ECT is turned into a goroutine tree;
//!    [`deadlock_check`] (Procedure 1) classifies the run, and
//!    [`extract_coverage`] marks covered requirements.
//! 4. **Campaign loop** — [`Goat::test`] iterates executions with fresh
//!    seeds until the bug is exposed or the budget/threshold is reached,
//!    accumulating a [`GlobalGTree`] and a coverage percentage.
//!
//! ```
//! use goat_core::{Goat, GoatConfig, FnProgram, GoatVerdict};
//! use goat_runtime::{go, Chan};
//! use std::sync::Arc;
//!
//! // A program that leaks a goroutine: the receiver is never unblocked.
//! let program = Arc::new(FnProgram::new("leak-demo", || {
//!     let ch: Chan<u8> = Chan::new(0);
//!     go(move || {
//!         ch.recv(); // blocks forever
//!     });
//!     goat_runtime::gosched();
//! }));
//!
//! let goat = Goat::new(GoatConfig::default().with_iterations(10));
//! let result = goat.test(program);
//! assert!(result.detected());
//! assert!(matches!(result.bug, Some(GoatVerdict::PartialDeadlock { .. })));
//! ```

#![warn(missing_docs)]

mod analysis;
/// Coverage-guided arm selection (deterministic epsilon-greedy bandit).
pub mod bandit;
/// Campaign checkpoint/resume (`GOAT_CHECKPOINT`) persistence.
pub mod checkpoint;
/// Coverage extraction (fused-plane wrapper plus the retained
/// [`coverage::reference`] multi-pass extractor).
pub mod coverage;
mod globaltree;
/// Out-of-process run isolation (`GOAT_ISOLATE=proc`): worker sandbox,
/// crash forensics, and resource jails.
pub mod isolate;
/// The fused single-pass analysis data plane.
pub mod plane;
mod program;
mod report;
/// Root-cause analysis: schedule-divergence diagnosis between failing
/// and passing executions.
pub mod rootcause;
mod runner;
/// Suite-scale orchestration: global cross-kernel work stealing, warm
/// shared resources, and adaptive budget reallocation (`-target all`).
pub mod suite;
/// Binary frame codec for the process-isolation data plane
/// (`GOAT_IPC=bin`).
pub mod wire;

pub use analysis::{analyze_run, analyze_run_with, crosscheck, deadlock_check, GoatVerdict};
pub use bandit::{Arm, ArmReport, Bandit, GuidedReward, GuidedSummary, GUIDED_EPSILON, GUIDED_LAG};
pub use checkpoint::{CampaignCheckpoint, CHECKPOINT_ENV};
pub use coverage::{extract_coverage, extract_sync_pairs, RunCoverage};
pub use globaltree::{GlobalGTree, GlobalNode};
pub use isolate::{serve_worker, IpcMode, IsolateMode};
pub use plane::{EctBuffers, TraceAnalysis};
pub use program::{program_fn, FnProgram, Program};
pub use report::{
    bug_report, campaign_report, coverage_table, goroutine_tree_dot, interleaving_lanes,
    uncovered_report,
};
pub use rootcause::{diagnose, find_divergence, root_cause_report, Divergence};
pub use runner::{
    CampaignResult, CampaignSummary, CampaignTelemetry, Goat, GoatConfig, GoatTool,
    IterationRecord, MemoMode,
};
pub use suite::{per_kernel_checkpoint, run_suite, SuiteConfig, SuiteManifest, SuiteStats};
