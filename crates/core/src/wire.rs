//! Binary frame codec for the process-isolation data plane
//! (`GOAT_IPC=bin`).
//!
//! The JSON protocol of [`crate::isolate`] re-serializes the full
//! [`Config`] into every `Run` frame and renders whole result traces as
//! JSON text; at campaign scale that per-run cost dominates short
//! iterations. This module defines the compact alternative:
//!
//! * framing is unchanged — `[u32 LE payload length][payload]` — so the
//!   corrupt/oversized-stream handling and the garbage-frame fault
//!   profile behave identically in both modes; only the payload bytes
//!   differ (`[u8 frame tag][varint fields…]` instead of JSON);
//! * an `Init` frame carries the campaign-constant [`Config`] base (and
//!   the shared-memory geometry) **once per worker checkout**, so every
//!   `Run` frame is a handful of bytes: the iteration, plus exactly the
//!   per-run delta the campaign runner varies (seed, delay bound, yield
//!   probability, strategy);
//! * `Result` payloads embed the trace through the varint-delta event
//!   codec of [`goat_trace::wire`]; `ResultShm` replaces the payload
//!   with a slot reference into the file-backed shared-memory ring.
//!
//! Every codec here is lossless and total: `decode(encode(x)) == x`
//! for arbitrary values (differential proptests against the JSON path
//! live in `tests/ipc_wire.rs`), and decoding arbitrary bytes returns
//! [`std::io::ErrorKind::InvalidData`] rather than panicking, because
//! the bytes cross a process boundary.

use goat_runtime::{
    AliveGoroutine, Config, CrashForensics, Decision, ReplayLog, RunOutcome, RunResult,
    SchedCounters, SchedPolicy, StrategyKind, TimeoutPhase,
};
use goat_trace::wire::{put_bool, put_f64, put_ivarint, put_str, put_uvarint, Reader};
use goat_trace::{Ect, Gid, VTime};
use std::io::{self, ErrorKind};

fn err(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, format!("wire: {msg}"))
}

/// One message on the binary worker wire.
///
/// `Ready`/`Ack`/`Heartbeat` mirror their JSON counterparts;
/// `Init`/`Run` split the JSON `Run{cfg}` frame into a per-checkout
/// base and a per-run delta; `Result`/`ResultShm` are the two return
/// paths (pipe payload vs shared-memory slot).
#[derive(Debug, Clone)]
pub enum WireFrame {
    /// Worker → orchestrator: startup handshake (after the rlimit jail).
    Ready,
    /// Orchestrator → worker: campaign-constant state for all following
    /// `Run` frames, sent when the worker is first used by a campaign
    /// (and again whenever the base or fault plan changes).
    Init {
        /// Program name, resolved by the worker's registry.
        program: String,
        /// Shared-memory ring file path; empty when results must travel
        /// over the pipe.
        shm_path: String,
        /// Byte length of one shm slot.
        slot_len: u64,
        /// Number of shm slots (the batching window).
        slots: u64,
        /// The base [`Config`]: every field a `Run` delta does not
        /// override.
        base: Box<Config>,
    },
    /// Orchestrator → worker: execute one iteration. Carries only the
    /// fields [`crate::GoatConfig`] varies per run; everything else
    /// comes from the checked-in `Init` base.
    Run {
        /// 1-based campaign iteration.
        iter: u64,
        /// Per-run RNG seed.
        seed: u64,
        /// Per-run perturbation bound `D` (bandit arms vary it).
        delay_bound: u32,
        /// Per-run yield probability (bandit arms vary it).
        yield_prob: f64,
        /// Per-run scheduling strategy (bandit arms vary it).
        strategy: StrategyKind,
    },
    /// Worker → orchestrator: the `Run` frame was received.
    Ack {
        /// Iteration being acknowledged.
        iter: u64,
    },
    /// Worker → orchestrator: liveness beacon.
    Heartbeat {
        /// Iteration currently being served (0 when idle).
        iter: u64,
    },
    /// Worker → orchestrator: the result, inline on the pipe.
    Result {
        /// Iteration the result belongs to.
        iter: u64,
        /// The run's full result (boxed: dwarfs the other variants).
        result: Box<RunResult>,
    },
    /// Worker → orchestrator: the result was written to shm slot `slot`
    /// (`len` bytes of [`encode_result`] output); only this reference
    /// crosses the pipe.
    ResultShm {
        /// Iteration the result belongs to.
        iter: u64,
        /// Ring slot holding the encoded result.
        slot: u64,
        /// Encoded byte length within the slot.
        len: u64,
    },
}

const F_READY: u8 = 0;
const F_INIT: u8 = 1;
const F_RUN: u8 = 2;
const F_ACK: u8 = 3;
const F_HEARTBEAT: u8 = 4;
const F_RESULT: u8 = 5;
const F_RESULT_SHM: u8 = 6;

fn put_strategy(buf: &mut Vec<u8>, s: &StrategyKind) {
    match s {
        StrategyKind::Native => buf.push(0),
        StrategyKind::Random => buf.push(1),
        StrategyKind::Pct { depth, length } => {
            buf.push(2);
            put_uvarint(buf, u64::from(*depth));
            put_uvarint(buf, u64::from(*length));
        }
    }
}

fn get_strategy(r: &mut Reader<'_>) -> io::Result<StrategyKind> {
    Ok(match r.u8()? {
        0 => StrategyKind::Native,
        1 => StrategyKind::Random,
        2 => StrategyKind::Pct { depth: r.uvarint()? as u32, length: r.uvarint()? as u32 },
        other => return Err(err(format_args!("bad strategy tag {other}"))),
    })
}

fn put_replay_log(buf: &mut Vec<u8>, log: &ReplayLog) {
    put_uvarint(buf, log.decisions.len() as u64);
    for d in &log.decisions {
        match d {
            Decision::Pick(g) => {
                buf.push(0);
                put_uvarint(buf, g.0);
            }
            Decision::SelectChoice(c) => {
                buf.push(1);
                put_uvarint(buf, *c as u64);
            }
            Decision::YieldAt(y) => {
                buf.push(2);
                put_bool(buf, *y);
            }
        }
    }
}

fn get_replay_log(r: &mut Reader<'_>) -> io::Result<ReplayLog> {
    let n = r.uvarint()? as usize;
    if n > r.remaining() {
        return Err(err("decision count exceeds payload"));
    }
    let mut decisions = Vec::with_capacity(n);
    for _ in 0..n {
        decisions.push(match r.u8()? {
            0 => Decision::Pick(Gid(r.uvarint()?)),
            1 => Decision::SelectChoice(r.uvarint()? as usize),
            2 => Decision::YieldAt(r.bool()?),
            other => return Err(err(format_args!("bad decision tag {other}"))),
        });
    }
    Ok(ReplayLog { decisions })
}

fn put_policy(buf: &mut Vec<u8>, p: &SchedPolicy) {
    match p {
        SchedPolicy::Native => buf.push(0),
        SchedPolicy::UniformRandom => buf.push(1),
        SchedPolicy::Replay(log) => {
            buf.push(2);
            put_replay_log(buf, log);
        }
    }
}

fn get_policy(r: &mut Reader<'_>) -> io::Result<SchedPolicy> {
    Ok(match r.u8()? {
        0 => SchedPolicy::Native,
        1 => SchedPolicy::UniformRandom,
        2 => SchedPolicy::Replay(get_replay_log(r)?),
        other => return Err(err(format_args!("bad policy tag {other}"))),
    })
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_uvarint(buf, v);
        }
        None => buf.push(0),
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> io::Result<Option<u64>> {
    Ok(match r.bool()? {
        true => Some(r.uvarint()?),
        false => None,
    })
}

fn put_opt_i32(buf: &mut Vec<u8>, v: Option<i32>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_ivarint(buf, i64::from(v));
        }
        None => buf.push(0),
    }
}

fn get_opt_i32(r: &mut Reader<'_>) -> io::Result<Option<i32>> {
    Ok(match r.bool()? {
        true => Some(r.ivarint()? as i32),
        false => None,
    })
}

/// Append the full [`Config`] in wire form (every field, declaration
/// order). Used for the `Init` base and for init-hash computation.
pub fn encode_config(cfg: &Config, buf: &mut Vec<u8>) {
    put_uvarint(buf, cfg.seed);
    put_f64(buf, cfg.native_preempt_prob);
    put_uvarint(buf, u64::from(cfg.delay_bound));
    put_f64(buf, cfg.yield_prob);
    put_uvarint(buf, cfg.max_steps);
    put_uvarint(buf, cfg.time_step_ns);
    put_bool(buf, cfg.trace);
    put_uvarint(buf, cfg.max_trace_events as u64);
    put_policy(buf, &cfg.policy);
    put_strategy(buf, &cfg.strategy);
    put_bool(buf, cfg.pool);
    put_opt_u64(buf, cfg.iter_timeout_ms);
    put_uvarint(buf, u64::from(cfg.spin));
}

/// Decode a [`Config`] written by [`encode_config`].
pub fn decode_config(r: &mut Reader<'_>) -> io::Result<Config> {
    Ok(Config {
        seed: r.uvarint()?,
        native_preempt_prob: r.f64()?,
        delay_bound: r.uvarint()? as u32,
        yield_prob: r.f64()?,
        max_steps: r.uvarint()?,
        time_step_ns: r.uvarint()?,
        trace: r.bool()?,
        max_trace_events: r.uvarint()? as usize,
        policy: get_policy(r)?,
        strategy: get_strategy(r)?,
        pool: r.bool()?,
        iter_timeout_ms: get_opt_u64(r)?,
        spin: r.uvarint()? as u32,
    })
}

fn put_forensics(buf: &mut Vec<u8>, f: &CrashForensics) {
    put_opt_i32(buf, f.signal);
    put_opt_i32(buf, f.exit_code);
    put_str(buf, &f.stderr_tail);
    put_opt_u64(buf, f.last_ack_iter);
    put_str(buf, &f.summary);
}

fn get_forensics(r: &mut Reader<'_>) -> io::Result<CrashForensics> {
    Ok(CrashForensics {
        signal: get_opt_i32(r)?,
        exit_code: get_opt_i32(r)?,
        stderr_tail: r.str()?.to_string(),
        last_ack_iter: get_opt_u64(r)?,
        summary: r.str()?.to_string(),
    })
}

fn put_outcome(buf: &mut Vec<u8>, o: &RunOutcome) {
    match o {
        RunOutcome::Completed => buf.push(0),
        RunOutcome::GlobalDeadlock { blocked } => {
            buf.push(1);
            put_uvarint(buf, blocked.len() as u64);
            for g in blocked {
                put_uvarint(buf, g.0);
            }
        }
        RunOutcome::Panicked { g, msg } => {
            buf.push(2);
            put_uvarint(buf, g.0);
            put_str(buf, msg);
        }
        RunOutcome::StepLimit => buf.push(3),
        RunOutcome::TimedOut { phase, elapsed_ms } => {
            buf.push(4);
            buf.push(match phase {
                TimeoutPhase::Cooperative => 0,
                TimeoutPhase::Wedged => 1,
            });
            put_uvarint(buf, *elapsed_ms);
        }
        RunOutcome::InfraFailure { reason } => {
            buf.push(5);
            put_str(buf, reason);
        }
        RunOutcome::Crashed { forensics } => {
            buf.push(6);
            put_forensics(buf, forensics);
        }
    }
}

fn get_outcome(r: &mut Reader<'_>) -> io::Result<RunOutcome> {
    Ok(match r.u8()? {
        0 => RunOutcome::Completed,
        1 => {
            let n = r.uvarint()? as usize;
            if n > r.remaining() {
                return Err(err("blocked-goroutine count exceeds payload"));
            }
            let mut blocked = Vec::with_capacity(n);
            for _ in 0..n {
                blocked.push(Gid(r.uvarint()?));
            }
            RunOutcome::GlobalDeadlock { blocked }
        }
        2 => RunOutcome::Panicked { g: Gid(r.uvarint()?), msg: r.str()?.to_string() },
        3 => RunOutcome::StepLimit,
        4 => RunOutcome::TimedOut {
            phase: match r.u8()? {
                0 => TimeoutPhase::Cooperative,
                1 => TimeoutPhase::Wedged,
                other => return Err(err(format_args!("bad timeout phase {other}"))),
            },
            elapsed_ms: r.uvarint()?,
        },
        5 => RunOutcome::InfraFailure { reason: r.str()?.to_string() },
        6 => RunOutcome::Crashed { forensics: get_forensics(r)? },
        other => return Err(err(format_args!("bad outcome tag {other}"))),
    })
}

/// Append a full [`RunResult`] in wire form. The trace, when present,
/// travels through the varint-delta event codec of
/// [`goat_trace::wire`]; this is also the payload format of a
/// shared-memory slot.
pub fn encode_result(result: &RunResult, buf: &mut Vec<u8>) {
    put_outcome(buf, &result.outcome);
    match &result.ect {
        Some(ect) => {
            buf.push(1);
            goat_trace::wire::encode_events(ect.events(), buf);
        }
        None => buf.push(0),
    }
    put_uvarint(buf, result.steps);
    put_uvarint(buf, result.vclock.0);
    put_uvarint(buf, result.goroutines);
    put_uvarint(buf, u64::from(result.yields_injected));
    put_uvarint(buf, u64::from(result.priority_changes));
    put_uvarint(buf, result.alive_at_end.len() as u64);
    for a in &result.alive_at_end {
        put_uvarint(buf, a.g.0);
        put_str(buf, &a.name);
        put_str(buf, &a.state);
        put_bool(buf, a.internal);
    }
    put_replay_log(buf, &result.schedule);
    put_bool(buf, result.replay_diverged);
    for c in [
        result.sched.picks,
        result.sched.random_picks,
        result.sched.blocks,
        result.sched.unblocks,
        result.sched.yields_preempt,
        result.sched.yields_gosched,
        result.sched.timer_fires,
        result.sched.select_choices,
    ] {
        put_uvarint(buf, c);
    }
    // Fixed 8 bytes: fingerprints are FNV state, uniformly distributed,
    // so a varint would *grow* them.
    buf.extend_from_slice(&result.fingerprint.to_le_bytes());
    match &result.panic_detail {
        Some(d) => {
            buf.push(1);
            put_str(buf, d);
        }
        None => buf.push(0),
    }
}

/// Decode a [`RunResult`] written by [`encode_result`].
pub fn decode_result(r: &mut Reader<'_>) -> io::Result<RunResult> {
    let outcome = get_outcome(r)?;
    let ect = match r.bool()? {
        true => {
            let events = goat_trace::wire::decode_events(r)?;
            // `Ect::from_events` asserts density; on cross-process bytes
            // corruption must surface as an error, not a panic.
            if events.iter().enumerate().any(|(i, ev)| ev.seq as usize != i) {
                return Err(err("trace sequence numbers are not dense"));
            }
            Some(Ect::from_events(events))
        }
        false => None,
    };
    let steps = r.uvarint()?;
    let vclock = VTime(r.uvarint()?);
    let goroutines = r.uvarint()?;
    let yields_injected = r.uvarint()? as u32;
    let priority_changes = r.uvarint()? as u32;
    let n_alive = r.uvarint()? as usize;
    if n_alive > r.remaining() {
        return Err(err("alive-goroutine count exceeds payload"));
    }
    let mut alive_at_end = Vec::with_capacity(n_alive);
    for _ in 0..n_alive {
        alive_at_end.push(AliveGoroutine {
            g: Gid(r.uvarint()?),
            name: r.str()?.to_string(),
            state: r.str()?.to_string(),
            internal: r.bool()?,
        });
    }
    let schedule = get_replay_log(r)?;
    let replay_diverged = r.bool()?;
    let mut counters = [0u64; 8];
    for c in &mut counters {
        *c = r.uvarint()?;
    }
    let sched = SchedCounters {
        picks: counters[0],
        random_picks: counters[1],
        blocks: counters[2],
        unblocks: counters[3],
        yields_preempt: counters[4],
        yields_gosched: counters[5],
        timer_fires: counters[6],
        select_choices: counters[7],
    };
    let mut fp = [0u8; 8];
    fp.copy_from_slice(r.bytes_fixed(8)?);
    let fingerprint = u64::from_le_bytes(fp);
    let panic_detail = match r.bool()? {
        true => Some(r.str()?.to_string()),
        false => None,
    };
    Ok(RunResult {
        outcome,
        ect,
        steps,
        vclock,
        goroutines,
        yields_injected,
        priority_changes,
        alive_at_end,
        schedule,
        replay_diverged,
        sched,
        fingerprint,
        panic_detail,
    })
}

/// Append one frame in wire form — `[u32 LE payload length][tag][…]` —
/// to `buf` (batching concatenates frames into one write).
pub fn encode_frame_into(frame: &WireFrame, buf: &mut Vec<u8>) -> io::Result<()> {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    match frame {
        WireFrame::Ready => buf.push(F_READY),
        WireFrame::Init { program, shm_path, slot_len, slots, base } => {
            buf.push(F_INIT);
            put_str(buf, program);
            put_str(buf, shm_path);
            put_uvarint(buf, *slot_len);
            put_uvarint(buf, *slots);
            encode_config(base, buf);
        }
        WireFrame::Run { iter, seed, delay_bound, yield_prob, strategy } => {
            buf.push(F_RUN);
            put_uvarint(buf, *iter);
            put_uvarint(buf, *seed);
            put_uvarint(buf, u64::from(*delay_bound));
            put_f64(buf, *yield_prob);
            put_strategy(buf, strategy);
        }
        WireFrame::Ack { iter } => {
            buf.push(F_ACK);
            put_uvarint(buf, *iter);
        }
        WireFrame::Heartbeat { iter } => {
            buf.push(F_HEARTBEAT);
            put_uvarint(buf, *iter);
        }
        WireFrame::Result { iter, result } => {
            buf.push(F_RESULT);
            put_uvarint(buf, *iter);
            encode_result(result, buf);
        }
        WireFrame::ResultShm { iter, slot, len } => {
            buf.push(F_RESULT_SHM);
            put_uvarint(buf, *iter);
            put_uvarint(buf, *slot);
            put_uvarint(buf, *len);
        }
    }
    let payload_len = buf.len() - start - 4;
    let Ok(len32) = u32::try_from(payload_len) else {
        buf.truncate(start);
        return Err(err("frame payload exceeds the u32 length prefix"));
    };
    buf[start..start + 4].copy_from_slice(&len32.to_le_bytes());
    Ok(())
}

/// Decode one frame payload (the bytes after the length prefix).
pub fn decode_frame(payload: &[u8]) -> io::Result<WireFrame> {
    let mut r = Reader::new(payload);
    let frame = match r.u8()? {
        F_READY => WireFrame::Ready,
        F_INIT => WireFrame::Init {
            program: r.str()?.to_string(),
            shm_path: r.str()?.to_string(),
            slot_len: r.uvarint()?,
            slots: r.uvarint()?,
            base: Box::new(decode_config(&mut r)?),
        },
        F_RUN => WireFrame::Run {
            iter: r.uvarint()?,
            seed: r.uvarint()?,
            delay_bound: r.uvarint()? as u32,
            yield_prob: r.f64()?,
            strategy: get_strategy(&mut r)?,
        },
        F_ACK => WireFrame::Ack { iter: r.uvarint()? },
        F_HEARTBEAT => WireFrame::Heartbeat { iter: r.uvarint()? },
        F_RESULT => {
            let iter = r.uvarint()?;
            WireFrame::Result { iter, result: Box::new(decode_result(&mut r)?) }
        }
        F_RESULT_SHM => {
            WireFrame::ResultShm { iter: r.uvarint()?, slot: r.uvarint()?, len: r.uvarint()? }
        }
        other => return Err(err(format_args!("bad frame tag {other}"))),
    };
    if !r.is_empty() {
        return Err(err(format_args!("{} trailing bytes after frame", r.remaining())));
    }
    Ok(frame)
}

/// FNV-1a over a byte string — the init-hash primitive: the
/// orchestrator hashes (program, encoded base config, fault-plan spec,
/// shm geometry) to decide whether a checked-out worker's cached `Init`
/// state is still valid.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &WireFrame) -> WireFrame {
        let mut buf = Vec::new();
        encode_frame_into(frame, &mut buf).expect("encode");
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(len, buf.len() - 4);
        decode_frame(&buf[4..]).expect("decode")
    }

    #[test]
    fn small_frames_roundtrip() {
        for frame in [
            WireFrame::Ready,
            WireFrame::Ack { iter: 7 },
            WireFrame::Heartbeat { iter: 0 },
            WireFrame::ResultShm { iter: 9, slot: 3, len: 12345 },
            WireFrame::Run {
                iter: 41,
                seed: u64::MAX,
                delay_bound: 3,
                yield_prob: 0.25,
                strategy: StrategyKind::Pct { depth: 4, length: 256 },
            },
        ] {
            // No PartialEq on RunResult/Config-bearing frames; Debug
            // renders every field, so equal strings mean equal frames.
            assert_eq!(format!("{:?}", roundtrip(&frame)), format!("{frame:?}"));
        }
    }

    #[test]
    fn run_frames_are_small() {
        let mut buf = Vec::new();
        encode_frame_into(
            &WireFrame::Run {
                iter: 1000,
                seed: 123_456_789,
                delay_bound: 3,
                yield_prob: 0.5,
                strategy: StrategyKind::Native,
            },
            &mut buf,
        )
        .unwrap();
        // The whole point of Init/Run splitting: a Run frame is tens of
        // bytes, not a JSON-rendered Config.
        assert!(buf.len() < 32, "run frame is {} bytes", buf.len());
    }

    #[test]
    fn init_frame_roundtrips_the_full_config() {
        let base = Config {
            seed: 0,
            native_preempt_prob: 0.02,
            delay_bound: 0,
            yield_prob: 0.0,
            max_steps: 123_456,
            time_step_ns: 10_000,
            trace: true,
            max_trace_events: 1_000_000,
            policy: SchedPolicy::Replay(ReplayLog {
                decisions: vec![
                    Decision::Pick(Gid(3)),
                    Decision::SelectChoice(2),
                    Decision::YieldAt(true),
                ],
            }),
            strategy: StrategyKind::Random,
            pool: false,
            iter_timeout_ms: Some(2000),
            spin: 100,
        };
        let frame = WireFrame::Init {
            program: "etcd6708".into(),
            shm_path: "/tmp/goat-shm-1-2".into(),
            slot_len: 16 << 20,
            slots: 8,
            base: Box::new(base.clone()),
        };
        let WireFrame::Init { base: back, .. } = roundtrip(&frame) else { panic!("wrong frame") };
        // Config has no PartialEq; compare through the JSON codec.
        assert_eq!(serde_json::to_string(&*back).unwrap(), serde_json::to_string(&base).unwrap());
    }

    #[test]
    fn result_frame_roundtrips_every_outcome() {
        let outcomes = vec![
            RunOutcome::Completed,
            RunOutcome::GlobalDeadlock { blocked: vec![Gid(2), Gid(5)] },
            RunOutcome::Panicked { g: Gid(3), msg: "send on closed channel".into() },
            RunOutcome::StepLimit,
            RunOutcome::TimedOut { phase: TimeoutPhase::Wedged, elapsed_ms: 777 },
            RunOutcome::InfraFailure { reason: "spawn failed".into() },
            RunOutcome::Crashed {
                forensics: CrashForensics {
                    signal: Some(11),
                    exit_code: None,
                    stderr_tail: "segfault at 0x0".into(),
                    last_ack_iter: Some(41),
                    summary: "killed by signal 11 (SIGSEGV)".into(),
                },
            },
        ];
        for outcome in outcomes {
            let result = RunResult {
                outcome,
                ect: None,
                steps: 99,
                vclock: VTime(990_000),
                goroutines: 4,
                yields_injected: 2,
                priority_changes: 1,
                alive_at_end: vec![AliveGoroutine {
                    g: Gid(2),
                    name: "worker".into(),
                    state: "blocked: send".into(),
                    internal: false,
                }],
                schedule: ReplayLog { decisions: vec![Decision::Pick(Gid(1))] },
                replay_diverged: false,
                sched: SchedCounters { picks: 9, blocks: 3, ..Default::default() },
                fingerprint: 0xdead_beef_cafe_f00d,
                panic_detail: Some("panicked at kernel.rs:7".into()),
            };
            let frame = WireFrame::Result { iter: 12, result: Box::new(result.clone()) };
            let WireFrame::Result { iter, result: back } = roundtrip(&frame) else {
                panic!("wrong frame")
            };
            assert_eq!(iter, 12);
            assert_eq!(
                serde_json::to_string(&*back).unwrap(),
                serde_json::to_string(&result).unwrap()
            );
        }
    }

    #[test]
    fn corrupt_payloads_are_invalid_data_not_panics() {
        for payload in [
            &[][..],
            &[99][..],              // bad frame tag
            &[F_RUN, 0x80][..],     // truncated varint
            &[F_RESULT, 1, 7][..],  // truncated result
            &[F_ACK, 1, 1][..],     // trailing bytes
            &[F_INIT, 2, b'x'][..], // truncated string
        ] {
            let e = decode_frame(payload).expect_err("must reject");
            assert_eq!(e.kind(), ErrorKind::InvalidData, "payload {payload:?}");
        }
    }

    #[test]
    fn non_dense_trace_is_rejected() {
        // Hand-craft a Result frame whose trace has seq 0, 2.
        use goat_trace::{Event, EventKind};
        let events = vec![
            Event { seq: 0, ts: VTime(0), g: Gid(1), kind: EventKind::GoStart, cu: None },
            Event { seq: 2, ts: VTime(1), g: Gid(1), kind: EventKind::GoEnd, cu: None },
        ];
        let mut payload = vec![F_RESULT];
        put_uvarint(&mut payload, 1); // iter
        payload.push(0); // outcome: Completed
        payload.push(1); // ect present
        goat_trace::wire::encode_events(&events, &mut payload);
        let e = decode_frame(&payload).expect_err("must reject");
        assert_eq!(e.kind(), ErrorKind::InvalidData);
        assert!(e.to_string().contains("dense"));
    }

    #[test]
    fn fnv_is_stable_and_discriminating() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        encode_config(&Config::new(0), &mut buf_a);
        encode_config(&Config::new(0).with_delay_bound(1), &mut buf_b);
        assert_ne!(fnv1a64(&buf_a), fnv1a64(&buf_b));
    }
}
