//! The GoAT testing campaign: iterate executions until the bug is hit or
//! a coverage threshold / iteration budget is reached (paper §III-A,
//! "Offline Analysis" loop).

use crate::analysis::{analyze_run, analyze_run_with, GoatVerdict};
use crate::bandit::{Arm, Bandit, GuidedSummary, GUIDED_LAG};
use crate::checkpoint::{self, CampaignCheckpoint};
use crate::coverage::RunCoverage;
use crate::globaltree::GlobalGTree;
use crate::plane::EctBuffers;
use crate::program::Program;
use goat_detectors::{Detector, ProgramFn, ToolVerdict};
use goat_metrics::{Histogram, HistogramSnapshot};
use goat_model::{scan_sources, CoverageSet, CuTable, RequirementUniverse};
use goat_runtime::pool::PoolStats;
use goat_runtime::{
    go_internal, Chan, Config, RunOutcome, RunResult, Runtime, SchedCounters, StrategyKind,
};
use goat_trace::{Ect, GTree, TracePoolStats};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

/// Duplicate-schedule analysis memoization mode (`GOAT_MEMO`, or the
/// `-memo` flag).
///
/// Delay-bound campaigns revisit the same interleaving often — small
/// kernels have few distinct schedules, and perturbation draws collide.
/// The runtime stamps every run with an online schedule fingerprint
/// ([`goat_runtime::RunResult::fingerprint`]); two runs with the same
/// fingerprint *and* the same outcome produced the same trace modulo
/// timestamps, so their analysis products (goroutine tree, coverage,
/// verdict) are identical and the second analysis can be skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoMode {
    /// Analyze every iteration from scratch.
    Off,
    /// Reuse stored analysis products for duplicate schedules (default).
    On,
    /// Reuse *and* re-analyze duplicates, asserting the stored products
    /// equal the fresh ones — the memoization self-check.
    Verify,
}

/// Process-wide default from `GOAT_MEMO`: `0`/`off` disables,
/// `verify` enables the self-checking mode, anything else (including
/// unset) leaves memoization on.
fn default_memo() -> MemoMode {
    static MEMO: OnceLock<MemoMode> = OnceLock::new();
    *MEMO.get_or_init(|| match std::env::var("GOAT_MEMO").ok().as_deref() {
        Some("0") | Some("off") => MemoMode::Off,
        Some("verify") => MemoMode::Verify,
        _ => MemoMode::On,
    })
}

/// Memo key: the run's schedule fingerprint FNV-folded with its
/// outcome. The verdict depends on the outcome variant (and its
/// strings) as well as the trace, so runs that share a schedule but
/// end differently must never share an entry.
fn memo_key(fingerprint: u64, outcome: &RunOutcome) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    fn fold(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    let mut h = fingerprint;
    match outcome {
        RunOutcome::Completed => fold(&mut h, &[1]),
        // The verdict for a deadlocked-or-completed run comes from the
        // tree alone; the blocked set is derivable from the trace, so
        // the discriminant suffices.
        RunOutcome::GlobalDeadlock { .. } => fold(&mut h, &[2]),
        RunOutcome::StepLimit => fold(&mut h, &[3]),
        RunOutcome::Panicked { g, msg } => {
            fold(&mut h, &[4]);
            fold(&mut h, &g.0.to_le_bytes());
            fold(&mut h, msg.as_bytes());
        }
        // `elapsed_ms` is wall-clock noise and deliberately excluded;
        // the escalation phase changes teardown (and thus the verdict's
        // evidence), so it is part of the key.
        RunOutcome::TimedOut { phase, .. } => {
            fold(&mut h, &[5, matches!(phase, goat_runtime::TimeoutPhase::Wedged) as u8]);
        }
        RunOutcome::InfraFailure { reason } => {
            fold(&mut h, &[6]);
            fold(&mut h, reason.as_bytes());
        }
        // Worker deaths never carry a trace, so no memo entry is ever
        // stored for them; the arm exists for exhaustiveness and keys on
        // the forensics that feed the verdict.
        RunOutcome::Crashed { forensics } => {
            fold(&mut h, &[7]);
            fold(&mut h, &forensics.signal.unwrap_or(0).to_le_bytes());
            fold(&mut h, &forensics.exit_code.unwrap_or(0).to_le_bytes());
            fold(&mut h, forensics.summary.as_bytes());
        }
    }
    h
}

/// Campaign configuration (the tool's command-line knobs: `-d`, `-freq`,
/// `-cov`, …).
#[derive(Debug, Clone)]
pub struct GoatConfig {
    /// Delay bound `D`: maximum injected yields per execution.
    pub delay_bound: u32,
    /// Maximum testing iterations (`-freq`).
    pub iterations: usize,
    /// First seed; iteration `i` uses `seed0 + i`.
    pub seed0: u64,
    /// Stop as soon as a bug is detected.
    pub stop_on_bug: bool,
    /// Stop once coverage reaches this percentage (requires tracing).
    pub coverage_threshold: Option<f64>,
    /// Native scheduler noise ε passed through to the runtime.
    pub native_preempt_prob: f64,
    /// Watchdog step bound per execution.
    pub max_steps: u64,
    /// Host threads running iterations concurrently (runs are fully
    /// independent; results are identical to the sequential campaign
    /// because per-iteration seeds are fixed and merged in order).
    /// Defaults to the `GOAT_PARALLELISM` environment variable (1 when
    /// unset), so CI can sweep the streaming executor without code
    /// changes.
    pub parallelism: usize,
    /// Run goroutines on the shared worker-thread pool (see
    /// [`goat_runtime::Config::pool`]); scheduling is identical either
    /// way, the pool only removes thread-creation cost.
    pub pool: bool,
    /// Wall-clock watchdog per iteration, milliseconds (see
    /// [`goat_runtime::Config::iter_timeout_ms`]). Defaults to the
    /// `GOAT_ITER_TIMEOUT_MS` environment variable (off when unset).
    pub iter_timeout_ms: Option<u64>,
    /// Retries (with bounded exponential backoff) for *infra*-classified
    /// failures — pool checkout or thread-spawn errors, never kernel
    /// verdicts. Defaults to `GOAT_MAX_RETRIES` (2 when unset).
    pub max_retries: u32,
    /// Quarantine the kernel after this many *consecutive* iterations
    /// whose infra retries were exhausted: the campaign stops and the
    /// remaining budget is reported as skipped-with-reason instead of
    /// grinding a broken environment. Defaults to
    /// `GOAT_QUARANTINE_AFTER` (3 when unset); 0 disables.
    pub quarantine_after: u32,
    /// Quarantine after this many consecutive *crashed* iterations
    /// (kernel panics). Defaults to `GOAT_QUARANTINE_CRASHES`; 0 (the
    /// default) disables, so repeat-crashing kernels keep recording
    /// `Crashed` verdicts unless explicitly opted in.
    pub quarantine_crashes: u32,
    /// Checkpoint sidecar path: the streaming runner periodically
    /// persists completed-seed ranges plus merged coverage there, and
    /// resumes from it byte-identically. Defaults to the
    /// `GOAT_CHECKPOINT` environment variable (off when unset).
    pub checkpoint: Option<PathBuf>,
    /// Merged iterations between checkpoint writes. Defaults to
    /// `GOAT_CHECKPOINT_EVERY` (8 when unset).
    pub checkpoint_every: usize,
    /// Duplicate-schedule analysis memoization. Defaults to the
    /// `GOAT_MEMO` environment variable ([`MemoMode::On`] when unset).
    /// Memoization never changes campaign results — only how often the
    /// fused analysis pass actually runs.
    pub memo: MemoMode,
    /// Scheduling strategy for every iteration (see
    /// [`goat_runtime::StrategyKind`]). Defaults to the `GOAT_STRATEGY`
    /// environment variable (native when unset). Guided mode overrides
    /// this per iteration with the selected arm's strategy.
    pub strategy: StrategyKind,
    /// Coverage-guided exploration: pick each iteration's (strategy,
    /// yield_prob, delay_bound) with a deterministic epsilon-greedy
    /// bandit fed by per-iteration coverage deltas (see
    /// [`crate::bandit`]). Defaults to the `GOAT_GUIDED` environment
    /// variable (`1`/`true` enables).
    pub guided: bool,
    /// Coverage-saturation early stop: end the campaign after this many
    /// *consecutive* iterations with a zero coverage delta. Defaults to
    /// `GOAT_SATURATION_WINDOW` (off when unset or 0).
    pub saturation_window: Option<usize>,
    /// Token-handoff spin budget override passed through to
    /// [`goat_runtime::Config::spin`]; `None` leaves the runtime's own
    /// default (the `GOAT_SPIN` environment variable, 100 when unset).
    pub spin: Option<u32>,
    /// Process-isolation mode: [`IsolateMode::Proc`] runs every
    /// iteration inside a sandboxed worker subprocess (spawned from
    /// [`GoatConfig::worker_cmd`]) so a crashing or leaky kernel cannot
    /// take the campaign down. Defaults to the `GOAT_ISOLATE`
    /// environment variable (off when unset). Reports and traces are
    /// byte-identical to in-process execution for non-crashing runs.
    pub isolate: crate::isolate::IsolateMode,
    /// Worker binary for [`IsolateMode::Proc`] (invoked with a hidden
    /// `--worker` argument). Defaults to the `GOAT_WORKER_CMD`
    /// environment variable; `None` falls back to the current
    /// executable.
    pub worker_cmd: Option<String>,
    /// IPC payload encoding on the worker wire (see
    /// [`crate::isolate::IpcMode`]): compact binary frames by default,
    /// JSON as the debug/compat path. Defaults to the `GOAT_IPC`
    /// environment variable. Results are byte-identical either way.
    pub ipc: crate::isolate::IpcMode,
    /// Ship bulky result payloads through a file-backed shared-memory
    /// ring instead of the pipe (binary mode only; falls back to the
    /// pipe when mapping fails). Defaults to the `GOAT_IPC_SHM`
    /// environment variable (off when unset).
    pub ipc_shm: bool,
    /// `Run` frames sent to a worker per pipe write. Batching amortizes
    /// write/wake costs; the effective batch is capped at the guided
    /// bandit's feedback lag so guided campaigns stay byte-identical
    /// to sequential ones. Defaults to `GOAT_IPC_BATCH` (1 when unset).
    pub ipc_batch: usize,
}

impl Default for GoatConfig {
    fn default() -> Self {
        GoatConfig {
            delay_bound: 0,
            iterations: 100,
            seed0: 1,
            stop_on_bug: true,
            coverage_threshold: None,
            native_preempt_prob: 0.02,
            max_steps: 200_000,
            parallelism: std::env::var("GOAT_PARALLELISM")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or(1),
            pool: true,
            iter_timeout_ms: std::env::var("GOAT_ITER_TIMEOUT_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|ms| *ms > 0),
            max_retries: env_u32("GOAT_MAX_RETRIES", 2),
            quarantine_after: env_u32("GOAT_QUARANTINE_AFTER", 3),
            quarantine_crashes: env_u32("GOAT_QUARANTINE_CRASHES", 0),
            checkpoint: std::env::var(checkpoint::CHECKPOINT_ENV)
                .ok()
                .filter(|p| !p.is_empty())
                .map(PathBuf::from),
            checkpoint_every: std::env::var(checkpoint::CHECKPOINT_EVERY_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or(8),
            memo: default_memo(),
            spin: None,
            strategy: StrategyKind::from_env(),
            guided: matches!(
                std::env::var("GOAT_GUIDED").ok().as_deref(),
                Some("1") | Some("true") | Some("on")
            ),
            saturation_window: std::env::var("GOAT_SATURATION_WINDOW")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|n| *n >= 1),
            isolate: crate::isolate::IsolateMode::from_env(),
            worker_cmd: std::env::var(crate::isolate::WORKER_CMD_ENV)
                .ok()
                .filter(|v| !v.is_empty()),
            ipc: crate::isolate::IpcMode::from_env(),
            ipc_shm: matches!(
                std::env::var(crate::isolate::IPC_SHM_ENV).ok().as_deref(),
                Some("1") | Some("on") | Some("true") | Some("yes")
            ),
            ipc_batch: std::env::var(crate::isolate::IPC_BATCH_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or(1),
        }
    }
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name).ok().and_then(|v| v.parse::<u32>().ok()).unwrap_or(default)
}

impl GoatConfig {
    /// Config with delay bound `d` (the paper's GOAT-D0 … GOAT-D4).
    pub fn with_delay_bound(mut self, d: u32) -> Self {
        self.delay_bound = d;
        self
    }

    /// Set the iteration budget.
    pub fn with_iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }

    /// Set the base seed.
    pub fn with_seed0(mut self, s: u64) -> Self {
        self.seed0 = s;
        self
    }

    /// Keep running after a bug is found (for coverage studies).
    pub fn keep_running(mut self) -> Self {
        self.stop_on_bug = false;
        self
    }

    /// Run iterations on `n` host threads (default 1 = sequential).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        assert!(n >= 1, "parallelism must be at least 1");
        self.parallelism = n;
        self
    }

    /// Enable or disable the shared goroutine worker-thread pool.
    pub fn with_pool(mut self, on: bool) -> Self {
        self.pool = on;
        self
    }

    /// Set (or clear) the per-iteration wall-clock watchdog.
    pub fn with_iter_timeout_ms(mut self, ms: Option<u64>) -> Self {
        self.iter_timeout_ms = ms.filter(|v| *v > 0);
        self
    }

    /// Set the infra-failure retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Quarantine after `n` consecutive infra-exhausted iterations
    /// (0 disables).
    pub fn with_quarantine_after(mut self, n: u32) -> Self {
        self.quarantine_after = n;
        self
    }

    /// Quarantine after `n` consecutive crashed iterations (0 disables).
    pub fn with_quarantine_crashes(mut self, n: u32) -> Self {
        self.quarantine_crashes = n;
        self
    }

    /// Persist/resume campaign state at `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Set the checkpoint cadence (merged iterations between writes).
    pub fn with_checkpoint_every(mut self, n: usize) -> Self {
        assert!(n >= 1, "checkpoint cadence must be at least 1");
        self.checkpoint_every = n;
        self
    }

    /// Set the analysis memoization mode (overrides `GOAT_MEMO`).
    pub fn with_memo(mut self, mode: MemoMode) -> Self {
        self.memo = mode;
        self
    }

    /// Set the token-handoff spin budget (overrides `GOAT_SPIN`;
    /// 0 parks immediately).
    pub fn with_spin(mut self, spin: u32) -> Self {
        self.spin = Some(spin);
        self
    }

    /// Set the scheduling strategy (overrides `GOAT_STRATEGY`).
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enable or disable coverage-guided exploration.
    pub fn with_guided(mut self, on: bool) -> Self {
        self.guided = on;
        self
    }

    /// Set (or clear) the coverage-saturation early-stop window.
    pub fn with_saturation_window(mut self, window: Option<usize>) -> Self {
        self.saturation_window = window.filter(|n| *n >= 1);
        self
    }

    /// Set the process-isolation mode (overrides `GOAT_ISOLATE`).
    pub fn with_isolate(mut self, mode: crate::isolate::IsolateMode) -> Self {
        self.isolate = mode;
        self
    }

    /// Set the worker binary for process isolation (overrides
    /// `GOAT_WORKER_CMD`).
    pub fn with_worker_cmd(mut self, cmd: impl Into<String>) -> Self {
        self.worker_cmd = Some(cmd.into());
        self
    }

    /// Set the IPC payload encoding (overrides `GOAT_IPC`).
    pub fn with_ipc(mut self, mode: crate::isolate::IpcMode) -> Self {
        self.ipc = mode;
        self
    }

    /// Enable or disable the shared-memory result ring (overrides
    /// `GOAT_IPC_SHM`; only effective under binary IPC).
    pub fn with_ipc_shm(mut self, on: bool) -> Self {
        self.ipc_shm = on;
        self
    }

    /// Set the worker run-batching window (overrides `GOAT_IPC_BATCH`).
    pub fn with_ipc_batch(mut self, n: usize) -> Self {
        assert!(n >= 1, "IPC batch must be at least 1");
        self.ipc_batch = n;
        self
    }

    /// The batch of iterations shipped to a worker per pipe write: 1
    /// unless process isolation is on, and capped at the guided
    /// bandit's feedback lag — a run's arm selection may only read
    /// rewards merged at least [`GUIDED_LAG`] iterations behind it, so
    /// a larger batch would let execution outrun the rewards it needs.
    pub(crate) fn effective_batch(&self) -> usize {
        if self.isolate != crate::isolate::IsolateMode::Proc {
            return 1;
        }
        let batch = self.ipc_batch.max(1);
        if self.guided {
            batch.min(GUIDED_LAG)
        } else {
            batch
        }
    }

    /// The resolved IPC data-plane settings for this campaign.
    pub(crate) fn ipc_spec(&self) -> crate::isolate::IpcSpec {
        crate::isolate::IpcSpec { mode: self.ipc, shm: self.ipc_shm, batch: self.effective_batch() }
    }

    /// Runtime config for iteration `iter`; a guided campaign overlays
    /// the selected arm's (strategy, yield_prob, delay_bound) on top of
    /// the base knobs. `arm = None` reproduces the historical unguided
    /// config exactly.
    fn runtime_config(&self, iter: usize, arm: Option<&Arm>) -> Config {
        let mut cfg = Config::new(self.seed0 + iter as u64)
            .with_delay_bound(self.delay_bound)
            .with_native_preempt_prob(self.native_preempt_prob)
            .with_max_steps(self.max_steps)
            .with_iter_timeout_ms(self.iter_timeout_ms)
            .with_trace(true)
            .with_pool(self.pool)
            .with_strategy(self.strategy);
        if let Some(a) = arm {
            cfg = cfg
                .with_delay_bound(a.delay_bound)
                .with_yield_prob(a.yield_prob)
                .with_strategy(a.strategy);
        }
        match self.spin {
            Some(s) => cfg.with_spin(s),
            None => cfg,
        }
    }
}

/// Record of one testing iteration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iter: usize,
    /// The seed used.
    pub seed: u64,
    /// GoAT's verdict on this execution.
    pub verdict: GoatVerdict,
    /// Cumulative coverage percentage after this iteration.
    pub coverage_percent: f64,
    /// Requirements in the universe after this iteration.
    pub universe_size: usize,
    /// Perturbation yields injected in this execution.
    pub yields: u32,
}

/// Campaign-level telemetry, collected only when
/// [`goat_metrics::enabled`] (i.e. `GOAT_TELEMETRY` is set or a bench
/// binary ran with `--stats`). Embedded in the report JSON as an
/// optional `telemetry` field — absent entirely when disabled, so
/// telemetry-off reports stay byte-identical to historical output.
///
/// Wall-clock figures are host-dependent and therefore live *only*
/// here, never in the deterministic campaign fields.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignTelemetry {
    /// Host threads the campaign ran with.
    pub parallelism: usize,
    /// Iterations actually executed (early exits shorten campaigns).
    pub iterations: usize,
    /// Total campaign wall time, nanoseconds.
    pub wall_ns: u64,
    /// Per-iteration wall-time distribution, nanoseconds.
    pub iter_wall_ns: HistogramSnapshot,
    /// Worker wait time per claim-queue checkout, nanoseconds
    /// (empty for sequential campaigns).
    pub claim_wait_ns: HistogramSnapshot,
    /// Deepest the reorder buffer grew while merging out-of-order
    /// results (0 for sequential campaigns).
    pub reorder_depth_max: usize,
    /// Scheduler counters summed over all iterations.
    pub sched: SchedCounters,
    /// Perturbation yields injected, summed over all iterations.
    pub yields_injected: u64,
    /// Newly-covered-requirements-per-iteration distribution.
    pub coverage_delta: HistogramSnapshot,
    /// Per-iteration fused-analysis (tree + coverage + verdict input)
    /// wall-time distribution, nanoseconds.
    pub analysis_ns: HistogramSnapshot,
    /// Iterations whose analysis was served from the duplicate-schedule
    /// memo (see [`MemoMode`]).
    pub memo_hits: u64,
    /// Iterations that ran the full fused analysis.
    pub memo_misses: u64,
    /// Worker-pool counters at campaign end (process-wide).
    pub pool: PoolStats,
    /// Trace-buffer recycling counters at campaign end (process-wide).
    pub trace_pool: TracePoolStats,
}

/// The result of a testing campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// Per-iteration records, in order.
    pub records: Vec<IterationRecord>,
    /// 1-based iteration of the first bug detection, if any.
    pub first_detection: Option<usize>,
    /// The verdict of the first detected bug.
    pub bug: Option<GoatVerdict>,
    /// The ECT of the buggy execution (for reports).
    pub bug_ect: Option<Ect>,
    /// The buggy execution's recorded schedule: replay it with
    /// [`Goat::replay`] to re-trigger the bug deterministically
    /// (the paper's "replaying the program's ECT" mode).
    pub bug_schedule: Option<goat_runtime::ReplayLog>,
    /// The requirement universe accumulated over all iterations.
    pub universe: RequirementUniverse,
    /// All requirements covered over all iterations.
    pub covered: CoverageSet,
    /// The global goroutine tree.
    pub global_tree: GlobalGTree,
    /// Quarantine reason, when the campaign gave up on a kernel that
    /// kept failing (consecutive infra failures or crashes).
    pub quarantined: Option<String>,
    /// Budgeted iterations skipped because of quarantine.
    pub skipped: usize,
    /// 1-based iteration at which the coverage-saturation early stop
    /// fired ([`GoatConfig::saturation_window`]), if it did.
    pub saturated: Option<usize>,
    /// Guided-mode per-arm totals; `Some` only for guided campaigns.
    pub guided: Option<GuidedSummary>,
    /// Campaign telemetry; `Some` only when collection was enabled.
    pub telemetry: Option<CampaignTelemetry>,
}

/// Machine-readable campaign summary (for external plotting/tooling).
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// 1-based iteration of the first detection, if any.
    pub first_detection: Option<usize>,
    /// Symptom code of the detected bug (Table IV legend), if any.
    pub bug: Option<String>,
    /// Crash forensics of the detected bug (panic site + backtrace, or a
    /// dead worker's signal/stderr post-mortem); `Some` only when the
    /// bug is a crash that captured detail.
    pub bug_detail: Option<String>,
    /// Per-iteration `(coverage %, universe size, yields)` series.
    pub iterations: Vec<(f64, usize, u32)>,
    /// Final coverage percentage.
    pub final_coverage_percent: f64,
    /// Requirements covered / total.
    pub covered: usize,
    /// Total requirement instances discovered.
    pub universe: usize,
    /// Quarantine reason, when the campaign was quarantined.
    pub quarantined: Option<String>,
    /// Budgeted iterations skipped because of quarantine.
    pub skipped: usize,
    /// 1-based iteration at which coverage saturation stopped the
    /// campaign, if it did.
    pub saturated: Option<usize>,
    /// Guided-mode per-arm totals; `Some` only for guided campaigns.
    pub guided: Option<GuidedSummary>,
    /// Campaign telemetry; `Some` only when collection was enabled.
    pub telemetry: Option<CampaignTelemetry>,
}

// Hand-written (de)serialization: a derived `Option` field always
// emits `"telemetry": null`, which would change the report JSON for
// every telemetry-off run. The summary's schema is pinned byte-for-byte
// by tests/report_snapshot.rs, so the `telemetry` key must be *absent*
// when disabled, not null. Same for the supervision fields: they only
// appear when a campaign was actually quarantined, keeping healthy
// campaigns' reports byte-identical to historical output.
impl serde::Serialize for CampaignSummary {
    fn to_content(&self) -> serde::Content {
        let mut fields = vec![
            ("first_detection".to_string(), self.first_detection.to_content()),
            ("bug".to_string(), self.bug.to_content()),
        ];
        // Like the supervision fields below: only crash bugs with
        // captured forensics carry the key, so every historical report
        // stays byte-identical.
        if let Some(d) = &self.bug_detail {
            fields.push(("bug_detail".to_string(), d.to_content()));
        }
        fields.extend([
            ("iterations".to_string(), self.iterations.to_content()),
            ("final_coverage_percent".to_string(), self.final_coverage_percent.to_content()),
            ("covered".to_string(), self.covered.to_content()),
            ("universe".to_string(), self.universe.to_content()),
        ]);
        if let Some(q) = &self.quarantined {
            fields.push(("quarantined".to_string(), q.to_content()));
        }
        if self.skipped > 0 {
            fields.push(("skipped".to_string(), self.skipped.to_content()));
        }
        if let Some(s) = &self.saturated {
            fields.push(("saturated".to_string(), s.to_content()));
        }
        if let Some(g) = &self.guided {
            fields.push(("guided".to_string(), g.to_content()));
        }
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry".to_string(), t.to_content()));
        }
        serde::Content::Map(fields)
    }
}

impl serde::Deserialize for CampaignSummary {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        let fields = c.as_map().ok_or_else(|| serde::DeError::custom("expected object"))?;
        Ok(CampaignSummary {
            first_detection: serde::de_field(fields, "first_detection")?,
            bug: serde::de_field(fields, "bug")?,
            bug_detail: serde::de_field(fields, "bug_detail")?,
            iterations: serde::de_field(fields, "iterations")?,
            final_coverage_percent: serde::de_field(fields, "final_coverage_percent")?,
            covered: serde::de_field(fields, "covered")?,
            universe: serde::de_field(fields, "universe")?,
            quarantined: serde::de_field(fields, "quarantined")?,
            skipped: serde::de_field::<Option<usize>>(fields, "skipped")?.unwrap_or(0),
            saturated: serde::de_field(fields, "saturated")?,
            guided: serde::de_field(fields, "guided")?,
            telemetry: serde::de_field(fields, "telemetry")?,
        })
    }
}

impl CampaignResult {
    /// Final coverage percentage.
    pub fn coverage_percent(&self) -> f64 {
        self.covered.percent(&self.universe)
    }

    /// Did the campaign expose a bug?
    pub fn detected(&self) -> bool {
        self.first_detection.is_some()
    }

    /// Build the machine-readable summary.
    pub fn summary(&self) -> CampaignSummary {
        CampaignSummary {
            first_detection: self.first_detection,
            bug: self.bug.as_ref().map(|b| b.symptom().code()),
            bug_detail: match &self.bug {
                Some(GoatVerdict::Crash { detail: Some(d), .. }) => Some(d.clone()),
                _ => None,
            },
            iterations: self
                .records
                .iter()
                .map(|r| (r.coverage_percent, r.universe_size, r.yields))
                .collect(),
            final_coverage_percent: self.coverage_percent(),
            covered: self.covered.len(),
            universe: self.universe.len(),
            quarantined: self.quarantined.clone(),
            skipped: self.skipped,
            saturated: self.saturated,
            guided: self.guided.clone(),
            telemetry: self.telemetry.clone(),
        }
    }

    /// Serialize the summary to JSON.
    ///
    /// # Errors
    /// Propagates `serde_json` failures (not expected for valid data).
    pub fn to_json_summary(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.summary())
    }

    /// Return the buggy execution's trace buffer to the recycling pool.
    ///
    /// Non-bug traces are recycled as soon as their iteration is merged;
    /// the bug ECT is kept alive for report rendering instead. Call this
    /// once the report has been produced so campaign drivers that loop
    /// over many kernels reuse the buffer rather than reallocating.
    /// Skipping the call costs an allocation, never correctness.
    pub fn recycle_bug_trace(&mut self) {
        if let Some(ect) = self.bug_ect.take() {
            goat_trace::recycle_buffer(ect.into_events());
        }
    }
}

/// Everything a campaign accumulates, plus the single merge path both
/// the sequential and the streaming executor funnel through.
///
/// Merging is the *only* stateful step of a campaign (runs themselves
/// are independent), so routing every iteration — in strict iteration
/// order — through [`MergeState::merge_one`] is what makes the parallel
/// campaign byte-identical to the sequential one, including the
/// `stop_on_bug` and coverage-threshold early exits.
pub(crate) struct MergeState {
    pub(crate) universe: RequirementUniverse,
    pub(crate) covered: CoverageSet,
    global_tree: GlobalGTree,
    pub(crate) records: Vec<IterationRecord>,
    pub(crate) first_detection: Option<usize>,
    pub(crate) bug: Option<GoatVerdict>,
    bug_ect: Option<Ect>,
    bug_schedule: Option<goat_runtime::ReplayLog>,
    /// Scheduler counters summed over merged iterations (plain adds;
    /// packaged into [`CampaignTelemetry`] when collection is enabled).
    sched_totals: SchedCounters,
    yields_total: u64,
    /// Distribution of newly covered requirements per iteration.
    coverage_delta: Histogram,
    /// Consecutive iterations whose infra retries were exhausted.
    infra_streak: usize,
    /// Consecutive iterations that crashed (kernel panics).
    crash_streak: usize,
    /// Quarantine reason; `Some` stops the campaign.
    pub(crate) quarantined: Option<String>,
    /// Consecutive iterations with a zero coverage delta (feeds the
    /// saturation early stop).
    zero_delta_streak: usize,
    /// 1-based iteration at which saturation stopped the campaign.
    pub(crate) saturated: Option<usize>,
    /// Guided-mode bandit, shared with the executor's workers (they
    /// select arms; the merge loop records rewards). `None` when
    /// guided mode is off.
    pub(crate) guided: Option<Arc<StdMutex<Bandit>>>,
    /// Recycled analysis scratch (slot tables, coverage sets, tree
    /// slab) reused by every iteration's fused pass. Ephemeral like the
    /// histograms: not persisted in checkpoints. The suite orchestrator
    /// hands a finished campaign's grown scratch to the next kernel's
    /// merge state, so it is crate-visible.
    pub(crate) bufs: EctBuffers,
    /// Distribution of per-iteration fused-analysis time, nanoseconds.
    analysis_ns: Histogram,
    /// Analysis products stored per (schedule fingerprint, outcome) key.
    /// Ephemeral like the scratch buffers: not persisted in checkpoints
    /// (a resumed campaign rebuilds it as it merges, which costs only
    /// re-analysis time, never correctness).
    memo: HashMap<u64, MemoEntry>,
    /// Iterations whose analysis was served from the memo.
    memo_hits: u64,
    /// Iterations that ran the full analysis and seeded the memo.
    memo_misses: u64,
}

/// Everything a memo hit must replay: the products of one fused
/// analysis pass plus the verdict derived from them. Stored by value —
/// duplicate schedules on small kernels are frequent enough that the
/// clone at miss time is repaid many times over.
struct MemoEntry {
    tree: GTree,
    coverage: RunCoverage,
    verdict: GoatVerdict,
}

/// Campaign summary exported to the JSONL telemetry stream.
#[derive(serde::Serialize)]
struct CampaignEvent {
    kind: &'static str,
    program: String,
    first_detection: Option<usize>,
    final_coverage_percent: f64,
    telemetry: CampaignTelemetry,
}

/// Guided-mode arm selection + reward exported to the JSONL telemetry
/// stream, one event per merged iteration.
#[derive(serde::Serialize)]
struct GuidedEvent {
    kind: &'static str,
    iter: usize,
    seed: u64,
    arm: usize,
    strategy: String,
    yield_prob: f64,
    delay_bound: u32,
    delta: usize,
    covered: usize,
}

/// End-of-campaign per-arm bandit totals exported to the JSONL
/// telemetry stream (the JSONL mirror of the registry's
/// `guided.arm_pulls` / `guided.arm_new_coverage` counters).
#[derive(serde::Serialize)]
struct GuidedSummaryEvent {
    kind: &'static str,
    program: String,
    guided: crate::bandit::GuidedSummary,
}

/// Supervision decision (retry, quarantine, checkpoint) exported to the
/// JSONL telemetry stream.
#[derive(serde::Serialize)]
struct SupervisionEvent {
    kind: &'static str,
    op: &'static str,
    iter: usize,
    seed: u64,
    detail: String,
}

/// Backoff before retrying an infra-failed iteration: bounded
/// exponential (10 ms · 2^attempt, capped at 250 ms) plus deterministic
/// jitter derived from the iteration seed, so two campaigns never
/// produce different *results* from different sleep patterns — only
/// different wall-clock.
fn retry_backoff(seed: u64, attempt: u32) -> Duration {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let base_ms: u64 = (10u64 << attempt.min(5)).min(250);
    let mut rng =
        SmallRng::seed_from_u64(seed ^ u64::from(attempt + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let jitter = rng.gen_range(0..base_ms / 2 + 1);
    Duration::from_millis(base_ms + jitter)
}

/// Periodic checkpoint writer for one campaign; `None`-free wrapper
/// around the optional `GOAT_CHECKPOINT` sidecar.
pub(crate) struct Checkpointer {
    path: PathBuf,
    fingerprint: String,
    every: usize,
    since_write: usize,
}

impl Checkpointer {
    pub(crate) fn new(cfg: &GoatConfig, program_name: &str) -> Option<Self> {
        let path = cfg.checkpoint.clone()?;
        Some(Checkpointer {
            fingerprint: checkpoint::fingerprint(program_name, cfg),
            path,
            every: cfg.checkpoint_every.max(1),
            since_write: 0,
        })
    }

    /// Load an existing checkpoint into the merge state, returning the
    /// iteration index to resume from (0 for a fresh campaign). An
    /// unusable sidecar is reported and ignored — starting over is
    /// always sound, silently corrupting results never is.
    pub(crate) fn resume(&self, m: &mut MergeState) -> usize {
        match CampaignCheckpoint::load(&self.path, &self.fingerprint) {
            Ok(Some(cp)) => {
                let completed = cp.completed;
                m.restore(cp);
                goat_metrics::global().counter("supervision.checkpoint_resumes").inc();
                completed
            }
            Ok(None) => 0,
            Err(e) => {
                eprintln!(
                    "goat: ignoring unusable checkpoint {}: {e}; starting over",
                    self.path.display()
                );
                0
            }
        }
    }

    pub(crate) fn note_merged(&mut self, m: &MergeState) {
        self.since_write += 1;
        if self.since_write >= self.every {
            self.write(m);
        }
    }

    pub(crate) fn finalize(&mut self, m: &MergeState) {
        self.write(m);
    }

    fn write(&mut self, m: &MergeState) {
        self.since_write = 0;
        match m.snapshot(self.fingerprint.clone()).store(&self.path) {
            Ok(()) => {
                goat_metrics::global().counter("supervision.checkpoint_writes").inc();
            }
            // A failed write costs durability, not correctness — the
            // campaign must keep running.
            Err(e) => eprintln!("goat: checkpoint write failed ({e}); campaign continues"),
        }
    }
}

/// Per-iteration coverage-growth record exported to the JSONL
/// telemetry stream.
#[derive(serde::Serialize)]
struct CoverageEvent {
    kind: &'static str,
    iter: usize,
    seed: u64,
    covered: usize,
    delta: usize,
    universe: usize,
    percent: f64,
}

impl MergeState {
    pub(crate) fn new(table: CuTable) -> Self {
        MergeState {
            universe: RequirementUniverse::from_table(table),
            covered: CoverageSet::new(),
            global_tree: GlobalGTree::new(),
            records: Vec::new(),
            first_detection: None,
            bug: None,
            bug_ect: None,
            bug_schedule: None,
            sched_totals: SchedCounters::default(),
            yields_total: 0,
            coverage_delta: Histogram::default(),
            infra_streak: 0,
            crash_streak: 0,
            quarantined: None,
            zero_delta_streak: 0,
            saturated: None,
            guided: None,
            bufs: EctBuffers::new(),
            analysis_ns: Histogram::default(),
            memo: HashMap::new(),
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// Serialize the accumulated state for the checkpoint sidecar.
    fn snapshot(&self, fingerprint: String) -> CampaignCheckpoint {
        CampaignCheckpoint {
            version: checkpoint::CHECKPOINT_VERSION,
            fingerprint,
            completed: self.records.len(),
            records: self.records.clone(),
            first_detection: self.first_detection,
            bug: self.bug.clone(),
            bug_ect: self.bug_ect.clone(),
            bug_schedule: self.bug_schedule.clone(),
            universe: self.universe.clone(),
            covered: self.covered.clone(),
            global_tree: self.global_tree.clone(),
            sched_totals: self.sched_totals,
            yields_total: self.yields_total,
            infra_streak: self.infra_streak,
            crash_streak: self.crash_streak,
            quarantined: self.quarantined.clone(),
            zero_delta_streak: self.zero_delta_streak,
            saturated: self.saturated,
            guided_rewards: self
                .guided
                .as_ref()
                .map(|b| b.lock().expect("bandit").rewards().to_vec())
                .unwrap_or_default(),
        }
    }

    /// Adopt a loaded checkpoint as the merge state; the campaign then
    /// continues from iteration index `completed`. The coverage-delta
    /// histogram is telemetry-only and intentionally not persisted.
    fn restore(&mut self, cp: CampaignCheckpoint) {
        self.universe = cp.universe;
        self.covered = cp.covered;
        self.global_tree = cp.global_tree;
        self.records = cp.records;
        self.first_detection = cp.first_detection;
        self.bug = cp.bug;
        self.bug_ect = cp.bug_ect;
        self.bug_schedule = cp.bug_schedule;
        self.sched_totals = cp.sched_totals;
        self.yields_total = cp.yields_total;
        self.infra_streak = cp.infra_streak;
        self.crash_streak = cp.crash_streak;
        self.quarantined = cp.quarantined;
        self.zero_delta_streak = cp.zero_delta_streak;
        self.saturated = cp.saturated;
        if let Some(b) = &self.guided {
            b.lock().expect("bandit").restore(cp.guided_rewards);
        }
    }

    /// Fold iteration `iter_no`'s result into the campaign; returns
    /// `true` when the campaign must stop (bug with `stop_on_bug`, or
    /// coverage threshold reached).
    pub(crate) fn merge_one(
        &mut self,
        cfg: &GoatConfig,
        iter_no: usize,
        mut result: goat_runtime::RunResult,
    ) -> bool {
        // One fused pass over the trace produces the goroutine tree and
        // the run's coverage together; the tree then feeds the verdict,
        // so the ECT is walked exactly once per iteration. The universe
        // sees CU/case discoveries in the same event order as the legacy
        // multi-pass pipeline, keeping reports byte-identical.
        //
        // Memoization on top: a run whose (schedule fingerprint,
        // outcome) was seen before produced the same trace modulo
        // timestamps, so its analysis products are already stored.
        // A hit replays the stored merge and verdict; the universe is
        // untouched, which is exactly what re-analyzing would do —
        // every discovery of a duplicate schedule is idempotent.
        let t_analysis = Instant::now();
        let key = if cfg.memo != MemoMode::Off && result.ect.is_some() {
            Some(memo_key(result.fingerprint, &result.outcome))
        } else {
            None
        };
        let hit = key.is_some_and(|k| self.memo.contains_key(&k));
        let (analysis, verdict) = if hit && cfg.memo != MemoMode::Verify {
            self.memo_hits += 1;
            (None, self.memo[&key.expect("hit implies key")].verdict.clone())
        } else {
            let analysis =
                result.ect.as_ref().map(|ect| self.bufs.analyze(ect, &mut self.universe, false));
            let verdict = analyze_run_with(&result, analysis.as_ref().map(|a| &a.tree));
            if let (Some(k), Some(a)) = (key, analysis.as_ref()) {
                if hit {
                    // GOAT_MEMO=verify: duplicates are re-analyzed and
                    // the stored products must agree exactly.
                    self.memo_hits += 1;
                    let entry = &self.memo[&k];
                    assert_eq!(entry.verdict, verdict, "memo verify: verdict diverged");
                    assert_eq!(entry.tree, a.tree, "memo verify: goroutine tree diverged");
                    assert!(
                        entry.coverage.covered == a.coverage.covered
                            && entry.coverage.per_g == a.coverage.per_g,
                        "memo verify: coverage diverged"
                    );
                } else {
                    self.memo_misses += 1;
                    self.memo.insert(
                        k,
                        MemoEntry {
                            tree: a.tree.clone(),
                            coverage: a.coverage.clone(),
                            verdict: verdict.clone(),
                        },
                    );
                }
            }
            (analysis, verdict)
        };
        // Supervision accounting: consecutive failures degrade a
        // repeatedly-failing kernel to skipped-with-reason instead of
        // grinding the remaining budget. Infra failures reach this point
        // only after `run_supervised` exhausted its retries.
        if let RunOutcome::InfraFailure { reason } = &result.outcome {
            self.infra_streak += 1;
            // An infra-failed iteration did not crash, so it breaks a
            // crash streak: "consecutive crashed iterations" means
            // literally consecutive.
            self.crash_streak = 0;
            if cfg.quarantine_after > 0 && self.infra_streak >= cfg.quarantine_after as usize {
                self.quarantined = Some(format!(
                    "{} consecutive infra failures (last: {reason})",
                    self.infra_streak
                ));
            }
        } else {
            self.infra_streak = 0;
            if matches!(verdict, GoatVerdict::Crash { .. }) {
                self.crash_streak += 1;
                if cfg.quarantine_crashes > 0
                    && self.crash_streak >= cfg.quarantine_crashes as usize
                {
                    self.quarantined = Some(format!(
                        "{} consecutive crashed iterations ({verdict})",
                        self.crash_streak
                    ));
                }
            } else {
                self.crash_streak = 0;
            }
        }
        let covered_before = self.covered.len();
        if let Some(a) = analysis {
            self.covered.merge(&a.coverage.covered);
            self.global_tree.merge_run(&a.tree, &a.coverage);
            // Coverage sets flow back into the scratch pool for the
            // next iteration.
            self.bufs.reclaim(a.coverage);
        } else if hit {
            // Memo hit: replay the stored products. The entry stays in
            // the map, so nothing is reclaimed here.
            let entry = &self.memo[&key.expect("hit implies key")];
            self.covered.merge(&entry.coverage.covered);
            self.global_tree.merge_run(&entry.tree, &entry.coverage);
        }
        // Hits record too: the histogram's count stays one-per-iteration
        // (pinned by the telemetry snapshot test); a hit just lands in
        // the cheap buckets.
        self.analysis_ns.record(t_analysis.elapsed().as_nanos() as u64);
        self.sched_totals.accumulate(&result.sched);
        self.yields_total += u64::from(result.yields_injected);
        // One percent computation per iteration, shared by the record
        // and the threshold check below. The delta feeds the guided
        // bandit and the saturation streak, so it is computed whether or
        // not telemetry is on.
        let percent = self.covered.percent(&self.universe);
        let delta = self.covered.len() - covered_before;
        if delta == 0 {
            self.zero_delta_streak += 1;
        } else {
            self.zero_delta_streak = 0;
        }
        if goat_metrics::enabled() {
            self.coverage_delta.record(delta as u64);
            goat_metrics::emit(&CoverageEvent {
                kind: "coverage",
                iter: iter_no + 1,
                seed: cfg.seed0 + iter_no as u64,
                covered: self.covered.len(),
                delta,
                universe: self.universe.len(),
                percent,
            });
        }
        let is_bug = verdict.is_bug();
        self.records.push(IterationRecord {
            iter: iter_no + 1,
            seed: cfg.seed0 + iter_no as u64,
            verdict: verdict.clone(),
            coverage_percent: percent,
            universe_size: self.universe.len(),
            yields: result.yields_injected,
        });
        // Guided feedback: attribute the delta to the arm this iteration
        // ran under. `select` is a pure function of the lagged reward
        // prefix, so recomputing it here yields exactly the arm the
        // executor used — no plumbing through the result channel.
        if let Some(bandit) = &self.guided {
            let mut bandit = bandit.lock().expect("bandit");
            let arm_idx = bandit.select(iter_no);
            bandit.record(iter_no, arm_idx, delta as u64, is_bug);
            let arm = bandit.arms()[arm_idx];
            if goat_metrics::enabled() {
                let label = format!("arm{arm_idx}:{}", arm.strategy);
                goat_metrics::global().counter_with("guided.arm_pulls", Some(&label)).inc();
                goat_metrics::global()
                    .counter_with("guided.arm_new_coverage", Some(&label))
                    .add(delta as u64);
                goat_metrics::emit(&GuidedEvent {
                    kind: "guided",
                    iter: iter_no + 1,
                    seed: cfg.seed0 + iter_no as u64,
                    arm: arm_idx,
                    strategy: arm.strategy.to_string(),
                    yield_prob: arm.yield_prob,
                    delay_bound: arm.delay_bound,
                    delta,
                    covered: self.covered.len(),
                });
            }
        }
        if is_bug && self.first_detection.is_none() {
            self.first_detection = Some(iter_no + 1);
            self.bug = Some(verdict);
            self.bug_ect = result.ect.take();
            self.bug_schedule = Some(result.schedule);
            if cfg.stop_on_bug {
                return true;
            }
        }
        // Analysis is done with this trace; its event buffer goes back
        // to the recycling pool for a future iteration. (Bug traces were
        // moved into `bug_ect` above and stay alive.)
        if let Some(ect) = result.ect.take() {
            goat_trace::recycle_buffer(ect.into_events());
        }
        if let Some(th) = cfg.coverage_threshold {
            if percent >= th {
                return true;
            }
        }
        if let Some(reason) = &self.quarantined {
            goat_metrics::global().counter("supervision.quarantines").inc();
            if goat_metrics::enabled() {
                goat_metrics::emit(&SupervisionEvent {
                    kind: "supervision",
                    op: "quarantine",
                    iter: iter_no + 1,
                    seed: cfg.seed0 + iter_no as u64,
                    detail: reason.clone(),
                });
            }
            return true;
        }
        // Saturation: the coverage signal has been dry for a full
        // window — further budget is unlikely to discover anything new.
        if let Some(window) = cfg.saturation_window {
            if self.zero_delta_streak >= window {
                self.saturated = Some(iter_no + 1);
                if goat_metrics::enabled() {
                    goat_metrics::emit(&SupervisionEvent {
                        kind: "supervision",
                        op: "saturated",
                        iter: iter_no + 1,
                        seed: cfg.seed0 + iter_no as u64,
                        detail: format!("no new coverage for {window} consecutive iterations"),
                    });
                }
                return true;
            }
        }
        false
    }

    fn finish(self, skipped: usize, telemetry: Option<CampaignTelemetry>) -> CampaignResult {
        let guided = self.guided.as_ref().map(|b| b.lock().expect("bandit").summary());
        CampaignResult {
            records: self.records,
            first_detection: self.first_detection,
            bug: self.bug,
            bug_ect: self.bug_ect,
            bug_schedule: self.bug_schedule,
            universe: self.universe,
            covered: self.covered,
            global_tree: self.global_tree,
            quarantined: self.quarantined,
            skipped,
            saturated: self.saturated,
            guided,
            telemetry,
        }
    }
}

/// Work queue of the streaming executor: hands out iteration indices to
/// long-lived campaign workers, gated by a *claim window* so execution
/// never races more than `window` iterations ahead of the merge point —
/// this bounds both the reorder buffer and the work wasted past an
/// early-exit cutoff.
struct ClaimQueue {
    state: StdMutex<ClaimState>,
    cv: Condvar,
    window: usize,
}

struct ClaimState {
    /// Next unclaimed iteration index.
    next: usize,
    /// Iterations merged so far (claims must stay < merged + window).
    merged: usize,
    /// One past the last claimable index; shrinks on early exit.
    cutoff: usize,
}

impl ClaimQueue {
    fn new(start: usize, iterations: usize, window: usize) -> Self {
        ClaimQueue {
            state: StdMutex::new(ClaimState { next: start, merged: start, cutoff: iterations }),
            cv: Condvar::new(),
            window: window.max(1),
        }
    }

    /// Claim up to `max` *contiguous* iteration indices `[lo, hi)`,
    /// blocking while the claim window is exhausted; `None` once the
    /// campaign is over. The range never reaches past the window, so
    /// batched claims obey exactly the ordering constraint single
    /// claims do (guided arm selection stays sound).
    fn claim_batch(&self, max: usize) -> Option<(usize, usize)> {
        let max = max.max(1);
        let mut st = self.state.lock().expect("claim queue");
        loop {
            if st.next >= st.cutoff {
                return None;
            }
            if st.next < st.merged + self.window {
                let lo = st.next;
                let hi = (st.merged + self.window).min(st.cutoff).min(lo + max);
                st.next = hi;
                return Some((lo, hi));
            }
            st = self.cv.wait(st).expect("claim queue");
        }
    }

    /// Record one merged iteration, sliding the claim window forward.
    fn advance_merged(&self) {
        let mut st = self.state.lock().expect("claim queue");
        st.merged += 1;
        self.cv.notify_all();
    }

    /// Early exit: forbid all further claims.
    fn stop(&self) {
        let mut st = self.state.lock().expect("claim queue");
        st.cutoff = st.cutoff.min(st.merged);
        self.cv.notify_all();
    }
}

/// The GoAT tool: drives instrumented executions of a program.
#[derive(Debug, Clone, Default)]
pub struct Goat {
    cfg: GoatConfig,
}

impl Goat {
    /// Create a tool instance with the given campaign configuration.
    pub fn new(cfg: GoatConfig) -> Self {
        Goat { cfg }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &GoatConfig {
        &self.cfg
    }

    /// Build the static model `M` for a program by scanning its sources.
    /// Programs without source metadata get an empty table (CUs are then
    /// discovered dynamically, which the universe supports).
    pub fn static_model(program: &dyn Program) -> CuTable {
        let sources = program.sources();
        if sources.is_empty() {
            return CuTable::new();
        }
        scan_sources(sources.iter()).unwrap_or_default()
    }

    /// Wrap a program with the paper's `goat.Start`/`goat.Watch`/
    /// `goat.Stop` protocol: an *internal* watcher goroutine accompanies
    /// the instrumented main and is signalled when it returns. The
    /// watcher is excluded from application-level analysis (§III-E), so
    /// this also exercises the runtime-goroutine filter on every run.
    pub(crate) fn instrumented(program: Arc<dyn Program>) -> impl FnOnce() + Send + 'static {
        move || {
            let goat_done: Chan<()> = Chan::new(1);
            {
                let goat_done = goat_done.clone();
                go_internal("goat::watcher", move || {
                    // Waits for main's completion signal; if main never
                    // finishes, this internal goroutine parks forever and
                    // is filtered out of the goroutine tree.
                    let _ = goat_done.recv();
                });
            }
            program.main();
            // defer goat.Stop(goat_done): the signal itself runs on an
            // internal goroutine so the tool's own channel operations
            // never enter the program's coverage universe.
            go_internal("goat::stopper", move || {
                goat_done.send(());
            });
        }
    }

    /// Run a full testing campaign on `program`.
    ///
    /// With [`GoatConfig::parallelism`] > 1 the iterations execute on a
    /// streaming executor: `parallelism` long-lived workers claim
    /// seed-indexed iterations from a shared queue and a reorder buffer
    /// merges their results in strict iteration order. Because every
    /// iteration's seed is fixed up front and merging is the only
    /// stateful step, the campaign outcome is byte-identical to the
    /// sequential one — including `stop_on_bug` and coverage-threshold
    /// early exits.
    pub fn test(&self, program: Arc<dyn Program>) -> CampaignResult {
        // One relaxed load decides whether any timing instrumentation
        // runs; campaign results are identical either way (wall-clock
        // figures live only in the optional telemetry block).
        let telemetry_on = goat_metrics::enabled();
        if telemetry_on {
            goat_metrics::set_context(Some(program.name()));
        }
        let t_campaign = telemetry_on.then(Instant::now);
        let iter_wall = Histogram::default();
        let claim_wait = Histogram::default();
        let mut reorder_depth_max = 0usize;

        let table = Self::static_model(program.as_ref());
        let mut m = MergeState::new(table);
        // The bandit must exist before resume so a checkpoint's reward
        // history lands back in it, rebuilding the exact selection state.
        m.guided = self.cfg.guided.then(|| {
            Arc::new(StdMutex::new(Bandit::new(
                self.cfg.seed0,
                self.cfg.strategy,
                self.cfg.delay_bound,
            )))
        });
        let guided = m.guided.clone();
        let mut ckpt = Checkpointer::new(&self.cfg, program.name());
        let start = match &ckpt {
            Some(c) => c.resume(&mut m).min(self.cfg.iterations),
            None => 0,
        };
        // A resumed campaign may already be over (bug with stop_on_bug,
        // threshold reached, or quarantined): re-running nothing is what
        // keeps resume byte-identical to the uninterrupted campaign.
        let resumed_stopped = m.quarantined.is_some()
            || m.saturated.is_some()
            || (self.cfg.stop_on_bug && m.bug.is_some())
            || self
                .cfg
                .coverage_threshold
                .is_some_and(|th| start > 0 && m.covered.percent(&m.universe) >= th);

        if self.cfg.parallelism <= 1 {
            if !resumed_stopped {
                // Iterations are claimed in batches of `effective_batch`
                // (1 unless process isolation is on): arm selection for
                // every run in a batch happens before any of the batch
                // merges, which is sound because the batch is capped at
                // the bandit's feedback lag — exactly the parallel claim
                // window's argument, so results stay byte-identical.
                let batch = self.cfg.effective_batch();
                let mut i = start;
                'camp: while i < self.cfg.iterations {
                    let n = batch.min(self.cfg.iterations - i);
                    let arms: Vec<Option<Arm>> =
                        (0..n).map(|k| Self::select_arm(&guided, i + k)).collect();
                    let t_iter = telemetry_on.then(Instant::now);
                    let results = self.run_batch_supervised(i, &program, &arms);
                    if let Some(t) = t_iter {
                        // Per-iteration share of the batch wall time:
                        // keeps the histogram at one sample per
                        // iteration, which the telemetry schema pins.
                        let per = t.elapsed().as_nanos() as u64 / n as u64;
                        for _ in 0..n {
                            iter_wall.record(per);
                        }
                    }
                    for (k, result) in results.into_iter().enumerate() {
                        let stop = m.merge_one(&self.cfg, i + k, result);
                        if let Some(c) = ckpt.as_mut() {
                            c.note_merged(&m);
                        }
                        if stop {
                            // Runs later in the batch were speculative
                            // past the cutoff — discarded, exactly like
                            // the parallel executor's post-stop claims.
                            break 'camp;
                        }
                    }
                    i += n;
                }
            }
            if let Some(c) = ckpt.as_mut() {
                c.finalize(&m);
            }
            return self.finish_campaign(
                m,
                program.as_ref(),
                t_campaign,
                &iter_wall,
                &claim_wait,
                0,
            );
        }

        if !resumed_stopped && start < self.cfg.iterations {
            // Guided mode caps the claim window at the bandit's feedback
            // lag: iteration `i` can then only be claimed once the
            // rewards its (lagged) selection reads are merged, which is
            // what makes the parallel guided campaign byte-identical to
            // the sequential one.
            let mut window = self.cfg.parallelism * 4;
            if guided.is_some() {
                window = window.min(GUIDED_LAG);
            }
            let queue = ClaimQueue::new(start, self.cfg.iterations, window);
            let batch = self.cfg.effective_batch();
            let (tx, rx) = mpsc::channel::<(usize, goat_runtime::RunResult)>();
            std::thread::scope(|scope| {
                for _ in 0..self.cfg.parallelism {
                    let tx = tx.clone();
                    let queue = &queue;
                    let program = &program;
                    let goat = &self;
                    let guided = &guided;
                    let (iter_wall, claim_wait) = (&iter_wall, &claim_wait);
                    scope.spawn(move || loop {
                        let t_claim = telemetry_on.then(Instant::now);
                        let Some((lo, hi)) = queue.claim_batch(batch) else { return };
                        if let Some(t) = t_claim {
                            claim_wait.record(t.elapsed().as_nanos() as u64);
                        }
                        // Arm selection happens at claim time in seed
                        // order; the lag-capped window guarantees the
                        // rewards `select(i)` reads are already merged
                        // for every index in the claimed range.
                        let arms: Vec<Option<Arm>> =
                            (lo..hi).map(|i| Self::select_arm(guided, i)).collect();
                        let t_iter = telemetry_on.then(Instant::now);
                        let results = goat.run_batch_supervised(lo, program, &arms);
                        if let Some(t) = t_iter {
                            let per = t.elapsed().as_nanos() as u64 / arms.len() as u64;
                            for _ in 0..arms.len() {
                                iter_wall.record(per);
                            }
                        }
                        for (k, result) in results.into_iter().enumerate() {
                            if tx.send((lo + k, result)).is_err() {
                                return;
                            }
                        }
                    });
                }
                // Only workers hold senders: the channel closes (ending
                // the merge loop) exactly when the last worker exits.
                drop(tx);

                let mut reorder: BTreeMap<usize, goat_runtime::RunResult> = BTreeMap::new();
                let mut expect = start;
                let mut stopped = false;
                for (idx, result) in rx {
                    reorder.insert(idx, result);
                    reorder_depth_max = reorder_depth_max.max(reorder.len());
                    while let Some(next) = reorder.remove(&expect) {
                        if stopped {
                            // Speculative runs past the cutoff: discard.
                        } else {
                            if m.merge_one(&self.cfg, expect, next) {
                                stopped = true;
                                queue.stop();
                            } else {
                                queue.advance_merged();
                            }
                            if let Some(c) = ckpt.as_mut() {
                                c.note_merged(&m);
                            }
                        }
                        expect += 1;
                    }
                }
            });
        }
        if let Some(c) = ckpt.as_mut() {
            c.finalize(&m);
        }
        self.finish_campaign(
            m,
            program.as_ref(),
            t_campaign,
            &iter_wall,
            &claim_wait,
            reorder_depth_max,
        )
    }

    /// Guided arm selection for iteration `i` — `None` when guided mode
    /// is off (the base configuration runs unchanged).
    pub(crate) fn select_arm(guided: &Option<Arc<StdMutex<Bandit>>>, i: usize) -> Option<Arm> {
        guided.as_ref().map(|b| {
            let bandit = b.lock().expect("bandit");
            bandit.arms()[bandit.select(i)]
        })
    }

    /// Execute one iteration, honouring the isolation mode: under
    /// [`IsolateMode::Proc`] the run is shipped to a sandboxed worker
    /// subprocess (same deterministic engine, byte-identical results);
    /// in-process otherwise. When isolation is requested but unavailable
    /// — the worker binary cannot be spawned, or the program is not
    /// resolvable by name in a separate process — the run transparently
    /// falls back in-process, which preserves results exactly.
    ///
    /// [`IsolateMode::Proc`]: crate::isolate::IsolateMode::Proc
    fn run_one(&self, i: usize, program: &Arc<dyn Program>, arm: Option<&Arm>) -> RunResult {
        let cfg = self.cfg.runtime_config(i, arm);
        if self.cfg.isolate == crate::isolate::IsolateMode::Proc {
            if let Some(result) = crate::isolate::run_in_worker(
                self.cfg.worker_cmd.as_deref(),
                program.name(),
                (i + 1) as u64,
                &cfg,
                &self.cfg.ipc_spec(),
            ) {
                return result;
            }
        }
        Runtime::run(cfg, Self::instrumented(Arc::clone(program)))
    }

    /// One supervised iteration: run it, and when the *infrastructure*
    /// (not the kernel) failed — pool checkout, thread spawn — retry up
    /// to [`GoatConfig::max_retries`] times with bounded backoff. Kernel
    /// verdicts (crash, hang, timeout) are results, never retried.
    fn run_supervised(
        &self,
        i: usize,
        program: &Arc<dyn Program>,
        arm: Option<Arm>,
    ) -> goat_runtime::RunResult {
        let first = self.run_one(i, program, arm.as_ref());
        self.supervise_from(i, program, arm, first)
    }

    /// The retry tail of supervision, starting from an already-obtained
    /// first result (so batch execution can feed its per-run outcomes
    /// through exactly the same policy): infra failures retry up to
    /// [`GoatConfig::max_retries`] times with deterministic backoff;
    /// anything else — including worker crashes — is a result.
    fn supervise_from(
        &self,
        i: usize,
        program: &Arc<dyn Program>,
        arm: Option<Arm>,
        mut result: goat_runtime::RunResult,
    ) -> goat_runtime::RunResult {
        let mut attempt: u32 = 0;
        loop {
            let RunOutcome::InfraFailure { reason } = &result.outcome else { return result };
            if attempt >= self.cfg.max_retries {
                return result;
            }
            let backoff = retry_backoff(self.cfg.seed0 + i as u64, attempt);
            goat_metrics::global().counter("supervision.retries").inc();
            if goat_metrics::enabled() {
                goat_metrics::emit(&SupervisionEvent {
                    kind: "supervision",
                    op: "retry",
                    iter: i + 1,
                    seed: self.cfg.seed0 + i as u64,
                    detail: format!(
                        "attempt {} failed ({reason}); backing off {} ms",
                        attempt + 1,
                        backoff.as_millis()
                    ),
                });
            }
            std::thread::sleep(backoff);
            attempt += 1;
            result = self.run_one(i, program, arm.as_ref());
        }
    }

    /// Execute the contiguous iterations `lo..lo + arms.len()` and
    /// return their supervised results in order.
    ///
    /// Under process isolation with a batch window the whole range
    /// ships to one worker as a single frame burst
    /// ([`crate::isolate::run_batch`]); any per-run infra failures that
    /// come back (stream corruption, mid-batch death) then re-enter the
    /// normal one-at-a-time retry policy, so batching changes wall
    /// clock, never results. Everything else — batch of one, isolation
    /// off or unavailable — goes through the historical per-run path.
    pub(crate) fn run_batch_supervised(
        &self,
        lo: usize,
        program: &Arc<dyn Program>,
        arms: &[Option<Arm>],
    ) -> Vec<goat_runtime::RunResult> {
        if arms.len() > 1 && self.cfg.isolate == crate::isolate::IsolateMode::Proc {
            let runs: Vec<(u64, Config)> = arms
                .iter()
                .enumerate()
                .map(|(k, arm)| {
                    ((lo + k + 1) as u64, self.cfg.runtime_config(lo + k, arm.as_ref()))
                })
                .collect();
            if let Some(results) = crate::isolate::run_batch(
                self.cfg.worker_cmd.as_deref(),
                program.name(),
                &runs,
                &self.cfg.ipc_spec(),
            ) {
                return results
                    .into_iter()
                    .enumerate()
                    .map(|(k, r)| self.supervise_from(lo + k, program, arms[k], r))
                    .collect();
            }
            // Isolation just became unavailable: fall through to the
            // per-run path, which runs in-process.
        }
        arms.iter().enumerate().map(|(k, arm)| self.run_supervised(lo + k, program, *arm)).collect()
    }

    /// Package the merge state into a [`CampaignResult`]; when telemetry
    /// is enabled (`t_campaign` is `Some`), attach a
    /// [`CampaignTelemetry`] block, bump the global registry and emit
    /// the campaign summary to the JSONL stream.
    pub(crate) fn finish_campaign(
        &self,
        m: MergeState,
        program: &dyn Program,
        t_campaign: Option<Instant>,
        iter_wall: &Histogram,
        claim_wait: &Histogram,
        reorder_depth_max: usize,
    ) -> CampaignResult {
        // Quarantine is the only way budgeted iterations are *skipped*
        // (early exits on bug/threshold are successes, not skips).
        let skipped = if m.quarantined.is_some() {
            self.cfg.iterations.saturating_sub(m.records.len())
        } else {
            0
        };
        let Some(t0) = t_campaign else { return m.finish(skipped, None) };
        let telemetry = CampaignTelemetry {
            parallelism: self.cfg.parallelism,
            iterations: m.records.len(),
            wall_ns: t0.elapsed().as_nanos() as u64,
            iter_wall_ns: iter_wall.snapshot(),
            claim_wait_ns: claim_wait.snapshot(),
            reorder_depth_max,
            sched: m.sched_totals,
            yields_injected: m.yields_total,
            coverage_delta: m.coverage_delta.snapshot(),
            analysis_ns: m.analysis_ns.snapshot(),
            memo_hits: m.memo_hits,
            memo_misses: m.memo_misses,
            pool: goat_runtime::pool::stats(),
            trace_pool: goat_trace::recycle::stats(),
        };
        let reg = goat_metrics::global();
        reg.counter("campaigns").inc();
        reg.counter_with("campaign.iterations", Some(program.name()))
            .add(telemetry.iterations as u64);
        reg.gauge("campaign.reorder_depth_max").set(reorder_depth_max as i64);
        reg.counter("campaign.memo_hits").add(m.memo_hits);
        reg.counter("campaign.memo_misses").add(m.memo_misses);
        let result = m.finish(skipped, Some(telemetry.clone()));
        if let Some(g) = &result.guided {
            goat_metrics::emit(&GuidedSummaryEvent {
                kind: "guided_summary",
                program: program.name().to_string(),
                guided: g.clone(),
            });
        }
        goat_metrics::emit(&CampaignEvent {
            kind: "campaign",
            program: program.name().to_string(),
            first_detection: result.first_detection,
            final_coverage_percent: result.coverage_percent(),
            telemetry,
        });
        goat_metrics::flush();
        result
    }

    /// Re-execute `program` forcing a previously recorded schedule and
    /// re-analyse the run — deterministic bug reproduction from a
    /// [`CampaignResult::bug_schedule`].
    pub fn replay(
        program: Arc<dyn Program>,
        schedule: goat_runtime::ReplayLog,
    ) -> (GoatVerdict, goat_runtime::RunResult) {
        let cfg = Config::new(0).with_trace(true).with_replay(schedule);
        let result = Runtime::run(cfg, Self::instrumented(program));
        (analyze_run(&result), result)
    }
}

/// GoAT exposed through the common [`Detector`] interface so the
/// evaluation harness can sweep GOAT-D0…D4 alongside the baselines.
#[derive(Debug, Clone, Copy)]
pub struct GoatTool {
    /// The delay bound `D`.
    pub delay_bound: u32,
}

impl GoatTool {
    /// GOAT with delay bound `d`.
    pub fn new(d: u32) -> Self {
        GoatTool { delay_bound: d }
    }
}

impl Detector for GoatTool {
    fn name(&self) -> &'static str {
        match self.delay_bound {
            0 => "goat-d0",
            1 => "goat-d1",
            2 => "goat-d2",
            3 => "goat-d3",
            4 => "goat-d4",
            _ => "goat",
        }
    }

    fn run_once(&self, cfg: Config, program: ProgramFn) -> ToolVerdict {
        let cfg = cfg.with_delay_bound(self.delay_bound).with_trace(true);
        let result = Runtime::run(cfg, move || program());
        let verdict = analyze_run(&result);
        ToolVerdict {
            detected: verdict.is_bug(),
            symptom: verdict.symptom(),
            detail: verdict.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FnProgram;
    use goat_detectors::Symptom;
    use goat_runtime::{go_named, gosched, Chan, Mutex};

    fn leaky_program() -> Arc<dyn Program> {
        Arc::new(FnProgram::new("leaky", || {
            let ch: Chan<u8> = Chan::new(0);
            go_named("stuck", move || {
                ch.recv();
            });
            gosched();
        }))
    }

    fn clean_program() -> Arc<dyn Program> {
        Arc::new(FnProgram::new("clean", || {
            let ch: Chan<u8> = Chan::new(0);
            let tx = ch.clone();
            go_named("tx", move || tx.send(1));
            ch.recv();
        }))
    }

    #[test]
    fn campaign_detects_deterministic_leak_first_try() {
        let goat = Goat::new(GoatConfig::default().with_iterations(10));
        let r = goat.test(leaky_program());
        assert_eq!(r.first_detection, Some(1));
        assert!(matches!(r.bug, Some(GoatVerdict::PartialDeadlock { .. })));
        assert_eq!(r.records.len(), 1, "stopped on bug");
        assert!(r.bug_ect.is_some());
    }

    #[test]
    fn campaign_on_clean_program_exhausts_iterations() {
        let goat = Goat::new(GoatConfig::default().with_iterations(5));
        let r = goat.test(clean_program());
        assert!(!r.detected());
        assert_eq!(r.records.len(), 5);
        assert!(r.coverage_percent() > 0.0);
    }

    #[test]
    fn coverage_accumulates_monotonically() {
        let goat = Goat::new(GoatConfig::default().with_iterations(8).keep_running());
        let r = goat.test(clean_program());
        let mut last = 0.0;
        for rec in &r.records {
            // percentage can dip when the universe grows, but covered
            // count never shrinks — check via coverage set length proxy:
            assert!(rec.coverage_percent >= 0.0 && rec.coverage_percent <= 100.0);
            let _ = last;
            last = rec.coverage_percent;
        }
        assert!(!r.covered.is_empty());
        assert!(r.global_tree.len() >= 2);
    }

    #[test]
    fn coverage_threshold_stops_campaign() {
        let mut cfg = GoatConfig::default().with_iterations(50);
        cfg.coverage_threshold = Some(1.0); // trivially reached
        let goat = Goat::new(cfg);
        let r = goat.test(clean_program());
        assert!(r.records.len() < 50);
    }

    #[test]
    fn delay_bound_injects_yields() {
        // Yield injection is a property of the native strategy; pin it
        // so a GOAT_STRATEGY=pct environment doesn't hollow the test.
        let goat = Goat::new(
            GoatConfig::default()
                .with_delay_bound(3)
                .with_iterations(5)
                .with_strategy(StrategyKind::Native)
                .keep_running(),
        );
        let r = goat.test(clean_program());
        assert!(r.records.iter().any(|rec| rec.yields > 0));
        assert!(r.records.iter().all(|rec| rec.yields <= 3));
    }

    #[test]
    fn goat_tool_as_detector() {
        let tool = GoatTool::new(0);
        assert_eq!(tool.name(), "goat-d0");
        let v = tool.run_once(
            Config::new(1).with_native_preempt_prob(0.0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                go_named("stuck", move || {
                    ch.recv();
                });
                gosched();
            }),
        );
        assert!(v.detected);
        assert_eq!(v.symptom, Symptom::PartialDeadlock { leaked: 1 });
    }

    #[test]
    fn goat_detects_what_builtin_misses() {
        use goat_detectors::BuiltinDetector;
        let prog: ProgramFn = Arc::new(|| {
            let ch: Chan<u8> = Chan::new(0);
            go_named("stuck", move || {
                ch.recv();
            });
            gosched();
        });
        let b = BuiltinDetector::new()
            .run_once(Config::new(1).with_native_preempt_prob(0.0), Arc::clone(&prog));
        let g = GoatTool::new(0).run_once(Config::new(1).with_native_preempt_prob(0.0), prog);
        assert!(!b.detected, "builtin misses the leak");
        assert!(g.detected, "GoAT sees it in the trace");
    }

    #[test]
    fn seeds_differ_across_iterations() {
        let goat = Goat::new(GoatConfig::default().with_iterations(3).keep_running());
        let r = goat.test(clean_program());
        let seeds: Vec<u64> = r.records.iter().map(|x| x.seed).collect();
        assert_eq!(seeds, vec![1, 2, 3]);
    }

    #[test]
    fn bug_schedule_replays_to_the_same_verdict() {
        // A schedule-dependent bug: find it once, then re-trigger it
        // deterministically from the recorded schedule.
        let program: Arc<dyn Program> = Arc::new(FnProgram::new("racy", || {
            let mu = Mutex::new();
            let ch: Chan<u8> = Chan::new(0);
            {
                let (mu, ch) = (mu.clone(), ch.clone());
                go_named("monitor", move || loop {
                    let got = goat_runtime::Select::new().recv(&ch, |v| v).default(|| None).run();
                    if got.is_some() {
                        return;
                    }
                    mu.lock();
                    mu.unlock();
                });
            }
            {
                let (mu, ch) = (mu.clone(), ch.clone());
                go_named("changer", move || {
                    mu.lock();
                    ch.send(1);
                    mu.unlock();
                });
            }
            goat_runtime::time::sleep(std::time::Duration::from_millis(30));
        }));
        let goat = Goat::new(GoatConfig::default().with_iterations(200));
        let result = goat.test(Arc::clone(&program));
        let bug = result.bug.clone().expect("bug found");
        let schedule = result.bug_schedule.expect("schedule recorded");
        for _ in 0..3 {
            let (verdict, run) = Goat::replay(Arc::clone(&program), schedule.clone());
            assert!(!run.replay_diverged, "replay must follow the log");
            assert_eq!(verdict, bug, "replay must reproduce the bug");
        }
    }

    #[test]
    fn watcher_goroutine_is_traced_but_filtered() {
        // Run one instrumented execution directly to inspect its trace.
        let result = goat_runtime::Runtime::run(
            goat_runtime::Config::new(1),
            Goat::instrumented(clean_program()),
        );
        let verdict = analyze_run(&result);
        let ect = result.ect.expect("traced");
        let tree = goat_trace::GTree::from_ect(&ect);
        let watcher = tree
            .nodes()
            .find(|n| n.name == "goat::watcher")
            .expect("watcher present in the raw tree");
        assert!(watcher.internal);
        assert!(
            tree.app_nodes().iter().all(|n| n.name != "goat::watcher"),
            "watcher must be filtered from application-level analysis"
        );
        // And the offline verdict ignores it even though it may leak.
        assert_eq!(verdict, GoatVerdict::Pass);
    }

    #[test]
    fn parallel_campaign_matches_sequential_results() {
        let seq = Goat::new(GoatConfig::default().with_iterations(12).keep_running())
            .test(clean_program());
        let par =
            Goat::new(GoatConfig::default().with_iterations(12).keep_running().with_parallelism(4))
                .test(clean_program());
        assert_eq!(seq.records.len(), par.records.len());
        for (a, b) in seq.records.iter().zip(par.records.iter()) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.yields, b.yields);
        }
        assert_eq!(seq.covered.len(), par.covered.len());
        assert_eq!(seq.universe.len(), par.universe.len());
        assert!((seq.coverage_percent() - par.coverage_percent()).abs() < 1e-9);
    }

    #[test]
    fn parallel_campaign_finds_the_same_first_bug() {
        let seq = Goat::new(GoatConfig::default().with_iterations(50)).test(leaky_program());
        let par = Goat::new(GoatConfig::default().with_iterations(50).with_parallelism(8))
            .test(leaky_program());
        assert_eq!(seq.first_detection, par.first_detection);
        assert_eq!(seq.bug, par.bug);
    }

    #[test]
    fn campaign_summary_serializes() {
        let goat = Goat::new(GoatConfig::default().with_iterations(4).keep_running());
        let r = goat.test(clean_program());
        let json = r.to_json_summary().expect("serializable");
        assert!(json.contains("final_coverage_percent"), "{json}");
        let parsed: CampaignSummary = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(parsed.iterations.len(), 4);
        assert_eq!(parsed.first_detection, None);
        assert!(parsed.universe >= parsed.covered);
    }

    fn crashing_program() -> Arc<dyn Program> {
        Arc::new(FnProgram::new("crashy", || {
            let ch: Chan<u8> = Chan::new(0);
            ch.close();
            ch.send(1); // send on closed channel panics every run
        }))
    }

    #[test]
    fn repeated_crashes_quarantine_the_kernel() {
        let goat = Goat::new(
            GoatConfig::default().with_iterations(10).keep_running().with_quarantine_crashes(2),
        );
        let r = goat.test(crashing_program());
        assert_eq!(r.records.len(), 2, "stopped at the crash streak");
        assert!(r.records.iter().all(|rec| matches!(rec.verdict, GoatVerdict::Crash { .. })));
        let reason = r.quarantined.as_deref().expect("quarantined");
        assert!(reason.contains("2 consecutive crashed iterations"), "{reason}");
        assert_eq!(r.skipped, 8, "remaining budget reported as skipped");
        let json = r.to_json_summary().expect("serializable");
        assert!(json.contains("\"quarantined\""), "{json}");
        assert!(json.contains("\"skipped\""), "{json}");
        let parsed: CampaignSummary = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(parsed.skipped, 8);
        assert!(parsed.quarantined.is_some());
    }

    #[test]
    fn crash_quarantine_off_by_default() {
        let goat = Goat::new(GoatConfig::default().with_iterations(4).keep_running());
        let r = goat.test(crashing_program());
        assert_eq!(r.records.len(), 4, "crashes are recorded, not skipped");
        assert!(r.quarantined.is_none());
        assert_eq!(r.skipped, 0);
        let json = r.to_json_summary().expect("serializable");
        assert!(!json.contains("quarantined"), "healthy schema unchanged: {json}");
        assert!(!json.contains("skipped"), "healthy schema unchanged: {json}");
    }

    #[test]
    fn parallel_quarantine_matches_sequential() {
        let cfg =
            GoatConfig::default().with_iterations(12).keep_running().with_quarantine_crashes(3);
        let seq = Goat::new(cfg.clone()).test(crashing_program());
        let par = Goat::new(cfg.with_parallelism(4)).test(crashing_program());
        assert_eq!(seq.records.len(), par.records.len());
        assert_eq!(seq.quarantined, par.quarantined);
        assert_eq!(seq.skipped, par.skipped);
    }

    fn checkpoint_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("goat-runner-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        dir.join(format!("{tag}.json"))
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let path = checkpoint_path("resume");
        let _ = std::fs::remove_file(&path);
        let base = GoatConfig::default().with_iterations(20).with_seed0(5).keep_running();

        let full = Goat::new(base.clone()).test(clean_program());

        // Interrupted campaign: only 7 of the 20 iterations ran before
        // "the kill" (the checkpoint fingerprint deliberately ignores
        // the iteration budget, so a shortened budget models a mid-
        // flight kill whose last checkpoint landed after iteration 7).
        Goat::new(base.clone().with_iterations(7).with_checkpoint(&path).with_checkpoint_every(1))
            .test(clean_program());
        let resumed = Goat::new(base.with_checkpoint(&path)).test(clean_program());

        assert_eq!(
            full.to_json_summary().expect("full"),
            resumed.to_json_summary().expect("resumed"),
            "resumed campaign must be byte-identical to the uninterrupted one"
        );
        assert_eq!(full.records.len(), resumed.records.len());
        for (a, b) in full.records.iter().zip(resumed.records.iter()) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.coverage_percent.to_bits(), b.coverage_percent.to_bits());
        }
        assert_eq!(full.global_tree.render(), resumed.global_tree.render());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_resume_skips_completed_campaign() {
        let path = checkpoint_path("completed");
        let _ = std::fs::remove_file(&path);
        let cfg = GoatConfig::default().with_iterations(5).keep_running().with_checkpoint(&path);
        let first = Goat::new(cfg.clone()).test(clean_program());
        // Same budget again: everything is restored, nothing re-runs.
        let again = Goat::new(cfg).test(clean_program());
        assert_eq!(
            first.to_json_summary().expect("first"),
            again.to_json_summary().expect("again")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_resume_preserves_stop_on_bug() {
        let path = checkpoint_path("stop-on-bug");
        let _ = std::fs::remove_file(&path);
        let cfg = GoatConfig::default().with_iterations(10).with_checkpoint(&path);
        let first = Goat::new(cfg.clone()).test(leaky_program());
        assert_eq!(first.first_detection, Some(1));
        let resumed = Goat::new(cfg).test(leaky_program());
        assert_eq!(resumed.first_detection, Some(1));
        assert_eq!(resumed.records.len(), first.records.len(), "no extra iterations ran");
        assert_eq!(resumed.bug, first.bug);
        assert!(resumed.bug_schedule.is_some(), "replay evidence survives the roundtrip");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_checkpoint_is_ignored() {
        let path = checkpoint_path("stale");
        let _ = std::fs::remove_file(&path);
        // Checkpoint written by a campaign with a different seed…
        Goat::new(GoatConfig::default().with_iterations(3).with_seed0(42).with_checkpoint(&path))
            .test(clean_program());
        // …must not poison a campaign with different parameters.
        let r = Goat::new(
            GoatConfig::default()
                .with_iterations(4)
                .with_seed0(7)
                .keep_running()
                .with_checkpoint(&path),
        )
        .test(clean_program());
        assert_eq!(r.records.len(), 4, "fresh campaign, stale sidecar ignored");
        assert_eq!(r.records[0].seed, 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhausted_infra_failure_is_not_a_detection() {
        let base = Runtime::run(Config::new(0).with_trace(false), || {});
        let with = |outcome: RunOutcome| {
            let mut r = base.clone();
            r.outcome = outcome;
            r.ect = None;
            r
        };
        let crash =
            || with(RunOutcome::Panicked { g: goat_trace::Gid(9), msg: "boom".to_string() });
        let infra = || with(RunOutcome::InfraFailure { reason: "pool checkout".to_string() });

        // A post-retry infra failure must not be forged into bug
        // evidence: no detection, no stop under stop_on_bug.
        let cfg = GoatConfig::default();
        let mut m = MergeState::new(CuTable::new());
        assert!(!m.merge_one(&cfg, 0, infra()), "infra failure must not stop the campaign");
        assert!(m.first_detection.is_none());
        assert!(m.bug.is_none());
        assert!(matches!(m.records[0].verdict, GoatVerdict::InfraFailure { .. }));

        // crash → infra → crash is not two *consecutive* crashes…
        let cfg = GoatConfig::default().keep_running().with_quarantine_crashes(2);
        let mut m = MergeState::new(CuTable::new());
        m.merge_one(&cfg, 0, crash());
        m.merge_one(&cfg, 1, infra());
        m.merge_one(&cfg, 2, crash());
        assert!(m.quarantined.is_none(), "infra failure must break the crash streak");
        // …while two actually consecutive ones still quarantine.
        assert!(m.merge_one(&cfg, 3, crash()));
        assert!(m.quarantined.is_some());
    }

    #[test]
    fn duplicate_schedules_hit_the_memo_and_replay_identically() {
        // Noise off: every seed-1 run produces the same schedule, so the
        // second merge must be served from the memo — and the resulting
        // campaign state must match a memo-off merge exactly.
        let run = || {
            Runtime::run(Config::new(1).with_native_preempt_prob(0.0).with_trace(true), || {
                let ch: Chan<u8> = Chan::new(0);
                let tx = ch.clone();
                go_named("tx", move || tx.send(1));
                ch.recv();
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.fingerprint, b.fingerprint, "identical schedules fingerprint equal");

        let cfg_on = GoatConfig::default().keep_running().with_memo(MemoMode::On);
        let mut on = MergeState::new(CuTable::new());
        assert!(!on.merge_one(&cfg_on, 0, a));
        assert!(!on.merge_one(&cfg_on, 1, b));
        assert_eq!((on.memo_misses, on.memo_hits), (1, 1), "second merge must hit");

        let cfg_off = GoatConfig::default().keep_running().with_memo(MemoMode::Off);
        let mut off = MergeState::new(CuTable::new());
        assert!(!off.merge_one(&cfg_off, 0, run()));
        assert!(!off.merge_one(&cfg_off, 1, run()));
        assert_eq!((off.memo_misses, off.memo_hits), (0, 0));

        assert_eq!(on.covered, off.covered, "memo hit must replay identical coverage");
        assert_eq!(on.universe.len(), off.universe.len());
        assert_eq!(on.global_tree.render(), off.global_tree.render());
        for (x, y) in on.records.iter().zip(off.records.iter()) {
            assert_eq!(x.verdict, y.verdict);
            assert_eq!(x.coverage_percent.to_bits(), y.coverage_percent.to_bits());
            assert_eq!(x.universe_size, y.universe_size);
        }
    }

    #[test]
    fn memo_distinguishes_outcomes_sharing_a_fingerprint() {
        // Same fingerprint, different outcome strings → different keys;
        // a panic's verdict must never be served for a completed run.
        let k1 = memo_key(42, &RunOutcome::Completed);
        let k2 = memo_key(42, &RunOutcome::StepLimit);
        let k3 =
            memo_key(42, &RunOutcome::Panicked { g: goat_trace::Gid(1), msg: "a".to_string() });
        let k4 =
            memo_key(42, &RunOutcome::Panicked { g: goat_trace::Gid(1), msg: "b".to_string() });
        let keys = [k1, k2, k3, k4];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "outcome collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn global_deadlock_campaign() {
        let prog: Arc<dyn Program> = Arc::new(FnProgram::new("gdl", || {
            let mu = Mutex::new();
            mu.lock();
            mu.lock();
        }));
        let goat = Goat::new(GoatConfig::default().with_iterations(3));
        let r = goat.test(prog);
        assert_eq!(r.bug, Some(GoatVerdict::GlobalDeadlock));
    }
}
