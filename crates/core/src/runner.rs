//! The GoAT testing campaign: iterate executions until the bug is hit or
//! a coverage threshold / iteration budget is reached (paper §III-A,
//! "Offline Analysis" loop).

use crate::analysis::{analyze_run, GoatVerdict};
use crate::coverage::extract_coverage;
use crate::globaltree::GlobalGTree;
use crate::program::Program;
use goat_detectors::{Detector, ProgramFn, ToolVerdict};
use goat_model::{scan_sources, CoverageSet, CuTable, RequirementUniverse};
use goat_runtime::{go_internal, Chan, Config, Runtime};
use goat_trace::{Ect, GTree};
use std::sync::Arc;

/// Campaign configuration (the tool's command-line knobs: `-d`, `-freq`,
/// `-cov`, …).
#[derive(Debug, Clone)]
pub struct GoatConfig {
    /// Delay bound `D`: maximum injected yields per execution.
    pub delay_bound: u32,
    /// Maximum testing iterations (`-freq`).
    pub iterations: usize,
    /// First seed; iteration `i` uses `seed0 + i`.
    pub seed0: u64,
    /// Stop as soon as a bug is detected.
    pub stop_on_bug: bool,
    /// Stop once coverage reaches this percentage (requires tracing).
    pub coverage_threshold: Option<f64>,
    /// Native scheduler noise ε passed through to the runtime.
    pub native_preempt_prob: f64,
    /// Watchdog step bound per execution.
    pub max_steps: u64,
    /// Host threads running iterations concurrently (runs are fully
    /// independent; results are identical to the sequential campaign
    /// because per-iteration seeds are fixed and merged in order).
    pub parallelism: usize,
}

impl Default for GoatConfig {
    fn default() -> Self {
        GoatConfig {
            delay_bound: 0,
            iterations: 100,
            seed0: 1,
            stop_on_bug: true,
            coverage_threshold: None,
            native_preempt_prob: 0.02,
            max_steps: 200_000,
            parallelism: 1,
        }
    }
}

impl GoatConfig {
    /// Config with delay bound `d` (the paper's GOAT-D0 … GOAT-D4).
    pub fn with_delay_bound(mut self, d: u32) -> Self {
        self.delay_bound = d;
        self
    }

    /// Set the iteration budget.
    pub fn with_iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }

    /// Set the base seed.
    pub fn with_seed0(mut self, s: u64) -> Self {
        self.seed0 = s;
        self
    }

    /// Keep running after a bug is found (for coverage studies).
    pub fn keep_running(mut self) -> Self {
        self.stop_on_bug = false;
        self
    }

    /// Run iterations on `n` host threads (default 1 = sequential).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        assert!(n >= 1, "parallelism must be at least 1");
        self.parallelism = n;
        self
    }

    fn runtime_config(&self, iter: usize) -> Config {
        Config::new(self.seed0 + iter as u64)
            .with_delay_bound(self.delay_bound)
            .with_native_preempt_prob(self.native_preempt_prob)
            .with_max_steps(self.max_steps)
            .with_trace(true)
    }
}

/// Record of one testing iteration.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iter: usize,
    /// The seed used.
    pub seed: u64,
    /// GoAT's verdict on this execution.
    pub verdict: GoatVerdict,
    /// Cumulative coverage percentage after this iteration.
    pub coverage_percent: f64,
    /// Requirements in the universe after this iteration.
    pub universe_size: usize,
    /// Perturbation yields injected in this execution.
    pub yields: u32,
}

/// The result of a testing campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// Per-iteration records, in order.
    pub records: Vec<IterationRecord>,
    /// 1-based iteration of the first bug detection, if any.
    pub first_detection: Option<usize>,
    /// The verdict of the first detected bug.
    pub bug: Option<GoatVerdict>,
    /// The ECT of the buggy execution (for reports).
    pub bug_ect: Option<Ect>,
    /// The buggy execution's recorded schedule: replay it with
    /// [`Goat::replay`] to re-trigger the bug deterministically
    /// (the paper's "replaying the program's ECT" mode).
    pub bug_schedule: Option<goat_runtime::ReplayLog>,
    /// The requirement universe accumulated over all iterations.
    pub universe: RequirementUniverse,
    /// All requirements covered over all iterations.
    pub covered: CoverageSet,
    /// The global goroutine tree.
    pub global_tree: GlobalGTree,
}

/// Machine-readable campaign summary (for external plotting/tooling).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CampaignSummary {
    /// 1-based iteration of the first detection, if any.
    pub first_detection: Option<usize>,
    /// Symptom code of the detected bug (Table IV legend), if any.
    pub bug: Option<String>,
    /// Per-iteration `(coverage %, universe size, yields)` series.
    pub iterations: Vec<(f64, usize, u32)>,
    /// Final coverage percentage.
    pub final_coverage_percent: f64,
    /// Requirements covered / total.
    pub covered: usize,
    /// Total requirement instances discovered.
    pub universe: usize,
}

impl CampaignResult {
    /// Final coverage percentage.
    pub fn coverage_percent(&self) -> f64 {
        self.covered.percent(&self.universe)
    }

    /// Did the campaign expose a bug?
    pub fn detected(&self) -> bool {
        self.first_detection.is_some()
    }

    /// Build the machine-readable summary.
    pub fn summary(&self) -> CampaignSummary {
        CampaignSummary {
            first_detection: self.first_detection,
            bug: self.bug.as_ref().map(|b| b.symptom().code()),
            iterations: self
                .records
                .iter()
                .map(|r| (r.coverage_percent, r.universe_size, r.yields))
                .collect(),
            final_coverage_percent: self.coverage_percent(),
            covered: self.covered.len(),
            universe: self.universe.len(),
        }
    }

    /// Serialize the summary to JSON.
    ///
    /// # Errors
    /// Propagates `serde_json` failures (not expected for valid data).
    pub fn to_json_summary(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.summary())
    }
}

/// The GoAT tool: drives instrumented executions of a program.
#[derive(Debug, Clone, Default)]
pub struct Goat {
    cfg: GoatConfig,
}

impl Goat {
    /// Create a tool instance with the given campaign configuration.
    pub fn new(cfg: GoatConfig) -> Self {
        Goat { cfg }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &GoatConfig {
        &self.cfg
    }

    /// Build the static model `M` for a program by scanning its sources.
    /// Programs without source metadata get an empty table (CUs are then
    /// discovered dynamically, which the universe supports).
    pub fn static_model(program: &dyn Program) -> CuTable {
        let sources = program.sources();
        if sources.is_empty() {
            return CuTable::new();
        }
        scan_sources(sources.iter()).unwrap_or_default()
    }

    /// Wrap a program with the paper's `goat.Start`/`goat.Watch`/
    /// `goat.Stop` protocol: an *internal* watcher goroutine accompanies
    /// the instrumented main and is signalled when it returns. The
    /// watcher is excluded from application-level analysis (§III-E), so
    /// this also exercises the runtime-goroutine filter on every run.
    fn instrumented(program: Arc<dyn Program>) -> impl FnOnce() + Send + 'static {
        move || {
            let goat_done: Chan<()> = Chan::new(1);
            {
                let goat_done = goat_done.clone();
                go_internal("goat::watcher", move || {
                    // Waits for main's completion signal; if main never
                    // finishes, this internal goroutine parks forever and
                    // is filtered out of the goroutine tree.
                    let _ = goat_done.recv();
                });
            }
            program.main();
            // defer goat.Stop(goat_done): the signal itself runs on an
            // internal goroutine so the tool's own channel operations
            // never enter the program's coverage universe.
            go_internal("goat::stopper", move || {
                goat_done.send(());
            });
        }
    }

    /// Run a full testing campaign on `program`.
    ///
    /// With [`GoatConfig::parallelism`] > 1 the iterations execute on
    /// multiple host threads in batches; because every iteration's seed
    /// is fixed up front and results are merged in iteration order, the
    /// campaign outcome is byte-identical to the sequential one.
    pub fn test(&self, program: Arc<dyn Program>) -> CampaignResult {
        let table = Self::static_model(program.as_ref());
        let mut universe = RequirementUniverse::from_table(table);
        let mut covered = CoverageSet::new();
        let mut global_tree = GlobalGTree::new();
        let mut records = Vec::new();
        let mut first_detection = None;
        let mut bug = None;
        let mut bug_ect = None;
        let mut bug_schedule = None;

        let batch = self.cfg.parallelism.max(1);
        let mut i = 0usize;
        'outer: while i < self.cfg.iterations {
            let n = batch.min(self.cfg.iterations - i);
            // Execute a batch of independent runs (possibly in parallel).
            let results: Vec<goat_runtime::RunResult> = if n == 1 {
                vec![Runtime::run(
                    self.cfg.runtime_config(i),
                    Self::instrumented(Arc::clone(&program)),
                )]
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..n)
                        .map(|k| {
                            let cfg = self.cfg.runtime_config(i + k);
                            let body = Self::instrumented(Arc::clone(&program));
                            scope.spawn(move || Runtime::run(cfg, body))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("campaign worker")).collect()
                })
            };
            // Merge in iteration order: identical to the sequential path.
            for (k, result) in results.into_iter().enumerate() {
                let iter_no = i + k;
                let verdict = analyze_run(&result);
                if let Some(ect) = &result.ect {
                    let cov = extract_coverage(ect, &mut universe);
                    covered.merge(&cov.covered);
                    global_tree.merge_run(&GTree::from_ect(ect), &cov);
                }
                let record = IterationRecord {
                    iter: iter_no + 1,
                    seed: self.cfg.seed0 + iter_no as u64,
                    verdict: verdict.clone(),
                    coverage_percent: covered.percent(&universe),
                    universe_size: universe.len(),
                    yields: result.yields_injected,
                };
                let is_bug = record.verdict.is_bug();
                records.push(record);
                if is_bug && first_detection.is_none() {
                    first_detection = Some(iter_no + 1);
                    bug = Some(verdict);
                    bug_ect = result.ect.clone();
                    bug_schedule = Some(result.schedule.clone());
                    if self.cfg.stop_on_bug {
                        break 'outer;
                    }
                }
                if let Some(th) = self.cfg.coverage_threshold {
                    if covered.percent(&universe) >= th {
                        break 'outer;
                    }
                }
            }
            i += n;
        }
        CampaignResult {
            records,
            first_detection,
            bug,
            bug_ect,
            bug_schedule,
            universe,
            covered,
            global_tree,
        }
    }

    /// Re-execute `program` forcing a previously recorded schedule and
    /// re-analyse the run — deterministic bug reproduction from a
    /// [`CampaignResult::bug_schedule`].
    pub fn replay(
        program: Arc<dyn Program>,
        schedule: goat_runtime::ReplayLog,
    ) -> (GoatVerdict, goat_runtime::RunResult) {
        let cfg = Config::new(0).with_trace(true).with_replay(schedule);
        let result = Runtime::run(cfg, Self::instrumented(program));
        (analyze_run(&result), result)
    }
}

/// GoAT exposed through the common [`Detector`] interface so the
/// evaluation harness can sweep GOAT-D0…D4 alongside the baselines.
#[derive(Debug, Clone, Copy)]
pub struct GoatTool {
    /// The delay bound `D`.
    pub delay_bound: u32,
}

impl GoatTool {
    /// GOAT with delay bound `d`.
    pub fn new(d: u32) -> Self {
        GoatTool { delay_bound: d }
    }
}

impl Detector for GoatTool {
    fn name(&self) -> &'static str {
        match self.delay_bound {
            0 => "goat-d0",
            1 => "goat-d1",
            2 => "goat-d2",
            3 => "goat-d3",
            4 => "goat-d4",
            _ => "goat",
        }
    }

    fn run_once(&self, cfg: Config, program: ProgramFn) -> ToolVerdict {
        let cfg = cfg.with_delay_bound(self.delay_bound).with_trace(true);
        let result = Runtime::run(cfg, move || program());
        let verdict = analyze_run(&result);
        ToolVerdict {
            detected: verdict.is_bug(),
            symptom: verdict.symptom(),
            detail: verdict.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FnProgram;
    use goat_detectors::Symptom;
    use goat_runtime::{go_named, gosched, Chan, Mutex};

    fn leaky_program() -> Arc<dyn Program> {
        Arc::new(FnProgram::new("leaky", || {
            let ch: Chan<u8> = Chan::new(0);
            go_named("stuck", move || {
                ch.recv();
            });
            gosched();
        }))
    }

    fn clean_program() -> Arc<dyn Program> {
        Arc::new(FnProgram::new("clean", || {
            let ch: Chan<u8> = Chan::new(0);
            let tx = ch.clone();
            go_named("tx", move || tx.send(1));
            ch.recv();
        }))
    }

    #[test]
    fn campaign_detects_deterministic_leak_first_try() {
        let goat = Goat::new(GoatConfig::default().with_iterations(10));
        let r = goat.test(leaky_program());
        assert_eq!(r.first_detection, Some(1));
        assert!(matches!(r.bug, Some(GoatVerdict::PartialDeadlock { .. })));
        assert_eq!(r.records.len(), 1, "stopped on bug");
        assert!(r.bug_ect.is_some());
    }

    #[test]
    fn campaign_on_clean_program_exhausts_iterations() {
        let goat = Goat::new(GoatConfig::default().with_iterations(5));
        let r = goat.test(clean_program());
        assert!(!r.detected());
        assert_eq!(r.records.len(), 5);
        assert!(r.coverage_percent() > 0.0);
    }

    #[test]
    fn coverage_accumulates_monotonically() {
        let goat = Goat::new(GoatConfig::default().with_iterations(8).keep_running());
        let r = goat.test(clean_program());
        let mut last = 0.0;
        for rec in &r.records {
            // percentage can dip when the universe grows, but covered
            // count never shrinks — check via coverage set length proxy:
            assert!(rec.coverage_percent >= 0.0 && rec.coverage_percent <= 100.0);
            let _ = last;
            last = rec.coverage_percent;
        }
        assert!(!r.covered.is_empty());
        assert!(r.global_tree.len() >= 2);
    }

    #[test]
    fn coverage_threshold_stops_campaign() {
        let mut cfg = GoatConfig::default().with_iterations(50);
        cfg.coverage_threshold = Some(1.0); // trivially reached
        let goat = Goat::new(cfg);
        let r = goat.test(clean_program());
        assert!(r.records.len() < 50);
    }

    #[test]
    fn delay_bound_injects_yields() {
        let goat = Goat::new(
            GoatConfig::default().with_delay_bound(3).with_iterations(5).keep_running(),
        );
        let r = goat.test(clean_program());
        assert!(r.records.iter().any(|rec| rec.yields > 0));
        assert!(r.records.iter().all(|rec| rec.yields <= 3));
    }

    #[test]
    fn goat_tool_as_detector() {
        let tool = GoatTool::new(0);
        assert_eq!(tool.name(), "goat-d0");
        let v = tool.run_once(
            Config::new(1).with_native_preempt_prob(0.0),
            Arc::new(|| {
                let ch: Chan<u8> = Chan::new(0);
                go_named("stuck", move || {
                    ch.recv();
                });
                gosched();
            }),
        );
        assert!(v.detected);
        assert_eq!(v.symptom, Symptom::PartialDeadlock { leaked: 1 });
    }

    #[test]
    fn goat_detects_what_builtin_misses() {
        use goat_detectors::BuiltinDetector;
        let prog: ProgramFn = Arc::new(|| {
            let ch: Chan<u8> = Chan::new(0);
            go_named("stuck", move || {
                ch.recv();
            });
            gosched();
        });
        let b = BuiltinDetector::new()
            .run_once(Config::new(1).with_native_preempt_prob(0.0), Arc::clone(&prog));
        let g = GoatTool::new(0).run_once(Config::new(1).with_native_preempt_prob(0.0), prog);
        assert!(!b.detected, "builtin misses the leak");
        assert!(g.detected, "GoAT sees it in the trace");
    }

    #[test]
    fn seeds_differ_across_iterations() {
        let goat = Goat::new(GoatConfig::default().with_iterations(3).keep_running());
        let r = goat.test(clean_program());
        let seeds: Vec<u64> = r.records.iter().map(|x| x.seed).collect();
        assert_eq!(seeds, vec![1, 2, 3]);
    }

    #[test]
    fn bug_schedule_replays_to_the_same_verdict() {
        // A schedule-dependent bug: find it once, then re-trigger it
        // deterministically from the recorded schedule.
        let program: Arc<dyn Program> = Arc::new(FnProgram::new("racy", || {
            let mu = Mutex::new();
            let ch: Chan<u8> = Chan::new(0);
            {
                let (mu, ch) = (mu.clone(), ch.clone());
                go_named("monitor", move || loop {
                    let got = goat_runtime::Select::new()
                        .recv(&ch, |v| v)
                        .default(|| None)
                        .run();
                    if got.is_some() {
                        return;
                    }
                    mu.lock();
                    mu.unlock();
                });
            }
            {
                let (mu, ch) = (mu.clone(), ch.clone());
                go_named("changer", move || {
                    mu.lock();
                    ch.send(1);
                    mu.unlock();
                });
            }
            goat_runtime::time::sleep(std::time::Duration::from_millis(30));
        }));
        let goat = Goat::new(GoatConfig::default().with_iterations(200));
        let result = goat.test(Arc::clone(&program));
        let bug = result.bug.clone().expect("bug found");
        let schedule = result.bug_schedule.expect("schedule recorded");
        for _ in 0..3 {
            let (verdict, run) = Goat::replay(Arc::clone(&program), schedule.clone());
            assert!(!run.replay_diverged, "replay must follow the log");
            assert_eq!(verdict, bug, "replay must reproduce the bug");
        }
    }

    #[test]
    fn watcher_goroutine_is_traced_but_filtered() {
        // Run one instrumented execution directly to inspect its trace.
        let result = goat_runtime::Runtime::run(
            goat_runtime::Config::new(1),
            Goat::instrumented(clean_program()),
        );
        let verdict = analyze_run(&result);
        let ect = result.ect.expect("traced");
        let tree = goat_trace::GTree::from_ect(&ect);
        let watcher = tree
            .nodes()
            .find(|n| n.name == "goat::watcher")
            .expect("watcher present in the raw tree");
        assert!(watcher.internal);
        assert!(
            tree.app_nodes().iter().all(|n| n.name != "goat::watcher"),
            "watcher must be filtered from application-level analysis"
        );
        // And the offline verdict ignores it even though it may leak.
        assert_eq!(verdict, GoatVerdict::Pass);
    }

    #[test]
    fn parallel_campaign_matches_sequential_results() {
        let seq = Goat::new(GoatConfig::default().with_iterations(12).keep_running())
            .test(clean_program());
        let par = Goat::new(
            GoatConfig::default().with_iterations(12).keep_running().with_parallelism(4),
        )
        .test(clean_program());
        assert_eq!(seq.records.len(), par.records.len());
        for (a, b) in seq.records.iter().zip(par.records.iter()) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.yields, b.yields);
        }
        assert_eq!(seq.covered.len(), par.covered.len());
        assert_eq!(seq.universe.len(), par.universe.len());
        assert!((seq.coverage_percent() - par.coverage_percent()).abs() < 1e-9);
    }

    #[test]
    fn parallel_campaign_finds_the_same_first_bug() {
        let seq = Goat::new(GoatConfig::default().with_iterations(50)).test(leaky_program());
        let par = Goat::new(
            GoatConfig::default().with_iterations(50).with_parallelism(8),
        )
        .test(leaky_program());
        assert_eq!(seq.first_detection, par.first_detection);
        assert_eq!(seq.bug, par.bug);
    }

    #[test]
    fn campaign_summary_serializes() {
        let goat = Goat::new(GoatConfig::default().with_iterations(4).keep_running());
        let r = goat.test(clean_program());
        let json = r.to_json_summary().expect("serializable");
        assert!(json.contains("final_coverage_percent"), "{json}");
        let parsed: CampaignSummary = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(parsed.iterations.len(), 4);
        assert_eq!(parsed.first_detection, None);
        assert!(parsed.universe >= parsed.covered);
    }

    #[test]
    fn global_deadlock_campaign() {
        let prog: Arc<dyn Program> = Arc::new(FnProgram::new("gdl", || {
            let mu = Mutex::new();
            mu.lock();
            mu.lock();
        }));
        let goat = Goat::new(GoatConfig::default().with_iterations(3));
        let r = goat.test(prog);
        assert_eq!(r.bug, Some(GoatVerdict::GlobalDeadlock));
    }
}
