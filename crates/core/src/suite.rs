//! Suite-scale orchestration: one global work-stealing iteration queue
//! over every selected kernel.
//!
//! The paper's whole-benchmark evaluation (`-eval_conf … -freq`) runs a
//! *suite* of campaigns, and historically the CLI ran them strictly
//! sequentially: each kernel finished — saturation tail included —
//! before the next one started. [`run_suite`] turns the suite itself
//! into the unit of execution:
//!
//! * **Global work stealing** — every kernel becomes a claimable
//!   *iteration stream* (`next`/`merged`/`cutoff` plus the familiar
//!   lag-capped claim window) and `jobs` long-lived workers claim
//!   batches from whichever stream has work, preferring the stream they
//!   last ran (affinity) and stealing across kernels otherwise. One
//!   kernel's saturation tail no longer serializes the suite.
//! * **Determinism** — per-kernel results are byte-identical to the
//!   sequential suite at any `jobs` value: every iteration's seed is
//!   fixed up front (`seed0 + i`), merging is the only stateful step
//!   and each kernel's merges happen in strict iteration order behind a
//!   per-kernel reorder buffer. Cross-kernel interleaving touches no
//!   per-kernel state. Guided campaigns keep the claim window capped at
//!   the bandit's feedback lag, the same argument as the streaming
//!   executor's. Report lines render through a *kernel-granularity*
//!   reorder buffer: the `emit` callback always fires in kernel order.
//! * **Adaptive budget reallocation** (`GOAT_SUITE_REALLOC`) — kernels
//!   that stop early (bug with `stop_on_bug`, or coverage saturation)
//!   release their unspent base budget into a pool. Once *every* kernel
//!   has completed its base budget (a deterministic barrier), the pool
//!   is split evenly — remainder to the earliest kernel indices, capped
//!   at one extra base budget per kernel — across the still-exploring
//!   kernels (full budget spent, nothing detected), whose streams then
//!   re-open for the extension. Grants depend only on the per-kernel
//!   base-phase results and the kernel order, both deterministic, so
//!   reallocated suites are also byte-identical across `jobs`. A
//!   recipient's extended campaign equals a standalone campaign that
//!   had `base + grant` iterations from the start.
//! * **Warm shared resources** — the goroutine worker-thread pool and
//!   the trace-buffer pool are process-wide and stay warm by nature;
//!   this module additionally recycles the per-campaign analysis
//!   scratch ([`EctBuffers`]) from finished kernels into later ones
//!   (scratch contents never affect results — it is cleared per pass)
//!   and, under `GOAT_ISOLATE=proc`, keeps sandboxed workers pooled
//!   across kernels instead of draining per campaign (checkouts
//!   re-`Init` per campaign, so reuse is sound), draining once at suite
//!   end. The analysis *memo* is deliberately **not** shared: its keys
//!   are schedule fingerprints, which only identify a run within one
//!   kernel.
//! * **Suite-level resume** — each kernel keeps its own checkpoint
//!   sidecar (see [`per_kernel_checkpoint`]); a suite-level manifest
//!   sidecar (`<base>.suite.<ext>`) records the kernel list and, once
//!   the barrier has passed, the grants. A SIGKILLed suite resumes
//!   mid-suite: finished kernels replay from their sidecars without
//!   re-running, in-flight kernels continue from their last write, and
//!   recorded grants are reused verbatim so extension budgets survive
//!   the crash.
//!
//! Observability: the orchestrator reports `suite.*` metrics — kernels
//! in flight, cross-kernel steals, budget donated/granted, warm-pool
//! reuse — and a `suite` JSONL event when telemetry is on.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

use goat_metrics::Histogram;
use goat_runtime::RunResult;

use crate::bandit::{Arm, Bandit, GUIDED_LAG};
use crate::checkpoint;
use crate::plane::EctBuffers;
use crate::program::Program;
use crate::runner::{CampaignResult, Checkpointer, Goat, GoatConfig, MergeState};

/// Environment knob for the suite's cross-kernel worker count.
pub const JOBS_ENV: &str = "GOAT_JOBS";
/// Environment knob enabling adaptive budget reallocation.
pub const REALLOC_ENV: &str = "GOAT_SUITE_REALLOC";
/// Schema version of the suite manifest sidecar.
pub const SUITE_MANIFEST_VERSION: u32 = 1;

/// Suite-level orchestration knobs, separate from the per-campaign
/// [`GoatConfig`] they multiplex.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Workers claiming iterations across kernels (`-jobs`/`GOAT_JOBS`;
    /// defaults to `GOAT_PARALLELISM`, then 1). Results are identical
    /// at any value.
    pub jobs: usize,
    /// Adaptive budget reallocation (`GOAT_SUITE_REALLOC`): early
    /// stoppers donate unspent base budget to still-exploring kernels.
    /// Off by default — it extends some kernels' budgets, which changes
    /// (deterministically) what the suite reports.
    pub realloc: bool,
    /// Keep shared resources warm across kernels: pre-spawn the
    /// goroutine pool and recycle analysis scratch between campaigns.
    /// On by default; the bench's cold leg turns it off.
    pub warm: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        let env_jobs = |name: &str| {
            std::env::var(name).ok().and_then(|v| v.parse::<usize>().ok()).filter(|n| *n >= 1)
        };
        SuiteConfig {
            jobs: env_jobs(JOBS_ENV).or_else(|| env_jobs("GOAT_PARALLELISM")).unwrap_or(1),
            realloc: matches!(
                std::env::var(REALLOC_ENV).ok().as_deref(),
                Some("1") | Some("on") | Some("true") | Some("yes")
            ),
            warm: true,
        }
    }
}

impl SuiteConfig {
    /// Set the cross-kernel worker count (overrides `GOAT_JOBS`).
    pub fn with_jobs(mut self, n: usize) -> Self {
        assert!(n >= 1, "jobs must be at least 1");
        self.jobs = n;
        self
    }

    /// Enable or disable adaptive budget reallocation.
    pub fn with_realloc(mut self, on: bool) -> Self {
        self.realloc = on;
        self
    }

    /// Enable or disable warm-resource reuse across kernels.
    pub fn with_warm(mut self, on: bool) -> Self {
        self.warm = on;
        self
    }
}

/// End-of-suite orchestration counters (also exported as `suite.*`
/// metrics and a `suite` JSONL event).
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct SuiteStats {
    /// Kernels the suite ran.
    pub kernels: usize,
    /// Cross-kernel workers used.
    pub jobs: usize,
    /// Claims where a worker switched to a different kernel's stream.
    pub steals: u64,
    /// Peak number of kernels with claimed-but-unmerged iterations.
    pub kernels_inflight_max: usize,
    /// Unspent base-budget iterations released by early stoppers.
    pub budget_donated: usize,
    /// Extension iterations granted to still-exploring kernels.
    pub budget_granted: usize,
    /// Campaigns that started on another kernel's recycled analysis
    /// scratch instead of growing their own.
    pub warm_bufs_reused: u64,
    /// Isolated-worker checkouts served by the warm cross-kernel pool
    /// during the suite (`isolate.workers_reused` delta).
    pub isolate_workers_reused: u64,
}

/// Derive a kernel-specific checkpoint sidecar from the base path the
/// user supplied: `cp.json` → `cp.<kernel>.json` (no extension:
/// `cp` → `cp.<kernel>`). One shared sidecar across kernels would
/// fingerprint-mismatch on every kernel (program name differs) and each
/// campaign would overwrite the previous kernel's state; per-kernel
/// sidecars are what make suite-mode resume actually resume.
pub fn per_kernel_checkpoint(base: &Path, kernel: &str) -> PathBuf {
    match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => base.with_extension(format!("{kernel}.{ext}")),
        None => base.with_extension(kernel),
    }
}

/// The suite manifest's sidecar path for a given base checkpoint path
/// (`cp.json` → `cp.suite.json`). No benchmark kernel is named `suite`.
pub fn suite_manifest_path(base: &Path) -> PathBuf {
    per_kernel_checkpoint(base, "suite")
}

/// Suite-level checkpoint manifest: which kernels the suite runs and —
/// once the reallocation barrier has passed — the extension grants.
/// Per-kernel progress lives in the per-kernel sidecars; the manifest
/// makes the *grants* durable so a suite killed mid-extension resumes
/// with the same budgets it was running.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SuiteManifest {
    /// Schema version ([`SUITE_MANIFEST_VERSION`]).
    pub version: u32,
    /// Suite fingerprint: base-config fingerprint + kernel list +
    /// realloc flag. A mismatch invalidates the manifest.
    pub fingerprint: String,
    /// Kernel names, in suite order.
    pub kernels: Vec<String>,
    /// Per-kernel extension grants, indexed like `kernels`; `None`
    /// until the reallocation barrier has passed.
    pub grants: Option<Vec<usize>>,
}

impl SuiteManifest {
    /// Atomically persist to `path` (`path.tmp` + rename), mirroring
    /// [`crate::checkpoint::CampaignCheckpoint::store`]. Failure costs
    /// durability, not correctness.
    pub fn store(&self, path: &Path) {
        let json = match serde_json::to_string(self) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("goat: suite manifest serialize failed ({e}); suite continues");
                return;
            }
        };
        let tmp = path.with_extension("tmp");
        let write =
            std::fs::write(&tmp, json.as_bytes()).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("goat: suite manifest write failed ({e}); suite continues");
        }
    }

    /// Load and validate a manifest; `None` when absent, unreadable or
    /// fingerprint-mismatched (starting fresh is always sound).
    pub fn load(path: &Path, fingerprint: &str) -> Option<SuiteManifest> {
        let data = std::fs::read_to_string(path).ok()?;
        let man: SuiteManifest = match serde_json::from_str(&data) {
            Ok(m) => m,
            Err(e) => {
                eprintln!(
                    "goat: ignoring unusable suite manifest {}: {e}; starting over",
                    path.display()
                );
                return None;
            }
        };
        (man.version == SUITE_MANIFEST_VERSION && man.fingerprint == fingerprint).then_some(man)
    }
}

/// The suite's identity: the base campaign fingerprint (which already
/// excludes the iteration budget, so grants stay compatible) plus the
/// kernel list and the realloc mode.
fn suite_fingerprint(base: &GoatConfig, names: &[String], realloc: bool) -> String {
    format!(
        "suite-v{SUITE_MANIFEST_VERSION}:{}:k={}:realloc={}",
        checkpoint::fingerprint("__suite__", base),
        names.join(","),
        realloc
    )
}

/// One kernel's claimable iteration stream, guarded by the suite
/// queue's lock.
struct Stream {
    /// Next unclaimed iteration index.
    next: usize,
    /// Iterations merged so far (claims stay < `merged + window`).
    merged: usize,
    /// One past the last claimable index; grows on an extension grant.
    cutoff: usize,
    /// Claim window (capped at [`GUIDED_LAG`] for guided campaigns).
    window: usize,
    /// Iterations per claim ([`GoatConfig::effective_batch`]).
    batch: usize,
    /// An early stop fired (bug/threshold/quarantine/saturation): no
    /// further claims, outstanding results are speculative discards.
    halted: bool,
    /// The stream reached `cutoff` or halted; cleared when an extension
    /// grant re-opens it.
    complete: bool,
    /// Completed its base budget without stopping and awaits the
    /// reallocation barrier.
    pending: bool,
    /// Claimed-but-undelivered iterations (drives the kernels-in-flight
    /// gauge).
    inflight: usize,
    /// Unspent base budget donated at finalize (early stoppers only).
    released: usize,
}

fn claimable(s: &Stream) -> bool {
    !s.complete && !s.halted && s.next < s.cutoff && s.next < s.merged + s.window
}

struct QueueState {
    streams: Vec<Stream>,
    /// Rotating scan start so concurrent workers spread across kernels.
    cursor: usize,
    /// Fully finalized kernels; all of them means shutdown.
    finalized: usize,
    /// The reallocation barrier has passed (immediately true when
    /// realloc is off or grants were preset by a resumed manifest).
    barrier_open: bool,
    shutdown: bool,
    steals: u64,
    inflight_max: usize,
    budget_donated: usize,
    budget_granted: usize,
}

/// The global work-stealing queue: one lock, two condvars (workers wait
/// for claimable work; the coordinator waits for completions).
struct SuiteQueue {
    state: StdMutex<QueueState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

impl SuiteQueue {
    /// Claim up to one batch of contiguous iterations from some
    /// kernel's stream, preferring `last` (the worker's previous
    /// kernel) and stealing from the next claimable stream otherwise.
    /// Blocks while nothing is claimable; `None` once the suite is
    /// over.
    fn claim(&self, last: Option<usize>) -> Option<(usize, usize, usize)> {
        let mut st = self.state.lock().expect("suite queue");
        loop {
            if st.shutdown {
                return None;
            }
            let n = st.streams.len();
            let mut pick = last.filter(|&k| claimable(&st.streams[k]));
            if pick.is_none() {
                for off in 0..n {
                    let k = (st.cursor + off) % n;
                    if claimable(&st.streams[k]) {
                        pick = Some(k);
                        break;
                    }
                }
            }
            if let Some(k) = pick {
                if last != Some(k) {
                    // A fresh worker's first claim is placement, not
                    // theft; switching kernels mid-suite is a steal.
                    st.cursor = (k + 1) % n;
                    if last.is_some() {
                        st.steals += 1;
                    }
                }
                let s = &mut st.streams[k];
                let lo = s.next;
                let hi = (s.merged + s.window).min(s.cutoff).min(lo + s.batch);
                s.next = hi;
                s.inflight += hi - lo;
                let inflight_now = st.streams.iter().filter(|s| s.inflight > 0).count();
                st.inflight_max = st.inflight_max.max(inflight_now);
                return Some((k, lo, hi));
            }
            st = self.work_cv.wait(st).expect("suite queue");
        }
    }
}

/// Everything one kernel's merge thread-of-record owns, behind the
/// slot's lock: the campaign merge state, the iteration-order reorder
/// buffer, and the checkpoint writer.
struct SlotMerge {
    m: MergeState,
    reorder: BTreeMap<usize, RunResult>,
    /// Next iteration index to merge.
    expect: usize,
    /// Mirror of the stream's halt, readable under the slot lock.
    halted: bool,
    /// The warm-scratch adoption window has passed (it is only sound
    /// before the first merge grows this campaign's own scratch).
    warmed: bool,
    ckpt: Option<Checkpointer>,
    reorder_depth_max: usize,
    t0: Option<Instant>,
}

/// One kernel of the suite: its program, configured campaign engine,
/// live merge state and (after finalize) its result, awaiting in-order
/// emission.
struct Slot {
    name: String,
    program: Arc<dyn Program>,
    goat: Goat,
    guided: Option<Arc<StdMutex<Bandit>>>,
    live: StdMutex<Option<SlotMerge>>,
    done: StdMutex<Option<CampaignResult>>,
    iter_wall: Histogram,
    claim_wait: Histogram,
}

/// Analysis scratch recycled from finished kernels into later ones.
struct WarmPool {
    bufs: StdMutex<Vec<EctBuffers>>,
    reused: AtomicU64,
    enabled: bool,
}

/// End-of-suite orchestration summary on the JSONL telemetry stream.
#[derive(serde::Serialize)]
struct SuiteEvent {
    kind: &'static str,
    suite: SuiteStats,
}

/// Deliver one claimed batch's results: insert into the kernel's
/// reorder buffer, merge everything now in order, then update the
/// stream's accounting and finalize the kernel if it just completed.
fn deliver(
    slots: &[Slot],
    queue: &SuiteQueue,
    warm: &WarmPool,
    k: usize,
    lo: usize,
    results: Vec<RunResult>,
) {
    let delivered = results.len();
    let mut merged_now = 0usize;
    let mut halted_now = false;
    {
        let mut live = slots[k].live.lock().expect("slot merge");
        if let Some(sm) = live.as_mut() {
            for (off, r) in results.into_iter().enumerate() {
                sm.reorder.insert(lo + off, r);
            }
            sm.reorder_depth_max = sm.reorder_depth_max.max(sm.reorder.len());
            while let Some(r) = sm.reorder.remove(&sm.expect) {
                if !sm.halted {
                    if warm.enabled && !sm.warmed {
                        // First merge for this kernel: adopt a finished
                        // kernel's grown scratch if one is available.
                        // Scratch is cleared per analysis pass, so this
                        // changes allocation behaviour, never results.
                        sm.warmed = true;
                        if let Some(b) = warm.bufs.lock().expect("warm pool").pop() {
                            sm.m.bufs = b;
                            warm.reused.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let stop = sm.m.merge_one(slots[k].goat.config(), sm.expect, r);
                    if let Some(c) = sm.ckpt.as_mut() {
                        c.note_merged(&sm.m);
                    }
                    merged_now += 1;
                    if stop {
                        sm.halted = true;
                        halted_now = true;
                    }
                }
                // Past a halt the remaining in-order results were
                // speculative claims: discarded, exactly like the
                // streaming executor's post-stop claims.
                sm.expect += 1;
            }
        }
        // A `None` slot was already finalized: these results are
        // speculative leftovers from a pre-halt claim — dropped.
    }
    let finalize = {
        let mut st = queue.state.lock().expect("suite queue");
        let barrier_open = st.barrier_open;
        let s = &mut st.streams[k];
        s.inflight -= delivered;
        s.merged += merged_now;
        if halted_now {
            s.halted = true;
        }
        let mut finalize = false;
        if !s.complete && (s.halted || s.merged >= s.cutoff) {
            s.complete = true;
            if s.halted || barrier_open {
                finalize = true;
            } else {
                // Budget exhausted pre-barrier with realloc on: park
                // until every kernel's base phase is done, then either
                // receive an extension or finalize with grant 0.
                s.pending = true;
            }
        }
        queue.work_cv.notify_all();
        queue.done_cv.notify_all();
        finalize
    };
    if finalize {
        finalize_slot(slots, queue, warm, k);
    }
}

/// Close out one kernel: final checkpoint write, donate unspent budget
/// (pre-barrier early stoppers only), recycle the analysis scratch into
/// the warm pool, package the [`CampaignResult`] for in-order emission
/// and account the completion — the last finalize shuts the queue down.
fn finalize_slot(slots: &[Slot], queue: &SuiteQueue, warm: &WarmPool, k: usize) {
    let slot = &slots[k];
    let Some(mut sm) = slot.live.lock().expect("slot merge").take() else { return };
    if let Some(c) = sm.ckpt.as_mut() {
        c.finalize(&sm.m);
    }
    let base_iters = slot.goat.config().iterations;
    let early_stop =
        (slot.goat.config().stop_on_bug && sm.m.bug.is_some()) || sm.m.saturated.is_some();
    let released = if early_stop { base_iters.saturating_sub(sm.m.records.len()) } else { 0 };
    if warm.enabled {
        warm.bufs.lock().expect("warm pool").push(std::mem::take(&mut sm.m.bufs));
    }
    if goat_metrics::enabled() {
        goat_metrics::set_context(Some(&slot.name));
    }
    let result = slot.goat.finish_campaign(
        sm.m,
        slot.program.as_ref(),
        sm.t0,
        &slot.iter_wall,
        &slot.claim_wait,
        sm.reorder_depth_max,
    );
    *slot.done.lock().expect("slot result") = Some(result);
    let mut st = queue.state.lock().expect("suite queue");
    if !st.barrier_open {
        // Extension-phase stops never re-donate: redistribution is a
        // single deterministic round.
        st.streams[k].released = released;
    }
    st.streams[k].halted = true;
    st.streams[k].complete = true;
    st.finalized += 1;
    if st.finalized == st.streams.len() {
        st.shutdown = true;
        queue.work_cv.notify_all();
    }
    queue.done_cv.notify_all();
}

/// Deterministically split the donated pool across `recipients`
/// (ascending kernel indices): even shares, remainder to the earliest
/// indices, each grant capped at `cap` (one extra base budget). Pool
/// beyond the caps is dropped — redistribution is one round.
fn split_pool(n: usize, recipients: &[usize], pool: usize, cap: usize) -> Vec<usize> {
    let mut grants = vec![0usize; n];
    if recipients.is_empty() || pool == 0 {
        return grants;
    }
    let share = pool / recipients.len();
    let extra = pool % recipients.len();
    for (j, &k) in recipients.iter().enumerate() {
        grants[k] = (share + usize::from(j < extra)).min(cap);
    }
    grants
}

/// The reallocation barrier: every stream has completed its base
/// budget. Compute grants from the (deterministic) base-phase results —
/// or adopt the grants a resumed manifest recorded — persist them, then
/// re-open the recipients' streams and finalize the rest.
#[allow(clippy::too_many_arguments)]
fn apply_realloc(
    slots: &[Slot],
    queue: &SuiteQueue,
    warm: &WarmPool,
    base_iters: usize,
    preset: Option<&Vec<usize>>,
    manifest_path: Option<&PathBuf>,
    fingerprint: &str,
    names: &[String],
) {
    let (pool, pending): (usize, Vec<usize>) = {
        let st = queue.state.lock().expect("suite queue");
        (
            st.streams.iter().map(|s| s.released).sum(),
            st.streams.iter().enumerate().filter(|(_, s)| s.pending).map(|(k, _)| k).collect(),
        )
    };
    let grants = match preset {
        Some(g) => g.clone(),
        None => {
            // Recipients: pending streams (ran the full base budget
            // without stopping) that are still exploring — detected
            // kernels under `keep_running` are done, not starving.
            let recipients: Vec<usize> = pending
                .iter()
                .copied()
                .filter(|&k| {
                    let live = slots[k].live.lock().expect("slot merge");
                    live.as_ref().is_some_and(|sm| sm.m.first_detection.is_none())
                })
                .collect();
            let grants = split_pool(slots.len(), &recipients, pool, base_iters);
            if let Some(path) = manifest_path {
                SuiteManifest {
                    version: SUITE_MANIFEST_VERSION,
                    fingerprint: fingerprint.to_string(),
                    kernels: names.to_vec(),
                    grants: Some(grants.clone()),
                }
                .store(path);
            }
            grants
        }
    };
    let to_finalize: Vec<usize> = {
        let mut st = queue.state.lock().expect("suite queue");
        st.barrier_open = true;
        st.budget_donated = pool;
        st.budget_granted = grants.iter().sum();
        let mut finalize = Vec::new();
        for &k in &pending {
            if grants[k] > 0 {
                let s = &mut st.streams[k];
                s.cutoff += grants[k];
                s.complete = false;
                s.pending = false;
            } else {
                st.streams[k].pending = false;
                finalize.push(k);
            }
        }
        queue.work_cv.notify_all();
        finalize
    };
    for k in to_finalize {
        finalize_slot(slots, queue, warm, k);
    }
}

/// Run every kernel in `kernels` as one suite over a global
/// work-stealing iteration queue, invoking `emit` once per kernel **in
/// kernel order** with its finished [`CampaignResult`] (the bug trace
/// is recycled after `emit` returns).
///
/// Per-kernel results are byte-identical to running the kernels
/// sequentially with [`Goat::test`], at any [`SuiteConfig::jobs`]
/// value; see the module docs for the determinism argument. With
/// [`GoatConfig::checkpoint`] set, per-kernel sidecars plus a suite
/// manifest make a SIGKILLed suite resume mid-suite.
pub fn run_suite(
    base: &GoatConfig,
    suite: &SuiteConfig,
    kernels: &[Arc<dyn Program>],
    emit: &mut dyn FnMut(usize, &str, &mut CampaignResult),
) -> SuiteStats {
    let jobs = suite.jobs.max(1);
    let mut stats = SuiteStats { kernels: kernels.len(), jobs, ..SuiteStats::default() };
    if kernels.is_empty() {
        return stats;
    }
    let telemetry_on = goat_metrics::enabled();
    let reg = goat_metrics::global();
    let isolate_reused_before = reg.counter("isolate.workers_reused").get();
    if suite.warm {
        // Pre-spawn parked goroutine-pool workers so the first claims
        // of a cold process do not all pay thread-creation cost.
        goat_runtime::pool::prewarm(jobs);
    }

    let names: Vec<String> = kernels.iter().map(|p| p.name().to_string()).collect();
    let fingerprint = suite_fingerprint(base, &names, suite.realloc);
    let manifest_path = base.checkpoint.as_ref().map(|p| suite_manifest_path(p));
    let preset_grants: Option<Vec<usize>> = if suite.realloc {
        manifest_path
            .as_ref()
            .and_then(|p| SuiteManifest::load(p, &fingerprint))
            .and_then(|m| m.grants)
            .filter(|g| g.len() == kernels.len())
    } else {
        None
    };
    if let Some(path) = &manifest_path {
        if preset_grants.is_none() {
            SuiteManifest {
                version: SUITE_MANIFEST_VERSION,
                fingerprint: fingerprint.clone(),
                kernels: names.clone(),
                grants: None,
            }
            .store(path);
        }
    }

    let warm = WarmPool {
        bufs: StdMutex::new(Vec::new()),
        reused: AtomicU64::new(0),
        enabled: suite.warm,
    };

    // Build every kernel's slot and stream. Resume happens here, before
    // any worker runs: a kernel whose sidecar says it already stopped
    // (or already spent its budget) starts complete, re-running
    // nothing — that is what keeps suite resume byte-identical.
    let mut slots: Vec<Slot> = Vec::with_capacity(kernels.len());
    let mut streams: Vec<Stream> = Vec::with_capacity(kernels.len());
    let mut init_finalize: Vec<usize> = Vec::new();
    for (k, program) in kernels.iter().enumerate() {
        let name = names[k].clone();
        let mut cfg = base.clone();
        if let Some(bp) = &base.checkpoint {
            cfg.checkpoint = Some(per_kernel_checkpoint(bp, &name));
        }
        let goat = Goat::new(cfg);
        let cfg = goat.config();
        let table = Goat::static_model(program.as_ref());
        let mut m = MergeState::new(table);
        // The bandit must exist before resume so a checkpoint's reward
        // history lands back in it.
        m.guided = cfg.guided.then(|| {
            Arc::new(StdMutex::new(Bandit::new(cfg.seed0, cfg.strategy, cfg.delay_bound)))
        });
        let guided = m.guided.clone();
        let ckpt = Checkpointer::new(cfg, &name);
        let start = ckpt.as_ref().map_or(0, |c| c.resume(&mut m));
        let resumed_stopped = m.quarantined.is_some()
            || m.saturated.is_some()
            || (cfg.stop_on_bug && m.bug.is_some())
            || cfg
                .coverage_threshold
                .is_some_and(|th| start > 0 && m.covered.percent(&m.universe) >= th);
        let mut window = jobs * 4;
        if cfg.guided {
            window = window.min(GUIDED_LAG);
        }
        let cutoff = cfg.iterations + preset_grants.as_ref().map_or(0, |g| g[k]);
        let stream = Stream {
            next: start,
            merged: start,
            cutoff,
            window: window.max(1),
            batch: cfg.effective_batch(),
            halted: resumed_stopped,
            complete: resumed_stopped || start >= cutoff,
            pending: !resumed_stopped
                && start >= cutoff
                && suite.realloc
                && preset_grants.is_none(),
            inflight: 0,
            released: 0,
        };
        let t0 = telemetry_on.then(Instant::now);
        slots.push(Slot {
            name,
            program: Arc::clone(program),
            goat,
            guided,
            live: StdMutex::new(Some(SlotMerge {
                m,
                reorder: BTreeMap::new(),
                expect: start,
                halted: resumed_stopped,
                warmed: false,
                ckpt,
                reorder_depth_max: 0,
                t0,
            })),
            done: StdMutex::new(None),
            iter_wall: Histogram::default(),
            claim_wait: Histogram::default(),
        });
        if stream.complete && !stream.pending {
            init_finalize.push(k);
        }
        streams.push(stream);
    }

    let queue = SuiteQueue {
        state: StdMutex::new(QueueState {
            streams,
            cursor: 0,
            finalized: 0,
            barrier_open: !suite.realloc || preset_grants.is_some(),
            shutdown: false,
            steals: 0,
            inflight_max: 0,
            budget_donated: 0,
            budget_granted: preset_grants.as_ref().map_or(0, |g| g.iter().sum()),
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    };
    for k in init_finalize {
        finalize_slot(&slots, &queue, &warm, k);
    }

    let slots_ref = &slots;
    let queue_ref = &queue;
    let warm_ref = &warm;
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(move || {
                let mut last: Option<usize> = None;
                loop {
                    let t_claim = telemetry_on.then(Instant::now);
                    let Some((k, lo, hi)) = queue_ref.claim(last) else { return };
                    let slot = &slots_ref[k];
                    if let Some(t) = t_claim {
                        slot.claim_wait.record(t.elapsed().as_nanos() as u64);
                    }
                    last = Some(k);
                    // Arm selection happens at claim time in iteration
                    // order; the lag-capped window guarantees the
                    // rewards `select(i)` reads are already merged.
                    let arms: Vec<Option<Arm>> =
                        (lo..hi).map(|i| Goat::select_arm(&slot.guided, i)).collect();
                    let t_iter = telemetry_on.then(Instant::now);
                    let results = slot.goat.run_batch_supervised(lo, &slot.program, &arms);
                    if let Some(t) = t_iter {
                        let per = t.elapsed().as_nanos() as u64 / arms.len() as u64;
                        for _ in 0..arms.len() {
                            slot.iter_wall.record(per);
                        }
                    }
                    deliver(slots_ref, queue_ref, warm_ref, k, lo, results);
                }
            });
        }

        // Coordinator: emit finished kernels in kernel order, open the
        // reallocation barrier when every base phase is done, stop when
        // everything is finalized.
        let mut next_emit = 0usize;
        loop {
            while next_emit < slots.len() {
                let taken = slots[next_emit].done.lock().expect("slot result").take();
                let Some(mut r) = taken else { break };
                emit(next_emit, &slots[next_emit].name, &mut r);
                // Suite mode renders no per-bug trace report, so the
                // bug trace (if any) goes straight back to the
                // recycling pool.
                r.recycle_bug_trace();
                next_emit += 1;
            }
            let st = queue.state.lock().expect("suite queue");
            if st.finalized == slots.len() {
                break;
            }
            if !st.barrier_open && st.streams.iter().all(|s| s.complete) {
                drop(st);
                apply_realloc(
                    slots_ref,
                    queue_ref,
                    warm_ref,
                    base.iterations,
                    preset_grants.as_ref(),
                    manifest_path.as_ref(),
                    &fingerprint,
                    &names,
                );
                continue;
            }
            drop(queue.done_cv.wait(st).expect("suite queue"));
        }
        while next_emit < slots.len() {
            let taken = slots[next_emit].done.lock().expect("slot result").take();
            let mut r = taken.expect("every kernel finalized");
            emit(next_emit, &slots[next_emit].name, &mut r);
            r.recycle_bug_trace();
            next_emit += 1;
        }
    });

    if telemetry_on {
        goat_metrics::set_context(None);
    }
    {
        let st = queue.state.lock().expect("suite queue");
        stats.steals = st.steals;
        stats.kernels_inflight_max = st.inflight_max;
        stats.budget_donated = st.budget_donated;
        stats.budget_granted = st.budget_granted;
    }
    stats.warm_bufs_reused = warm.reused.load(Ordering::Relaxed);
    stats.isolate_workers_reused =
        reg.counter("isolate.workers_reused").get().saturating_sub(isolate_reused_before);
    // The suite is over: the cross-kernel sandbox pool has served its
    // purpose (a lone `-target <kernel>` run drains at campaign end
    // instead — see `drain_idle_workers`).
    crate::isolate::drain_idle_workers();

    reg.gauge("suite.kernels").set(stats.kernels as i64);
    reg.gauge("suite.jobs").set(stats.jobs as i64);
    reg.counter("suite.steals").add(stats.steals);
    reg.gauge("suite.kernels_inflight_max").set(stats.kernels_inflight_max as i64);
    reg.counter("suite.budget_donated").add(stats.budget_donated as u64);
    reg.counter("suite.budget_granted").add(stats.budget_granted as u64);
    reg.counter("suite.warm_bufs_reused").add(stats.warm_bufs_reused);
    reg.counter("suite.isolate_workers_reused").add(stats.isolate_workers_reused);
    if telemetry_on {
        goat_metrics::emit(&SuiteEvent { kind: "suite", suite: stats.clone() });
        goat_metrics::flush();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FnProgram;
    use goat_runtime::{go, Chan};

    fn leak_kernel(name: &str) -> Arc<dyn Program> {
        Arc::new(FnProgram::new(name, || {
            let ch: Chan<u8> = Chan::new(0);
            go(move || {
                ch.recv();
            });
            goat_runtime::gosched();
        }))
    }

    fn clean_kernel(name: &str) -> Arc<dyn Program> {
        Arc::new(FnProgram::new(name, || {
            let ch: Chan<u8> = Chan::new(1);
            let tx = ch.clone();
            go(move || {
                tx.send(7);
            });
            ch.recv();
        }))
    }

    fn suite_lines(
        base: &GoatConfig,
        suite: &SuiteConfig,
        kernels: &[Arc<dyn Program>],
    ) -> (Vec<String>, SuiteStats) {
        let mut lines = Vec::new();
        let stats = run_suite(base, suite, kernels, &mut |idx, name, result| {
            lines.push(format!(
                "{idx} {name} det={:?} sat={:?} quarantined={:?} n={} cov={:.3} bug={}",
                result.first_detection,
                result.saturated,
                result.quarantined,
                result.records.len(),
                result.coverage_percent(),
                result.bug.as_ref().map(|b| b.to_string()).unwrap_or_default(),
            ));
        });
        (lines, stats)
    }

    fn mixed_kernels() -> Vec<Arc<dyn Program>> {
        vec![
            leak_kernel("suite-leak-a"),
            clean_kernel("suite-clean-b"),
            leak_kernel("suite-leak-c"),
            clean_kernel("suite-clean-d"),
            leak_kernel("suite-leak-e"),
        ]
    }

    #[test]
    fn jobs_do_not_change_suite_output() {
        let base = GoatConfig::default().with_iterations(8).with_delay_bound(1);
        let kernels = mixed_kernels();
        let (seq, _) = suite_lines(&base, &SuiteConfig::default().with_jobs(1), &kernels);
        let (par, stats) = suite_lines(&base, &SuiteConfig::default().with_jobs(4), &kernels);
        assert_eq!(seq, par, "jobs=4 suite output diverged from jobs=1");
        assert_eq!(stats.kernels, kernels.len());
        // The detecting kernels must have detected in both.
        assert!(seq.iter().filter(|l| l.contains("det=Some")).count() >= 3, "{seq:?}");
    }

    #[test]
    fn suite_matches_sequential_goat_test() {
        let base = GoatConfig::default().with_iterations(6).with_delay_bound(1);
        let kernels = mixed_kernels();
        let mut reference = Vec::new();
        for p in &kernels {
            let mut r = Goat::new(base.clone()).test(Arc::clone(p));
            r.recycle_bug_trace();
            reference.push(serde_json::to_string(&r.summary()).expect("summary json"));
        }
        let mut suite_json = Vec::new();
        run_suite(&base, &SuiteConfig::default().with_jobs(3), &kernels, &mut |_, _, result| {
            suite_json.push(serde_json::to_string(&result.summary()).expect("summary json"));
        });
        assert_eq!(reference, suite_json, "suite summaries diverged from Goat::test");
    }

    #[test]
    fn realloc_extends_still_exploring_kernels_deterministically() {
        // Early stoppers (stop_on_bug leaks) donate; the clean kernels
        // run their full budget and split the pool.
        let base = GoatConfig::default().with_iterations(10).with_delay_bound(1);
        let kernels = mixed_kernels();
        let suite1 = SuiteConfig::default().with_jobs(1).with_realloc(true);
        let suite4 = SuiteConfig::default().with_jobs(4).with_realloc(true);
        let (seq, s1) = suite_lines(&base, &suite1, &kernels);
        let (par, s4) = suite_lines(&base, &suite4, &kernels);
        assert_eq!(seq, par, "realloc suite output diverged across jobs");
        assert_eq!(s1.budget_donated, s4.budget_donated);
        assert_eq!(s1.budget_granted, s4.budget_granted);
        assert!(s1.budget_donated > 0, "leak kernels should stop early and donate");
        assert!(s1.budget_granted > 0, "clean kernels should draw from the pool");
        // A recipient's extension shows up as records beyond the base
        // budget on the clean kernels.
        let extended = seq.iter().filter(|l| l.contains("clean") && !l.contains(" n=10 ")).count();
        assert!(extended > 0, "no clean kernel ran an extension: {seq:?}");
    }

    #[test]
    fn realloc_grant_equals_standalone_bigger_budget() {
        // One donor, one recipient: the recipient's extended campaign
        // must be byte-identical to a standalone campaign whose budget
        // was base + grant from the start.
        let base = GoatConfig::default().with_iterations(9).with_delay_bound(1);
        let kernels: Vec<Arc<dyn Program>> =
            vec![leak_kernel("realloc-donor"), clean_kernel("realloc-recipient")];
        let mut grant = None;
        let mut extended_summary = None;
        run_suite(
            &base,
            &SuiteConfig::default().with_jobs(2).with_realloc(true),
            &kernels,
            &mut |idx, _, result| {
                if idx == 1 {
                    grant = Some(result.records.len() - 9);
                    extended_summary =
                        Some(serde_json::to_string(&result.summary()).expect("json"));
                }
            },
        );
        let grant = grant.expect("recipient emitted");
        assert!(grant > 0, "recipient should have been granted budget");
        let mut standalone =
            Goat::new(base.clone().with_iterations(9 + grant)).test(Arc::clone(&kernels[1]));
        standalone.recycle_bug_trace();
        assert_eq!(
            extended_summary.unwrap(),
            serde_json::to_string(&standalone.summary()).expect("json"),
            "extension diverged from a standalone campaign with the same total budget"
        );
    }

    #[test]
    fn warm_scratch_is_recycled_across_kernels() {
        let base = GoatConfig::default().with_iterations(4).with_delay_bound(1);
        let kernels = mixed_kernels();
        let (_, warm) = suite_lines(&base, &SuiteConfig::default().with_jobs(1), &kernels);
        assert!(
            warm.warm_bufs_reused >= 1,
            "sequential suite should chain scratch across kernels, got {}",
            warm.warm_bufs_reused
        );
        let (_, cold) =
            suite_lines(&base, &SuiteConfig::default().with_jobs(1).with_warm(false), &kernels);
        assert_eq!(cold.warm_bufs_reused, 0, "cold suite must not touch the warm pool");
    }

    #[test]
    fn emit_order_is_kernel_order_regardless_of_completion_order() {
        let base = GoatConfig::default().with_iterations(12).with_delay_bound(1);
        let kernels = mixed_kernels();
        let mut order = Vec::new();
        run_suite(&base, &SuiteConfig::default().with_jobs(4), &kernels, &mut |idx, _, _| {
            order.push(idx);
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn suite_resume_from_sidecars_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!("goat-suite-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let ckpt = dir.join("cp.json");
        let kernels = mixed_kernels();
        let base = GoatConfig::default().with_iterations(8).with_delay_bound(1);
        let (reference, _) = suite_lines(&base, &SuiteConfig::default().with_jobs(2), &kernels);
        // First pass with checkpointing: writes every kernel's sidecar
        // plus the suite manifest.
        let with_ckpt = base.clone().with_checkpoint(&ckpt).with_checkpoint_every(1);
        let (first, _) = suite_lines(&with_ckpt, &SuiteConfig::default().with_jobs(2), &kernels);
        assert_eq!(reference, first);
        assert!(suite_manifest_path(&ckpt).exists(), "suite manifest missing");
        // Second pass resumes everything as already-complete and must
        // replay the identical output without re-running.
        let (resumed, _) = suite_lines(&with_ckpt, &SuiteConfig::default().with_jobs(4), &kernels);
        assert_eq!(reference, resumed, "resumed suite output diverged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_pool_is_even_capped_and_ordered() {
        // 3 recipients, pool 11: 4/4/3 with the remainder to the
        // earliest indices.
        assert_eq!(split_pool(5, &[0, 2, 4], 11, 100), vec![4, 0, 4, 0, 3]);
        // Caps clamp each grant; excess is dropped.
        assert_eq!(split_pool(3, &[1, 2], 50, 10), vec![0, 10, 10]);
        // Degenerate cases.
        assert_eq!(split_pool(2, &[], 7, 10), vec![0, 0]);
        assert_eq!(split_pool(2, &[0], 0, 10), vec![0, 0]);
    }

    #[test]
    fn per_kernel_checkpoint_paths_are_distinct() {
        let base = Path::new("/tmp/cp.json");
        assert_eq!(per_kernel_checkpoint(base, "moby28462"), Path::new("/tmp/cp.moby28462.json"));
        let bare = Path::new("/tmp/cp");
        assert_eq!(per_kernel_checkpoint(bare, "etcd6873"), Path::new("/tmp/cp.etcd6873"));
        assert_ne!(
            per_kernel_checkpoint(base, "moby28462"),
            per_kernel_checkpoint(base, "etcd6873")
        );
        assert_eq!(suite_manifest_path(base), Path::new("/tmp/cp.suite.json"));
    }

    #[test]
    fn steal_accounting_counts_kernel_switches() {
        // One worker over several kernels must switch streams as each
        // completes: every switch after the first claim is a steal.
        let base = GoatConfig::default().with_iterations(4).with_delay_bound(1);
        let kernels = mixed_kernels();
        let (_, stats) = suite_lines(&base, &SuiteConfig::default().with_jobs(1), &kernels);
        assert!(
            stats.steals >= kernels.len() as u64 - 1,
            "expected at least one steal per kernel transition, got {}",
            stats.steals
        );
        assert!(stats.kernels_inflight_max >= 1);
    }

    #[test]
    fn quarantined_kernels_neither_donate_nor_receive() {
        // Under `keep_running`, a kernel whose every iteration panics
        // is quarantined after 2 consecutive crashes: it halts early
        // but must donate nothing (its skips are forfeited, not
        // banked), and the detected leak kernel must receive nothing —
        // so the realloc pool stays empty and no stream extends.
        let crash = Arc::new(FnProgram::new("suite-crash", || {
            panic!("deliberate suite test crash");
        })) as Arc<dyn Program>;
        let kernels: Vec<Arc<dyn Program>> =
            vec![leak_kernel("q-detected"), crash, clean_kernel("q-clean")];
        let base = GoatConfig::default()
            .with_iterations(8)
            .with_delay_bound(1)
            .keep_running()
            .with_quarantine_crashes(2);
        let (seq, s1) =
            suite_lines(&base, &SuiteConfig::default().with_jobs(1).with_realloc(true), &kernels);
        let (par, s4) =
            suite_lines(&base, &SuiteConfig::default().with_jobs(3).with_realloc(true), &kernels);
        assert_eq!(seq, par);
        assert!(seq[1].contains("quarantined=Some"), "{:?}", seq[1]);
        assert_eq!(s1.budget_donated, 0, "quarantine skips must not be donated");
        assert_eq!(s1.budget_donated, s4.budget_donated);
        assert_eq!(s1.budget_granted, 0, "empty pool must grant nothing");
        // Nobody extended: full-budget kernels report exactly 8 records.
        assert!(seq[0].contains(" n=8 "), "{:?}", seq[0]);
        assert!(seq[2].contains(" n=8 "), "{:?}", seq[2]);
    }
}
