//! The fused single-pass analysis data plane.
//!
//! The legacy per-iteration pipeline walked the ECT up to three separate
//! times — goroutine-tree construction, coverage extraction, sync-pair
//! extraction — each routing per-event state through `BTreeMap<Gid, …>`
//! side tables. A yield-injection campaign multiplies that cost by its
//! iteration budget (§III-D/E), so this module fuses the walks into one
//! `ect.iter()` sweep over dense, recycled scratch tables:
//!
//! * goroutine ids are runtime-assigned and dense, so all per-goroutine
//!   state lives in a flat slot vector indexed by `Gid` (one bounds
//!   check instead of a tree descent per event);
//! * requirement covering goes through pre-interned [`goat_model::ReqId`]s
//!   and bitset [`CoverageSet`]s (a bit-set per cover, an OR per merge);
//! * the goroutine tree is built incrementally by
//!   [`goat_trace::GTreeBuilder`] in the same sweep, and its root/leaf
//!   last-event state feeds the deadlock check without another walk;
//! * all scratch (slot tables, coverage sets, the tree builder's slab)
//!   is owned by a long-lived [`EctBuffers`] that the campaign runner
//!   threads through every iteration, so steady-state analysis performs
//!   no per-iteration allocations beyond result assembly.
//!
//! Observable semantics — covered requirement sets, per-goroutine
//! vectors, sync pairs, trees, and the order in which the universe
//! discovers CUs and select cases — are *identical* to the legacy
//! multi-pass pipeline (kept as [`crate::coverage::reference`] and
//! enforced by a differential property test), so campaign reports stay
//! byte-for-byte the same.
//!
//! **Idempotence contract (the analysis memo depends on it).** The
//! campaign runner memoizes this pass's products by schedule
//! fingerprint and *skips re-running it* when a later iteration
//! replays an identical trace (`GOAT_MEMO`, see `DESIGN.md` §13). That
//! is sound only because every mutation the pass makes to shared state
//! — [`RequirementUniverse`] growth via `discover_cu`, `op_req_id`,
//! and select-case discovery — is idempotent: re-analyzing the same
//! trace discovers nothing new and covers the same bits. Any future
//! side effect added to this sweep that is *not* idempotent (e.g. a
//! per-run sequence number in the universe, or an append-only log)
//! must either be keyed so replays coalesce or be hoisted to the
//! runner's merge step; `GOAT_MEMO=verify` (re-analyze every hit and
//! assert equality, exercised by `tests/determinism.rs`) is the
//! regression net for this contract.

use crate::coverage::{expected_kinds, flavor_of, PendingSelect, RunCoverage};
use goat_model::{
    CaseFlavor, CoverageSet, Cu, CuId, CuKind, ReqKey, ReqValue, RequirementUniverse,
    SyncPairCoverage,
};
use goat_trace::{BlockReason, Ect, EventKind, GTree, GTreeBuilder, Gid};
use std::collections::BTreeMap;

/// Everything one fused sweep over a trace produces.
pub struct TraceAnalysis {
    /// The goroutine tree (input of the deadlock check and the global
    /// tree merge).
    pub tree: GTree,
    /// Requirement coverage of this run.
    pub coverage: RunCoverage,
    /// Baseline synchronization-pair coverage, when requested.
    pub sync_pairs: Option<SyncPairCoverage>,
}

/// Per-goroutine analysis scratch, indexed densely by `Gid`.
#[derive(Default)]
struct GScratch {
    /// Slot appears in the touched list (for O(touched) reset).
    touched: bool,
    /// Goroutine is runtime-internal for *coverage* purposes (set only
    /// by this goroutine's own `GoCreate` flag, not inherited — the
    /// tree's inherited flag is separate state with separate semantics).
    cov_internal: bool,
    /// Pending block site: set by `GoBlock`, consumed by the goroutine's
    /// next op-completion event.
    last_block: Option<Cu>,
    /// CUs of `GoUnblock` events since the goroutine's last own event.
    pending_unblocks: Vec<Cu>,
    /// Stack of open selects (`SelectBegin` pushes, `SelectEnd` pops).
    select_stack: Vec<PendingSelect>,
    /// Sync-pair state: where this goroutine last blocked.
    sp_blocked_at: Option<Cu>,
    /// This goroutine's covered-requirement vector for the current run.
    per_cov: Option<CoverageSet>,
}

impl GScratch {
    /// Clear for the next run, keeping every allocation.
    fn reset(&mut self) {
        self.touched = false;
        self.cov_internal = false;
        self.last_block = None;
        self.pending_unblocks.clear();
        self.select_stack.clear();
        self.sp_blocked_at = None;
        debug_assert!(self.per_cov.is_none(), "per-run vectors are drained at finish");
    }
}

fn scratch<'a>(slots: &'a mut Vec<GScratch>, touched: &mut Vec<usize>, g: Gid) -> &'a mut GScratch {
    let i = g.0 as usize;
    if i >= slots.len() {
        slots.resize_with(i + 1, GScratch::default);
    }
    let s = &mut slots[i];
    if !s.touched {
        s.touched = true;
        touched.push(i);
    }
    s
}

fn per_set<'a>(
    slots: &'a mut Vec<GScratch>,
    touched: &mut Vec<usize>,
    free_sets: &mut Vec<CoverageSet>,
    g: Gid,
) -> &'a mut CoverageSet {
    scratch(slots, touched, g).per_cov.get_or_insert_with(|| free_sets.pop().unwrap_or_default())
}

/// Exact-site CU equality by identity: interned file paths are
/// canonical (one pointer per distinct content), so a pointer compare
/// replaces the string compare/hash without changing the answer.
#[inline]
fn same_exact_cu(a: &Cu, b: &Cu) -> bool {
    a.line == b.line && a.kind == b.kind && std::ptr::eq(a.file.as_str(), b.file.as_str())
}

/// Per-pass CU→id memo in front of `universe.discover_cu`: traces carry
/// few distinct CUs but mention them on almost every event, so a linear
/// identity scan beats re-hashing the composite key per event. New CUs
/// still reach `discover_cu` in first-appearance order, so universe
/// growth is untouched.
#[inline]
fn cu_id(cache: &mut Vec<(Cu, CuId)>, universe: &mut RequirementUniverse, cu: &Cu) -> CuId {
    for (c, id) in cache.iter() {
        if same_exact_cu(c, cu) {
            return *id;
        }
    }
    let id = universe.discover_cu(*cu);
    cache.push((*cu, id));
    id
}

/// Recyclable analysis scratch: one per campaign (or per merge thread),
/// reused across iterations so the per-iteration analysis pass performs
/// no allocations once the tables have grown to the workload's
/// high-water mark.
#[derive(Default)]
pub struct EctBuffers {
    tree: GTreeBuilder,
    slots: Vec<GScratch>,
    touched: Vec<usize>,
    /// Cleared coverage sets awaiting reuse (fed back by
    /// [`EctBuffers::reclaim`]).
    free_sets: Vec<CoverageSet>,
    /// Per-pass CU→id identity memo (valid only for the universe of the
    /// current `analyze` call; cleared at the start of each pass).
    cu_ids: Vec<(Cu, CuId)>,
}

impl EctBuffers {
    /// Fresh scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyze one trace in a single fused sweep: goroutine tree, run
    /// coverage (growing `universe` exactly like
    /// [`crate::coverage::extract_coverage`]), and — when
    /// `want_sync_pairs` — baseline sync-pair coverage.
    pub fn analyze(
        &mut self,
        ect: &Ect,
        universe: &mut RequirementUniverse,
        want_sync_pairs: bool,
    ) -> TraceAnalysis {
        let EctBuffers { tree, slots, touched, free_sets, cu_ids } = self;
        cu_ids.clear();
        let mut covered = free_sets.pop().unwrap_or_default();
        let mut pairs = if want_sync_pairs { Some(SyncPairCoverage::new()) } else { None };
        // GoAT's own runtime goroutine is never application-level: none
        // of its operations count as coverage (§III-E filter).
        scratch(slots, touched, Gid::RUNTIME).cov_internal = true;

        for (i, ev) in ect.iter().enumerate() {
            // -- goroutine tree (all events, internal included) --------
            tree.observe(i, ev);

            // -- sync pairs (all events) -------------------------------
            if let Some(p) = pairs.as_mut() {
                match &ev.kind {
                    EventKind::GoBlock { .. } => {
                        if let Some(cu) = &ev.cu {
                            scratch(slots, touched, ev.g).sp_blocked_at = Some(*cu);
                        }
                    }
                    EventKind::GoUnblock { g } => {
                        let s = scratch(slots, touched, *g);
                        if let (Some(waker_cu), Some(blocked_cu)) =
                            (&ev.cu, s.sp_blocked_at.as_ref())
                        {
                            p.observe(waker_cu, blocked_cu);
                        }
                        s.sp_blocked_at = None;
                    }
                    _ => {}
                }
            }

            // -- requirement coverage (application events only) --------
            let g = ev.g;
            if let EventKind::GoCreate { new_g, internal: true, .. } = &ev.kind {
                scratch(slots, touched, *new_g).cov_internal = true;
            }
            if scratch(slots, touched, g).cov_internal {
                continue;
            }
            match &ev.kind {
                EventKind::GoCreate { internal: false, .. } => {
                    if let Some(cu) = &ev.cu {
                        let id = cu_id(cu_ids, universe, cu);
                        let rid = universe.op_req_id(id, ReqValue::Nop);
                        covered.cover_id(rid);
                        per_set(slots, touched, free_sets, g).cover_id(rid);
                    }
                    scratch(slots, touched, g).pending_unblocks.clear();
                }
                EventKind::GoBlock { reason, holder_cu, holder } => {
                    // Req3 "blocking": credit the holder's acquisition site.
                    if let Some(hcu) = holder_cu {
                        let id = cu_id(cu_ids, universe, hcu);
                        let rid = universe.op_req_id(id, ReqValue::Blocking);
                        covered.cover_id(rid);
                        per_set(slots, touched, free_sets, holder.unwrap_or(g)).cover_id(rid);
                    }
                    if let Some(cu) = &ev.cu {
                        // Discover the blocked op's CU and cover its
                        // *blocked* requirement right away: a goroutine
                        // that leaks here never emits a completion event,
                        // yet its blocking is exactly what Req1/Req3 want
                        // observed.
                        let id = cu_id(cu_ids, universe, cu);
                        if goat_model::op_requirements(cu.kind).contains(&ReqValue::Blocked) {
                            let rid = universe.op_req_id(id, ReqValue::Blocked);
                            covered.cover_id(rid);
                            per_set(slots, touched, free_sets, g).cover_id(rid);
                        }
                        let s = scratch(slots, touched, g);
                        s.last_block = Some(*cu);
                        if *reason == BlockReason::Select {
                            if let Some(top) = s.select_stack.last_mut() {
                                if top.cu.same_site(cu) {
                                    top.blocked = true;
                                }
                            }
                        }
                    }
                    scratch(slots, touched, g).pending_unblocks.clear();
                }
                EventKind::GoUnblock { .. } => {
                    if let Some(cu) = &ev.cu {
                        let s = scratch(slots, touched, g);
                        s.pending_unblocks.push(*cu);
                        if cu.kind == CuKind::Select {
                            if let Some(top) = s.select_stack.last_mut() {
                                if top.cu.same_site(cu) {
                                    top.woke = true;
                                }
                            }
                        }
                    }
                }
                EventKind::SelectBegin { cases, has_default } => {
                    if let Some(cu) = &ev.cu {
                        let id = cu_id(cu_ids, universe, cu);
                        for (i, (fl, _)) in cases.iter().enumerate() {
                            universe.discover_select_case(id, i, flavor_of(*fl), *has_default);
                        }
                        if *has_default {
                            universe.discover_select_case(
                                id,
                                cases.len(),
                                CaseFlavor::Default,
                                true,
                            );
                        }
                        scratch(slots, touched, g).select_stack.push(PendingSelect {
                            cu: *cu,
                            cases: cases.len(),
                            has_default: *has_default,
                            blocked: false,
                            woke: false,
                        });
                    }
                    scratch(slots, touched, g).pending_unblocks.clear();
                }
                EventKind::SelectEnd { chosen, flavor, .. } => {
                    if let Some(cu) = &ev.cu {
                        let id = cu_id(cu_ids, universe, cu);
                        let s = scratch(slots, touched, g);
                        let entry = s.select_stack.pop();
                        let (blocked, woke, cases, has_default) = match &entry {
                            Some(e) if e.cu.same_site(cu) => {
                                (e.blocked, e.woke, e.cases, e.has_default)
                            }
                            _ => (false, false, chosen.wrapping_add(1), false),
                        };
                        let key = if *chosen == usize::MAX {
                            ReqKey::case(id, cases, CaseFlavor::Default, ReqValue::Nop)
                        } else {
                            let value = if blocked && !has_default {
                                ReqValue::Blocked
                            } else if woke {
                                ReqValue::Unblocking
                            } else {
                                ReqValue::Nop
                            };
                            ReqKey::case(id, *chosen, flavor_of(*flavor), value)
                        };
                        covered.cover(key);
                        per_set(slots, touched, free_sets, g).cover(key);
                    }
                    let s = scratch(slots, touched, g);
                    s.last_block = None;
                    s.pending_unblocks.clear();
                }
                kind if kind.is_op_completion() => {
                    if let Some(cu) = &ev.cu {
                        if expected_kinds(kind).contains(&cu.kind) {
                            let id = cu_id(cu_ids, universe, cu);
                            let s = scratch(slots, touched, g);
                            let blocked = s.last_block.map(|b| b.same_site(cu)).unwrap_or(false)
                                || matches!(kind, EventKind::CondWait { .. });
                            let woke = s.pending_unblocks.iter().any(|u| u.same_site(cu));
                            let reqs = goat_model::op_requirements(cu.kind);
                            if blocked && reqs.contains(&ReqValue::Blocked) {
                                let rid = universe.op_req_id(id, ReqValue::Blocked);
                                covered.cover_id(rid);
                                per_set(slots, touched, free_sets, g).cover_id(rid);
                            }
                            if woke && reqs.contains(&ReqValue::Unblocking) {
                                let rid = universe.op_req_id(id, ReqValue::Unblocking);
                                covered.cover_id(rid);
                                per_set(slots, touched, free_sets, g).cover_id(rid);
                            }
                            if !blocked && !woke && reqs.contains(&ReqValue::Nop) {
                                let rid = universe.op_req_id(id, ReqValue::Nop);
                                covered.cover_id(rid);
                                per_set(slots, touched, free_sets, g).cover_id(rid);
                            }
                        }
                    }
                    let s = scratch(slots, touched, g);
                    s.last_block = None;
                    s.pending_unblocks.clear();
                }
                _ => {
                    scratch(slots, touched, g).pending_unblocks.clear();
                }
            }
        }

        // -- finish: assemble results, reset scratch in O(touched) ----
        let tree = tree.finish();
        let mut per_g: BTreeMap<Gid, CoverageSet> = BTreeMap::new();
        for &i in touched.iter() {
            let s = &mut slots[i];
            if let Some(set) = s.per_cov.take() {
                per_g.insert(Gid(i as u64), set);
            }
            s.reset();
        }
        touched.clear();

        if goat_metrics::enabled() {
            let reg = goat_metrics::global();
            reg.histogram("coverage.trace_events").record(ect.len() as u64);
            reg.counter_with("coverage.requirements", goat_metrics::context().as_deref())
                .add(covered.len() as u64);
        }
        TraceAnalysis { tree, coverage: RunCoverage { covered, per_g }, sync_pairs: pairs }
    }

    /// Feed a run's coverage sets back for reuse by the next iteration
    /// (call once the sets have been merged into campaign accumulators).
    pub fn reclaim(&mut self, coverage: RunCoverage) {
        let RunCoverage { mut covered, per_g } = coverage;
        covered.clear();
        self.free_sets.push(covered);
        for (_, mut set) in per_g {
            set.clear();
            self.free_sets.push(set);
        }
    }
}
