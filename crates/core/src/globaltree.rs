//! The global goroutine tree: accumulating coverage across runs.
//!
//! GoAT maintains one goroutine tree per *program* (not per run) and
//! maps each run's goroutines onto it using the equivalence of §III-E.2:
//! two goroutines from different executions are equivalent iff their
//! parents are equivalent and they were created at the same source
//! location (`CU` of kind `go`). Loop-spawned goroutines from the same
//! `go` statement therefore collapse into a single global node, whose
//! coverage vector is the union over all its dynamic instances.

use crate::coverage::RunCoverage;
use goat_model::{CoverageSet, Istr};
use goat_trace::{GNode, GTree, Gid};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Key identifying a child slot under a parent: the creation site.
type SiteKey = (Istr, u32);

/// One node of the global goroutine tree.
#[derive(Debug, Clone, Default)]
pub struct GlobalNode {
    /// Last-seen name of goroutines mapped here.
    pub name: String,
    /// Children keyed by creation site.
    children: BTreeMap<SiteKey, usize>,
    /// Union of coverage vectors of every dynamic instance.
    pub covered: CoverageSet,
    /// How many dynamic goroutine instances mapped to this node.
    pub occurrences: u64,
}

/// The global goroutine tree of a testing campaign.
#[derive(Debug, Clone)]
pub struct GlobalGTree {
    nodes: Vec<GlobalNode>,
}

impl Default for GlobalGTree {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalGTree {
    /// A tree containing only the (empty) main node.
    pub fn new() -> Self {
        GlobalGTree { nodes: vec![GlobalNode { name: "main".to_string(), ..Default::default() }] }
    }

    /// Number of global nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the tree trivial (main only, never merged)?
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1 && self.nodes[0].occurrences == 0
    }

    /// Access a node by index (0 = main).
    pub fn node(&self, idx: usize) -> &GlobalNode {
        &self.nodes[idx]
    }

    /// Merge one run's goroutine tree and per-goroutine coverage.
    pub fn merge_run(&mut self, tree: &GTree, cov: &RunCoverage) {
        let Some(root) = tree.root() else { return };
        self.merge_node(0, root, tree, cov);
    }

    fn merge_node(&mut self, global_idx: usize, node: &GNode, tree: &GTree, cov: &RunCoverage) {
        self.nodes[global_idx].occurrences += 1;
        self.nodes[global_idx].name = node.name.clone();
        if let Some(c) = cov.per_g.get(&node.g) {
            self.nodes[global_idx].covered.merge(c);
        }
        let children: Vec<Gid> = node.children.clone();
        for cg in children {
            let Some(child) = tree.get(cg) else { continue };
            if child.internal {
                continue;
            }
            let key: SiteKey = child
                .create_cu
                .as_ref()
                .map(|cu| (cu.file, cu.line))
                .unwrap_or_else(|| (Istr::new(format!("<unknown:{}>", child.name)), 0));
            let child_idx = match self.nodes[global_idx].children.get(&key) {
                Some(&i) => i,
                None => {
                    let i = self.nodes.len();
                    self.nodes.push(GlobalNode::default());
                    self.nodes[global_idx].children.insert(key, i);
                    i
                }
            };
            self.merge_node(child_idx, child, tree, cov);
        }
    }

    /// Render the global tree with per-node instance counts and coverage
    /// sizes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(0, 0, &mut out);
        out
    }

    fn render_node(&self, idx: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[idx];
        let _ = writeln!(
            out,
            "{}{} — {} instance(s), {} requirement(s) covered",
            "  ".repeat(depth),
            if n.name.is_empty() { "?" } else { &n.name },
            n.occurrences,
            n.covered.len()
        );
        for &c in n.children.values() {
            self.render_node(c, depth + 1, out);
        }
    }
}

// Hand-written (de)serialization for campaign checkpoints: `children`
// is keyed by `(Istr, u32)` tuples, which the vendored serde's map
// impl cannot stringify — flatten each entry to a `(file, line, index)`
// triple instead.
impl serde::Serialize for GlobalNode {
    fn to_content(&self) -> serde::Content {
        let children: Vec<(Istr, u32, usize)> =
            self.children.iter().map(|(&(file, line), &idx)| (file, line, idx)).collect();
        serde::Content::Map(vec![
            ("name".to_string(), self.name.to_content()),
            ("children".to_string(), children.to_content()),
            ("covered".to_string(), self.covered.to_content()),
            ("occurrences".to_string(), self.occurrences.to_content()),
        ])
    }
}

impl serde::Deserialize for GlobalNode {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        let fields = c.as_map().ok_or_else(|| serde::DeError::custom("expected object"))?;
        let children: Vec<(Istr, u32, usize)> = serde::de_field(fields, "children")?;
        Ok(GlobalNode {
            name: serde::de_field(fields, "name")?,
            children: children.into_iter().map(|(file, line, idx)| ((file, line), idx)).collect(),
            covered: serde::de_field(fields, "covered")?,
            occurrences: serde::de_field(fields, "occurrences")?,
        })
    }
}

impl serde::Serialize for GlobalGTree {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![("nodes".to_string(), self.nodes.to_content())])
    }
}

impl serde::Deserialize for GlobalGTree {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        let fields = c.as_map().ok_or_else(|| serde::DeError::custom("expected object"))?;
        let nodes: Vec<GlobalNode> = serde::de_field(fields, "nodes")?;
        if nodes.is_empty() {
            return Err(serde::DeError::custom("global tree must have a root node"));
        }
        Ok(GlobalGTree { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::extract_coverage;
    use goat_model::RequirementUniverse;
    use goat_runtime::{go_named, gosched, Chan, Config, Runtime};

    fn run_once(seed: u64) -> (GTree, RunCoverage) {
        let r = Runtime::run(Config::new(seed).with_native_preempt_prob(0.0), || {
            let ch: Chan<u8> = Chan::new(0);
            for _ in 0..3 {
                let tx = ch.clone();
                go_named("worker", move || tx.send(1));
            }
            for _ in 0..3 {
                ch.recv();
            }
            gosched();
        });
        let ect = r.ect.unwrap();
        let mut u = RequirementUniverse::new();
        let cov = extract_coverage(&ect, &mut u);
        (GTree::from_ect(&ect), cov)
    }

    #[test]
    fn loop_spawned_goroutines_collapse() {
        let mut gt = GlobalGTree::new();
        let (tree, cov) = run_once(0);
        gt.merge_run(&tree, &cov);
        // main + one global node for the three loop-spawned workers
        assert_eq!(gt.len(), 2, "{}", gt.render());
        assert_eq!(gt.node(1).occurrences, 3);
    }

    #[test]
    fn merging_runs_accumulates_instances_and_coverage() {
        let mut gt = GlobalGTree::new();
        let (t1, c1) = run_once(0);
        gt.merge_run(&t1, &c1);
        let before = gt.node(1).covered.len();
        let (t2, c2) = run_once(1);
        gt.merge_run(&t2, &c2);
        assert_eq!(gt.len(), 2, "same sites map to same nodes");
        assert_eq!(gt.node(1).occurrences, 6);
        assert!(gt.node(1).covered.len() >= before, "coverage only grows");
        assert_eq!(gt.node(0).occurrences, 2, "main merged twice");
    }

    #[test]
    fn checkpoint_serde_roundtrips() {
        let mut gt = GlobalGTree::new();
        let (t, c) = run_once(0);
        gt.merge_run(&t, &c);
        let json = serde_json::to_string(&gt).expect("serializable");
        let back: GlobalGTree = serde_json::from_str(&json).expect("parses");
        assert_eq!(gt.render(), back.render());
        assert_eq!(serde_json::to_string(&back).expect("re-serializable"), json);
    }

    #[test]
    fn render_shows_counts() {
        let mut gt = GlobalGTree::new();
        assert!(gt.is_empty());
        let (t, c) = run_once(0);
        gt.merge_run(&t, &c);
        assert!(!gt.is_empty());
        let r = gt.render();
        assert!(r.contains("main"), "{r}");
        assert!(r.contains("3 instance(s)"), "{r}");
    }
}
