//! Human-readable reports and visualizations (paper §III-E and fig. 3):
//! the executed interleaving, the goroutine tree with blocked states,
//! and the Table III-style coverage table.

use crate::analysis::GoatVerdict;
use goat_model::{CoverageSet, Istr, ReqTarget, RequirementUniverse};
use goat_trace::{Ect, GTree};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render the detailed bug report GoAT produces when a deadlock is
/// detected: verdict, goroutine tree, leaked goroutines with their final
/// states, and the tail of the executed interleaving.
pub fn bug_report(program: &str, verdict: &GoatVerdict, ect: &Ect) -> String {
    let tree = GTree::from_ect(ect);
    let mut out = String::new();
    let _ = writeln!(out, "=== GoAT bug report: {program} ===");
    let _ = writeln!(out, "verdict: {verdict}");
    out.push_str(&crash_detail_block(verdict));
    let _ = writeln!(out);
    let _ = writeln!(out, "--- goroutine tree ---");
    out.push_str(&tree.render(ect));
    if let GoatVerdict::PartialDeadlock { leaked } = verdict {
        let _ = writeln!(out, "--- leaked goroutines ---");
        for g in leaked {
            if let Some(node) = tree.get(*g) {
                let _ = write!(out, "{} \"{}\"", node.g, node.name);
                if let Some(cu) = &node.create_cu {
                    let _ = write!(out, " created at {cu}");
                }
                if let Some(last) = &node.last_event {
                    let _ = write!(out, ", final event {last}");
                }
                if let Some(cu) = &node.last_cu {
                    let _ = write!(out, " @ {cu}");
                }
                let _ = writeln!(out);
            }
        }
    }
    let _ = writeln!(out, "--- executed interleaving (last {} events) ---", TAIL);
    let events = ect.events();
    let start = events.len().saturating_sub(TAIL);
    for ev in &events[start..] {
        let _ = writeln!(out, "{ev}");
    }
    out
}

const TAIL: usize = 40;

/// Render a crash verdict's forensics detail (panic site + backtrace, or
/// a dead worker's signal/stderr post-mortem) as an indented block;
/// empty for verdicts without detail, keeping historical reports
/// byte-identical.
fn crash_detail_block(verdict: &GoatVerdict) -> String {
    let GoatVerdict::Crash { detail: Some(detail), .. } = verdict else {
        return String::new();
    };
    let mut out = String::new();
    let _ = writeln!(out, "--- crash forensics ---");
    for line in detail.lines() {
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Render a Table III-style coverage table: one row per requirement,
/// grouped by CU, with its covered/uncovered status.
pub fn coverage_table(universe: &RequirementUniverse, covered: &CoverageSet) -> String {
    let mut by_cu: BTreeMap<(Istr, u32, String), Vec<(String, bool)>> = BTreeMap::new();
    for key in universe.iter() {
        let req = universe.resolve(*key);
        let label = match key.target {
            ReqTarget::Op => key.value.to_string(),
            ReqTarget::Case { idx, flavor } => format!("case{idx}({flavor})-{}", key.value),
        };
        by_cu
            .entry((req.cu.file, req.cu.line, req.cu.kind.to_string()))
            .or_default()
            .push((label, covered.contains(key)));
    }
    let mut out = String::new();
    let _ =
        writeln!(out, "{:<40} {:>5} {:<10} {:<28} covered", "file", "line", "kind", "requirement");
    let _ = writeln!(out, "{}", "-".repeat(95));
    let mut total = 0usize;
    let mut hit = 0usize;
    for ((file, line, kind), mut reqs) in by_cu {
        reqs.sort();
        let short = file.rsplit('/').next().unwrap_or(file.as_str());
        for (label, ok) in reqs {
            total += 1;
            if ok {
                hit += 1;
            }
            let _ = writeln!(
                out,
                "{:<40} {:>5} {:<10} {:<28} {}",
                short,
                line,
                kind,
                label,
                if ok { "✓" } else { "✗" }
            );
        }
    }
    let pct = if total == 0 { 100.0 } else { 100.0 * hit as f64 / total as f64 };
    let _ = writeln!(out, "{}", "-".repeat(95));
    let _ = writeln!(out, "coverage: {hit}/{total} requirements ({pct:.1}%)");
    out
}

/// One line per uncovered requirement with the paper's suggested action
/// ("extend testing or remove dead code; a send that never blocks may be
/// a happens-before guarantee — or a bug").
pub fn uncovered_report(universe: &RequirementUniverse, covered: &CoverageSet) -> String {
    let mut out = String::new();
    let mut any = false;
    for key in universe.uncovered(covered) {
        any = true;
        let _ = writeln!(out, "uncovered: {}", universe.resolve(*key));
    }
    if !any {
        out.push_str("all requirements covered\n");
    }
    out
}

/// Render the goroutine tree as Graphviz DOT (the paper publishes
/// figure-3-style visualizations; `dot -Tsvg` turns this into one).
/// Leaked goroutines are highlighted.
pub fn goroutine_tree_dot(ect: &Ect, verdict: &GoatVerdict) -> String {
    let tree = GTree::from_ect(ect);
    let leaked: std::collections::BTreeSet<_> = match verdict {
        GoatVerdict::PartialDeadlock { leaked } => leaked.iter().copied().collect(),
        _ => Default::default(),
    };
    let mut out = String::from(
        "digraph goroutines {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for node in tree.app_nodes() {
        let status = match &node.last_event {
            Some(k) if node.finished() => format!("{k}"),
            Some(k) => format!("{k}"),
            None => "never ran".to_string(),
        };
        let color = if leaked.contains(&node.g) {
            ", style=filled, fillcolor=\"#ffcccc\""
        } else if node.finished() || node.g == goat_trace::Gid::MAIN {
            ", style=filled, fillcolor=\"#ddffdd\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  g{} [label=\"{} {}\\n{}\"{}];",
            node.g.0,
            node.g,
            node.name.replace('"', "'"),
            status.replace('"', "'"),
            color
        );
        if let Some(parent) = node.parent {
            let label = node
                .create_cu
                .as_ref()
                .map(|cu| format!("{}:{}", cu.file.rsplit('/').next().unwrap_or(""), cu.line))
                .unwrap_or_default();
            let _ = writeln!(out, "  g{} -> g{} [label=\"{label}\"];", parent.0, node.g.0);
        }
    }
    out.push_str("}\n");
    out
}

/// Render the executed interleaving as per-goroutine swim lanes: one
/// column per application goroutine, one row per event — the textual
/// equivalent of the paper's listing-1 interleaving figure.
pub fn interleaving_lanes(ect: &Ect, max_rows: usize) -> String {
    let tree = GTree::from_ect(ect);
    let lanes: Vec<_> = tree.app_nodes().iter().map(|n| n.g).collect();
    let width = 26usize;
    let mut out = String::new();
    // header
    let _ = write!(out, "{:>6} ", "seq");
    for g in &lanes {
        let name = tree.get(*g).map(|n| n.name.clone()).unwrap_or_default();
        let _ = write!(out, "{:<width$}", format!("{g} {name}"), width = width);
    }
    out.push('\n');
    let _ = writeln!(out, "{}", "-".repeat(7 + width * lanes.len()));
    let events = ect.events();
    let start = events.len().saturating_sub(max_rows);
    for ev in &events[start..] {
        let Some(col) = lanes.iter().position(|g| *g == ev.g) else { continue };
        let _ = write!(out, "{:>6} ", ev.seq);
        for i in 0..lanes.len() {
            if i == col {
                let mut cell = ev.kind.to_string();
                cell.truncate(width - 1);
                let _ = write!(out, "{cell:<width$}", width = width);
            } else {
                let _ = write!(out, "{:<width$}", "·", width = width);
            }
        }
        out.push('\n');
    }
    out
}

/// Render the complete campaign report: detection outcome (with full bug
/// report when one was found), trace statistics of the decisive run,
/// coverage table, uncovered-requirement actions and the global
/// goroutine tree — everything the original tool writes into its
/// workstation directory after `goat -path=… -cov`.
pub fn campaign_report(program: &str, result: &crate::CampaignResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "==== GoAT campaign report: {program} ====");
    let _ = writeln!(
        out,
        "iterations: {}   detected: {}   final coverage: {:.1}%",
        result.records.len(),
        result
            .first_detection
            .map(|i| format!("yes (iteration {i})"))
            .unwrap_or_else(|| "no".to_string()),
        result.coverage_percent()
    );
    if let Some(reason) = &result.quarantined {
        let _ = writeln!(
            out,
            "QUARANTINED: {reason} — {} budgeted iteration(s) skipped",
            result.skipped
        );
    }
    if let Some(iter) = result.saturated {
        let _ = writeln!(
            out,
            "SATURATED: coverage stopped growing — campaign stopped early at iteration {iter}"
        );
    }
    if let Some(g) = &result.guided {
        let _ = writeln!(out, "--- guided exploration (ε={}, lag={}) ---", g.epsilon, g.lag);
        for (idx, a) in g.arms.iter().enumerate() {
            let _ = writeln!(
                out,
                "arm {idx}: {} yp={} D={}  pulls={}  new-coverage={}  bugs={}",
                a.strategy, a.yield_prob, a.delay_bound, a.pulls, a.new_coverage, a.bugs
            );
        }
    }
    let _ = writeln!(out);
    match (&result.bug, &result.bug_ect) {
        (Some(verdict), Some(ect)) => {
            out.push_str(&bug_report(program, verdict, ect));
            let _ = writeln!(out, "--- trace statistics of the buggy run ---");
            let _ = writeln!(out, "{}", goat_trace::TraceStats::of(ect));
        }
        // A worker-process crash leaves no trace to render — the
        // forensics block is the whole bug report.
        (Some(verdict), None) => {
            let _ = writeln!(out, "=== GoAT bug report: {program} ===");
            let _ = writeln!(out, "verdict: {verdict}");
            out.push_str(&crash_detail_block(verdict));
        }
        (None, _) => {}
    }
    let _ = writeln!(out, "--- coverage ---");
    out.push_str(&coverage_table(&result.universe, &result.covered));
    let _ = writeln!(out, "--- uncovered requirements (actions) ---");
    out.push_str(&uncovered_report(&result.universe, &result.covered));
    let _ = writeln!(out, "--- global goroutine tree ---");
    out.push_str(&result.global_tree.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_run;
    use crate::coverage::extract_coverage;
    use goat_runtime::{go_named, gosched, Chan, Config, Runtime};

    fn leaky_run() -> (GoatVerdict, Ect) {
        let r = Runtime::run(Config::new(0).with_native_preempt_prob(0.0), || {
            let ch: Chan<u8> = Chan::new(0);
            go_named("monitor", move || {
                ch.recv();
            });
            gosched();
        });
        let v = analyze_run(&r);
        (v, r.ect.unwrap())
    }

    #[test]
    fn bug_report_names_leaked_goroutine() {
        let (v, ect) = leaky_run();
        let rep = bug_report("demo", &v, &ect);
        assert!(rep.contains("PDL-1"), "{rep}");
        assert!(rep.contains("monitor"), "{rep}");
        assert!(rep.contains("goroutine tree"), "{rep}");
        assert!(rep.contains("interleaving"), "{rep}");
        assert!(rep.contains("BLOCKED on recv"), "{rep}");
    }

    #[test]
    fn coverage_table_lists_requirements() {
        let (_, ect) = leaky_run();
        let mut u = goat_model::RequirementUniverse::new();
        let cov = extract_coverage(&ect, &mut u);
        let table = coverage_table(&u, &cov.covered);
        assert!(table.contains("recv"), "{table}");
        assert!(table.contains("✓"), "{table}");
        assert!(table.contains("coverage:"), "{table}");
    }

    #[test]
    fn campaign_report_combines_all_sections() {
        use crate::{FnProgram, Goat, GoatConfig};
        use goat_runtime::{go_named, gosched, Chan};
        use std::sync::Arc;
        let program = Arc::new(FnProgram::new("combo", || {
            let ch: Chan<u8> = Chan::new(0);
            go_named("stuck", move || {
                ch.recv();
            });
            gosched();
        }));
        let goat = Goat::new(GoatConfig::default().with_iterations(5));
        let result = goat.test(program);
        let rep = campaign_report("combo", &result);
        for section in
            ["campaign report", "bug report", "trace statistics", "coverage", "goroutine tree"]
        {
            assert!(rep.contains(section), "missing section {section}: {rep}");
        }
    }

    #[test]
    fn dot_highlights_leaked_goroutines() {
        let (v, ect) = leaky_run();
        let dot = goroutine_tree_dot(&ect, &v);
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(dot.contains("#ffcccc"), "leaked node highlighted: {dot}");
        assert!(dot.contains("monitor"), "{dot}");
        assert!(dot.contains("->"), "parent edge present: {dot}");
    }

    #[test]
    fn lanes_show_one_column_per_goroutine() {
        let (_, ect) = leaky_run();
        let lanes = interleaving_lanes(&ect, 50);
        let header = lanes.lines().next().unwrap();
        assert!(header.contains("G1"), "{header}");
        assert!(header.contains("monitor"), "{header}");
        assert!(lanes.contains("GoBlock"), "{lanes}");
    }

    #[test]
    fn uncovered_report_suggests_actions() {
        let (_, ect) = leaky_run();
        let mut u = goat_model::RequirementUniverse::new();
        let cov = extract_coverage(&ect, &mut u);
        let rep = uncovered_report(&u, &cov.covered);
        // a blocked recv never covered unblocking/nop in one run
        assert!(rep.contains("uncovered"), "{rep}");
    }
}
