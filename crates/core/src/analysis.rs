//! Offline deadlock detection from the ECT (paper §III-E.1).
//!
//! An execution is *successful* iff
//!
//! 1. every goroutine spawned (transitively) from main has `GoEnd` as its
//!    final event, and
//! 2. the main goroutine's final event is the trace-stopping `GoSched`.
//!
//! Otherwise the program suffers a blocking bug: Procedure 1 walks the
//! goroutine tree in BFS order and classifies it as a global deadlock
//! (main itself never reached its final yield) or a partial deadlock
//! (one or more leaked goroutines).

use goat_detectors::Symptom;
use goat_runtime::{RunOutcome, RunResult};
use goat_trace::{EventKind, GTree, Gid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// GoAT's verdict on one execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoatVerdict {
    /// Successful execution: every application goroutine finished.
    Pass,
    /// One or more goroutines leaked (partial deadlock).
    PartialDeadlock {
        /// The leaked goroutines.
        leaked: Vec<Gid>,
    },
    /// The main goroutine never finished.
    GlobalDeadlock,
    /// The program crashed.
    Crash {
        /// The panic message (or, for a worker-process death under
        /// `GOAT_ISOLATE=proc`, the orchestrator's one-line summary).
        msg: String,
        /// Crash forensics: panic site and truncated backtrace for an
        /// in-process panic, or signal/exit/stderr-tail details for a
        /// dead worker process. `None` when nothing beyond the message
        /// was captured.
        detail: Option<String>,
    },
    /// The watchdog aborted a non-terminating run.
    Hang,
    /// The harness failed to host the run (pool checkout, thread
    /// spawn); nothing was observed about the program. Never a bug —
    /// the quarantine path is the sole response to infra faults.
    InfraFailure {
        /// What part of the harness failed.
        reason: String,
    },
}

impl GoatVerdict {
    /// Did GoAT flag a bug? Infra failures are the harness's problem,
    /// not evidence about the program, so they never count.
    pub fn is_bug(&self) -> bool {
        !matches!(self, GoatVerdict::Pass | GoatVerdict::InfraFailure { .. })
    }

    /// The Table IV symptom code for this verdict.
    pub fn symptom(&self) -> Symptom {
        match self {
            GoatVerdict::Pass => Symptom::None,
            GoatVerdict::PartialDeadlock { leaked } => {
                Symptom::PartialDeadlock { leaked: leaked.len() }
            }
            GoatVerdict::GlobalDeadlock => Symptom::GlobalDeadlock,
            GoatVerdict::Crash { .. } => Symptom::Crash,
            GoatVerdict::Hang => Symptom::Hang,
            GoatVerdict::InfraFailure { .. } => Symptom::None,
        }
    }
}

impl fmt::Display for GoatVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoatVerdict::Crash { msg, .. } => write!(f, "CRASH({msg})"),
            GoatVerdict::InfraFailure { reason } => write!(f, "INFRA({reason})"),
            other => write!(f, "{}", other.symptom()),
        }
    }
}

/// Procedure 1: BFS over the application goroutine tree.
///
/// Returns [`GoatVerdict::GlobalDeadlock`] when the root's final event is
/// not the trace-stopping yield, [`GoatVerdict::PartialDeadlock`] when
/// any descendant's final event is not `GoEnd`, [`GoatVerdict::Pass`]
/// otherwise.
pub fn deadlock_check(tree: &GTree) -> GoatVerdict {
    let Some(root) = tree.root() else {
        return GoatVerdict::GlobalDeadlock;
    };
    if !matches!(root.last_event, Some(EventKind::GoSched { trace_stop: true })) {
        return GoatVerdict::GlobalDeadlock;
    }
    let mut leaked = Vec::new();
    for node in tree.app_nodes() {
        if node.g == Gid::MAIN {
            continue;
        }
        if !matches!(node.last_event, Some(EventKind::GoEnd)) {
            leaked.push(node.g);
        }
    }
    if leaked.is_empty() {
        GoatVerdict::Pass
    } else {
        GoatVerdict::PartialDeadlock { leaked }
    }
}

/// Full per-run analysis: combine the run outcome with the offline
/// trace-based deadlock check.
///
/// The outcome dominates for crashes/hangs (the trace is truncated); for
/// completed and globally deadlocked runs the ECT analysis supplies the
/// verdict, exactly as GoAT derives everything from the trace.
pub fn analyze_run(result: &RunResult) -> GoatVerdict {
    analyze_run_with(result, None)
}

/// [`analyze_run`] with an optional pre-built goroutine tree.
///
/// The campaign loop's fused analysis pass already constructs the run's
/// `GTree`; passing it here avoids a second trace walk. `tree` must have
/// been built from `result.ect` — when `None`, the tree is built on
/// demand.
pub fn analyze_run_with(result: &RunResult, tree: Option<&GTree>) -> GoatVerdict {
    match &result.outcome {
        RunOutcome::Panicked { msg, .. } => {
            GoatVerdict::Crash { msg: msg.clone(), detail: result.panic_detail.clone() }
        }
        // A sandboxed worker process died hosting this run: the verdict
        // is a kernel crash (it feeds the crash streak and quarantine),
        // with the orchestrator's post-mortem as forensics.
        RunOutcome::Crashed { forensics } => GoatVerdict::Crash {
            msg: forensics.summary.clone(),
            detail: Some(forensics_detail(forensics)),
        },
        // Both watchdogs — step-bound and wall-clock — flag a suspected
        // hang, exactly like the paper's run timeout.
        RunOutcome::StepLimit | RunOutcome::TimedOut { .. } => GoatVerdict::Hang,
        // The harness failed to host the run; nothing was observed about
        // the program. The campaign layer retries these before analysis —
        // reaching this mapping means retries were exhausted. Still not
        // bug evidence: the non-bug verdict keeps a transient harness
        // fault from setting first_detection/stopping the campaign, and
        // leaves the infra_streak/quarantine path as the sole response.
        RunOutcome::InfraFailure { reason } => GoatVerdict::InfraFailure { reason: reason.clone() },
        RunOutcome::GlobalDeadlock { .. } | RunOutcome::Completed => match (tree, &result.ect) {
            (Some(tree), _) => deadlock_check(tree),
            (None, Some(ect)) => deadlock_check(&GTree::from_ect(ect)),
            // Tracing off: fall back to runtime ground truth.
            (None, None) => match &result.outcome {
                RunOutcome::GlobalDeadlock { .. } => GoatVerdict::GlobalDeadlock,
                _ if result.alive_at_end.is_empty() => GoatVerdict::Pass,
                _ => GoatVerdict::PartialDeadlock {
                    leaked: result.alive_at_end.iter().map(|a| a.g).collect(),
                },
            },
        },
    }
}

/// Render a dead worker's post-mortem as the crash verdict's multi-line
/// forensics detail (last acknowledged iteration + stderr tail).
fn forensics_detail(f: &goat_runtime::CrashForensics) -> String {
    let mut d = String::new();
    match f.last_ack_iter {
        Some(i) => d.push_str(&format!("last acknowledged iteration: {i}")),
        None => d.push_str("last acknowledged iteration: none"),
    }
    if !f.stderr_tail.is_empty() {
        d.push_str("\nstderr tail:");
        for line in f.stderr_tail.lines() {
            d.push_str("\n  ");
            d.push_str(line);
        }
    }
    d
}

/// Cross-check helper used by tests: the ECT-derived verdict must agree
/// with the runtime's ground truth about leaked goroutines.
///
/// # Errors
/// Returns a description of the first disagreement found.
pub fn crosscheck(result: &RunResult) -> Result<(), String> {
    let Some(ect) = &result.ect else { return Ok(()) };
    // Crashes and watchdog aborts truncate the trace mid-operation;
    // there is no leak ground truth to compare against.
    if matches!(
        result.outcome,
        RunOutcome::Panicked { .. }
            | RunOutcome::StepLimit
            | RunOutcome::TimedOut { .. }
            | RunOutcome::InfraFailure { .. }
            | RunOutcome::Crashed { .. }
    ) {
        return Ok(());
    }
    let verdict = deadlock_check(&GTree::from_ect(ect));
    match (&result.outcome, &verdict) {
        (RunOutcome::Completed, GoatVerdict::Pass) => {
            if result.alive_at_end.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "trace says Pass but runtime saw {} alive goroutines",
                    result.alive_at_end.len()
                ))
            }
        }
        (RunOutcome::Completed, GoatVerdict::PartialDeadlock { leaked }) => {
            let rt: std::collections::BTreeSet<Gid> =
                result.alive_at_end.iter().map(|a| a.g).collect();
            let tr: std::collections::BTreeSet<Gid> = leaked.iter().copied().collect();
            if rt == tr {
                Ok(())
            } else {
                Err(format!("leak sets disagree: runtime {rt:?} vs trace {tr:?}"))
            }
        }
        (RunOutcome::GlobalDeadlock { .. }, GoatVerdict::GlobalDeadlock) => Ok(()),
        (o, v) => Err(format!("outcome {o:?} vs trace verdict {v:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goat_runtime::{go, go_named, gosched, Chan, Config, Mutex, Runtime};
    use goat_trace::Ect;

    fn cfg(seed: u64) -> Config {
        Config::new(seed).with_native_preempt_prob(0.0)
    }

    #[test]
    fn clean_run_passes() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u8> = Chan::new(0);
            let tx = ch.clone();
            go(move || tx.send(1));
            ch.recv();
        });
        assert_eq!(analyze_run(&r), GoatVerdict::Pass);
        crosscheck(&r).unwrap();
    }

    #[test]
    fn leak_is_partial_deadlock() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u8> = Chan::new(0);
            go_named("leaker", move || {
                ch.recv();
            });
            gosched();
        });
        match analyze_run(&r) {
            GoatVerdict::PartialDeadlock { leaked } => assert_eq!(leaked.len(), 1),
            other => panic!("expected PDL, got {other:?}"),
        }
        crosscheck(&r).unwrap();
    }

    #[test]
    fn main_block_is_global_deadlock() {
        let r = Runtime::run(cfg(0), || {
            let mu = Mutex::new();
            mu.lock();
            mu.lock();
        });
        assert_eq!(analyze_run(&r), GoatVerdict::GlobalDeadlock);
        crosscheck(&r).unwrap();
    }

    #[test]
    fn crash_verdict_carries_message() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u8> = Chan::new(0);
            ch.close();
            ch.close();
        });
        match analyze_run(&r) {
            GoatVerdict::Crash { msg, detail } => {
                assert!(msg.contains("close"));
                // Satellite: the gopanic call site survives as forensics.
                let detail = detail.expect("go panic carries its site");
                assert!(detail.contains("go panic at "), "{detail}");
            }
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn crashed_worker_maps_to_crash_verdict_with_forensics() {
        let mut r = Runtime::run(cfg(0), || {});
        r.outcome = goat_runtime::RunOutcome::Crashed {
            forensics: goat_runtime::CrashForensics {
                signal: Some(6),
                exit_code: None,
                stderr_tail: "thread panicked\nabort".to_string(),
                last_ack_iter: Some(12),
                summary: "worker killed by signal 6 (SIGABRT)".to_string(),
            },
        };
        let v = analyze_run(&r);
        match &v {
            GoatVerdict::Crash { msg, detail } => {
                assert_eq!(msg, "worker killed by signal 6 (SIGABRT)");
                let detail = detail.as_deref().expect("forensics detail");
                assert!(detail.contains("last acknowledged iteration: 12"), "{detail}");
                assert!(detail.contains("stderr tail:"), "{detail}");
                assert!(detail.contains("  abort"), "{detail}");
            }
            other => panic!("expected crash, got {other:?}"),
        }
        assert!(v.is_bug(), "a dead worker is kernel evidence, not an infra fault");
        assert_eq!(v.symptom(), Symptom::Crash);
        crosscheck(&r).unwrap();
    }

    #[test]
    fn hang_verdict_for_step_limit() {
        let r = Runtime::run(cfg(0).with_max_steps(100), || loop {
            gosched();
        });
        assert_eq!(analyze_run(&r), GoatVerdict::Hang);
    }

    #[test]
    fn verdict_symptoms_match() {
        assert_eq!(GoatVerdict::Pass.symptom(), Symptom::None);
        assert!(!GoatVerdict::Pass.is_bug());
        assert!(GoatVerdict::Hang.is_bug());
        assert_eq!(
            GoatVerdict::PartialDeadlock { leaked: vec![Gid(2)] }.symptom(),
            Symptom::PartialDeadlock { leaked: 1 }
        );
    }

    #[test]
    fn infra_failure_is_never_bug_evidence() {
        // An exhausted-retries harness fault must not be forged into a
        // kernel crash: no detection, no symptom, distinct display.
        let mut r = Runtime::run(cfg(0), || {});
        r.outcome = goat_runtime::RunOutcome::InfraFailure { reason: "pool checkout".into() };
        let v = analyze_run(&r);
        assert_eq!(v, GoatVerdict::InfraFailure { reason: "pool checkout".into() });
        assert!(!v.is_bug(), "infra failure must not count as a detection");
        assert_eq!(v.symptom(), Symptom::None);
        assert_eq!(v.to_string(), "INFRA(pool checkout)");
        crosscheck(&r).unwrap();
    }

    #[test]
    fn analysis_without_trace_uses_ground_truth() {
        let r = Runtime::run(cfg(0).with_trace(false), || {
            let ch: Chan<u8> = Chan::new(0);
            go_named("leaker", move || {
                ch.recv();
            });
            gosched();
        });
        assert!(matches!(analyze_run(&r), GoatVerdict::PartialDeadlock { .. }));
    }

    #[test]
    fn deadlock_check_on_empty_trace() {
        let ect = Ect::new();
        let tree = GTree::from_ect(&ect);
        // Main never emitted its final yield.
        assert_eq!(deadlock_check(&tree), GoatVerdict::GlobalDeadlock);
    }
}
