//! The program-under-test abstraction.

use std::path::PathBuf;
use std::sync::Arc;

/// A program GoAT can test: a `main` body plus optional metadata.
///
/// Implementations must be re-runnable — GoAT executes `main` once per
/// testing iteration under different schedules.
pub trait Program: Send + Sync {
    /// The program's name (used in reports and tables).
    fn name(&self) -> &str;

    /// The program's main function, executed as the main goroutine.
    fn main(&self);

    /// Source files of the program, fed to the static CU scanner to
    /// build the model `M`. Empty means "discover CUs dynamically".
    fn sources(&self) -> Vec<PathBuf> {
        Vec::new()
    }
}

/// A [`Program`] built from a closure.
///
/// ```
/// use goat_core::FnProgram;
/// use goat_core::Program;
/// let p = FnProgram::new("demo", || {});
/// assert_eq!(p.name(), "demo");
/// ```
pub struct FnProgram {
    name: String,
    body: Arc<dyn Fn() + Send + Sync + 'static>,
    sources: Vec<PathBuf>,
}

impl FnProgram {
    /// Wrap a closure as a program.
    pub fn new(name: impl Into<String>, body: impl Fn() + Send + Sync + 'static) -> Self {
        FnProgram { name: name.into(), body: Arc::new(body), sources: Vec::new() }
    }

    /// Attach source files for the static scanner.
    pub fn with_sources(mut self, sources: Vec<PathBuf>) -> Self {
        self.sources = sources;
        self
    }
}

impl Program for FnProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn main(&self) {
        (self.body)()
    }

    fn sources(&self) -> Vec<PathBuf> {
        self.sources.clone()
    }
}

impl std::fmt::Debug for FnProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnProgram").field("name", &self.name).finish_non_exhaustive()
    }
}

/// Adapt a program into the plain closure detectors consume.
pub fn program_fn(p: &Arc<dyn Program>) -> goat_detectors::ProgramFn {
    let p = Arc::clone(p);
    Arc::new(move || p.main())
}
