//! Campaign checkpoint/resume: crash-safe persistence of merge state.
//!
//! A long campaign (thousands of iterations across 68 kernels) must
//! survive being killed — by the OS, a CI timeout, or an operator —
//! without redoing completed work. With `GOAT_CHECKPOINT=path` (or
//! [`crate::GoatConfig::with_checkpoint`]) the streaming runner
//! periodically persists everything the merge loop has accumulated:
//! the completed-iteration count, per-iteration records, merged
//! coverage, the requirement universe, the global goroutine tree, and
//! the first-bug evidence (ECT + schedule).
//!
//! Because per-iteration seeds are fixed up front and merging is the
//! campaign's only stateful step, resuming from a checkpoint and
//! re-running the remaining seeds produces a report **byte-identical**
//! to the uninterrupted campaign (proven in `tests/determinism.rs`).
//!
//! Writes are atomic (`path.tmp` + rename), so a kill *during* a
//! checkpoint write leaves the previous checkpoint intact. A
//! checkpoint embeds a [`fingerprint`] of the campaign parameters that
//! determine per-iteration behaviour; a stale checkpoint from a
//! different campaign is ignored rather than corrupting results. The
//! iteration budget is deliberately *excluded* from the fingerprint so
//! a resumed campaign may extend it.

use crate::analysis::GoatVerdict;
use crate::globaltree::GlobalGTree;
use crate::runner::{GoatConfig, IterationRecord};
use goat_model::{CoverageSet, RequirementUniverse};
use goat_runtime::SchedCounters;
use std::path::Path;

/// Environment variable naming the checkpoint sidecar file.
pub const CHECKPOINT_ENV: &str = "GOAT_CHECKPOINT";

/// Environment variable setting the checkpoint cadence (merged
/// iterations between writes; default 8).
pub const CHECKPOINT_EVERY_ENV: &str = "GOAT_CHECKPOINT_EVERY";

/// Format version; bump on any schema change so old sidecars are
/// ignored instead of misread.
///
/// v2: guided exploration (reward history, saturation streak) joined
/// the merge state and the fingerprint grew strategy/guided/saturation
/// components.
///
/// v3: crash verdicts grew a forensics `detail` field and the
/// fingerprint grew the process-isolation mode (`iso=`): a crashing
/// campaign's records differ between `GOAT_ISOLATE=off` and `proc`
/// (in-process panic vs worker death), so sidecars cannot be mixed
/// across modes.
pub const CHECKPOINT_VERSION: u32 = 3;

/// The campaign parameters that determine per-iteration behaviour,
/// folded into a string. Two campaigns with equal fingerprints run the
/// same program the same way for every shared iteration index — which
/// is exactly the condition under which resuming is sound. The
/// iteration budget is excluded on purpose (resume may extend it).
pub fn fingerprint(program_name: &str, cfg: &GoatConfig) -> String {
    format!(
        "v{CHECKPOINT_VERSION}:{program_name}:seed0={}:d={}:stop={}:cov={}:eps={:x}:steps={}:wd={}:strat={}:guided={}:sat={}:iso={}",
        cfg.seed0,
        cfg.delay_bound,
        cfg.stop_on_bug,
        cfg.coverage_threshold.map_or("none".to_string(), |t| format!("{:x}", t.to_bits())),
        cfg.native_preempt_prob.to_bits(),
        cfg.max_steps,
        // The wall-clock watchdog changes per-iteration outcomes
        // (TimedOut vs Completed), so records written under a different
        // GOAT_ITER_TIMEOUT_MS cannot be mixed into this campaign.
        cfg.iter_timeout_ms.map_or("off".to_string(), |ms| ms.to_string()),
        // Strategy, guided mode and the saturation window all change
        // per-iteration scheduling or the early-stop point, so sidecars
        // written under different exploration settings cannot be mixed.
        cfg.strategy,
        cfg.guided,
        cfg.saturation_window.map_or("off".to_string(), |w| w.to_string()),
        cfg.isolate,
    )
}

/// Everything the merge loop has accumulated after `completed`
/// iterations, in serializable form.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CampaignCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Campaign identity; must match on resume.
    pub fingerprint: String,
    /// Iterations merged so far (the resume point: iteration indices
    /// `0..completed` are done, `completed..` remain).
    pub completed: usize,
    /// Per-iteration records, in order.
    pub records: Vec<IterationRecord>,
    /// 1-based iteration of the first detection, if any.
    pub first_detection: Option<usize>,
    /// The first detected bug's verdict.
    pub bug: Option<GoatVerdict>,
    /// The buggy execution's trace (replay evidence).
    pub bug_ect: Option<goat_trace::Ect>,
    /// The buggy execution's recorded schedule.
    pub bug_schedule: Option<goat_runtime::ReplayLog>,
    /// The requirement universe accumulated so far.
    pub universe: RequirementUniverse,
    /// Requirements covered so far.
    pub covered: CoverageSet,
    /// The global goroutine tree so far.
    pub global_tree: GlobalGTree,
    /// Scheduler counters summed over merged iterations.
    pub sched_totals: SchedCounters,
    /// Perturbation yields summed over merged iterations.
    pub yields_total: u64,
    /// Consecutive infra-failed iterations at the checkpoint.
    pub infra_streak: usize,
    /// Consecutive crashed iterations at the checkpoint.
    pub crash_streak: usize,
    /// Quarantine reason, when the campaign was quarantined.
    pub quarantined: Option<String>,
    /// Consecutive zero-coverage-delta iterations at the checkpoint.
    pub zero_delta_streak: usize,
    /// 1-based iteration at which coverage saturation tripped, if any.
    pub saturated: Option<usize>,
    /// Guided-mode reward history (empty when guided mode is off);
    /// restoring it rebuilds the bandit's exact selection state.
    pub guided_rewards: Vec<crate::bandit::GuidedReward>,
}

impl CampaignCheckpoint {
    /// Atomically persist to `path` (`path.tmp` + rename): a kill
    /// mid-write leaves the previous checkpoint intact.
    ///
    /// # Errors
    /// Propagates serialization and filesystem errors; callers treat a
    /// failed checkpoint write as an infra fault (logged, campaign
    /// continues — losing checkpoint durability must not kill the run).
    pub fn store(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string(self).map_err(|e| format!("serialize: {e}"))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json.as_bytes())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
    }

    /// Load a checkpoint from `path` and validate it against the
    /// campaign `fingerprint`. `Ok(None)` when the file does not exist
    /// (a fresh campaign, not an error).
    ///
    /// # Errors
    /// A present-but-unusable sidecar (parse failure, version or
    /// fingerprint mismatch, inconsistent counts) is an error so the
    /// caller can decide to start over loudly rather than silently.
    pub fn load(path: &Path, fingerprint: &str) -> Result<Option<Self>, String> {
        let raw = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let mut cp: CampaignCheckpoint =
            serde_json::from_str(&raw).map_err(|e| format!("parse {}: {e}", path.display()))?;
        // The CU table's lookup index is not serialized; without it the
        // resumed universe would re-discover every site as new.
        cp.universe.reindex();
        if cp.version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} != supported {CHECKPOINT_VERSION}",
                cp.version
            ));
        }
        if cp.fingerprint != fingerprint {
            return Err(format!(
                "checkpoint belongs to a different campaign ({} vs {fingerprint})",
                cp.fingerprint
            ));
        }
        if cp.records.len() != cp.completed {
            return Err(format!(
                "checkpoint inconsistent: {} records for {} completed iterations",
                cp.records.len(),
                cp.completed
            ));
        }
        Ok(Some(cp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cfg: &GoatConfig) -> CampaignCheckpoint {
        CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: fingerprint("demo", cfg),
            completed: 1,
            records: vec![IterationRecord {
                iter: 1,
                seed: cfg.seed0,
                verdict: GoatVerdict::Pass,
                coverage_percent: 37.5,
                universe_size: 8,
                yields: 0,
            }],
            first_detection: None,
            bug: None,
            bug_ect: None,
            bug_schedule: None,
            universe: RequirementUniverse::new(),
            covered: CoverageSet::new(),
            global_tree: GlobalGTree::new(),
            sched_totals: SchedCounters::default(),
            yields_total: 0,
            infra_streak: 0,
            crash_streak: 0,
            quarantined: None,
            zero_delta_streak: 0,
            saturated: None,
            guided_rewards: Vec::new(),
        }
    }

    #[test]
    fn store_load_roundtrips() {
        let cfg = GoatConfig::default();
        let dir = std::env::temp_dir().join("goat-checkpoint-test-roundtrip");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("cp.json");
        let cp = sample(&cfg);
        cp.store(&path).expect("store");
        let back = CampaignCheckpoint::load(&path, &cp.fingerprint)
            .expect("load")
            .expect("checkpoint present");
        assert_eq!(back.completed, 1);
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].coverage_percent, 37.5, "f64 must roundtrip exactly");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_fresh_campaign() {
        let cfg = GoatConfig::default();
        let path = std::env::temp_dir().join("goat-checkpoint-test-does-not-exist.json");
        let got = CampaignCheckpoint::load(&path, &fingerprint("demo", &cfg)).expect("ok");
        assert!(got.is_none());
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let cfg = GoatConfig::default();
        let dir = std::env::temp_dir().join("goat-checkpoint-test-mismatch");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("cp.json");
        sample(&cfg).store(&path).expect("store");
        let other = fingerprint("demo", &cfg.clone().with_seed0(999));
        assert!(CampaignCheckpoint::load(&path, &other).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_ignores_iteration_budget() {
        let a = GoatConfig::default().with_iterations(10);
        let b = GoatConfig::default().with_iterations(500);
        assert_eq!(fingerprint("p", &a), fingerprint("p", &b));
        let c = GoatConfig::default().with_delay_bound(2);
        assert_ne!(fingerprint("p", &a), fingerprint("p", &c));
    }

    #[test]
    fn fingerprint_covers_the_watchdog() {
        // Records written under a different (or absent) wall-clock
        // watchdog have different TimedOut/Completed semantics; the
        // fingerprint must keep them from being mixed on resume.
        let off = GoatConfig::default().with_iter_timeout_ms(None);
        let tight = GoatConfig::default().with_iter_timeout_ms(Some(50));
        let loose = GoatConfig::default().with_iter_timeout_ms(Some(5000));
        assert_ne!(fingerprint("p", &off), fingerprint("p", &tight));
        assert_ne!(fingerprint("p", &tight), fingerprint("p", &loose));
    }
}
