//! Coverage measurement: mapping ECT events to covered requirements
//! (paper §III-E.2).
//!
//! A single linear pass over the trace correlates each concurrency event
//! with its CU (by call-stack source location) and derives which
//! requirement value it covered:
//!
//! * **blocked** — the goroutine's immediately preceding event (in its
//!   own sequence) was a `GoBlock` at the same CU;
//! * **unblocking** — the operation emitted `GoUnblock` events (tagged
//!   with the operation's CU) just before its completion event;
//! * **blocking** (Req3) — a `GoBlock` on a contended lock names the
//!   holder and the holder's acquisition CU;
//! * **NOP** — the operation completed without either.
//!
//! Select cases are matched through a per-goroutine stack of open
//! selects (`SelectBegin` pushes, `SelectEnd` pops), which also
//! materialises the per-case requirements in the universe the first time
//! each select executes.

use goat_model::{CaseFlavor, CoverageSet, Cu, CuKind, ReqKey, ReqValue, RequirementUniverse};
use goat_trace::{BlockReason, Ect, EventKind, Gid, SelCaseFlavor};
use std::collections::BTreeMap;

/// Coverage produced by one execution.
#[derive(Debug, Clone, Default)]
pub struct RunCoverage {
    /// All requirements covered in this run.
    pub covered: CoverageSet,
    /// Requirements covered per goroutine (the paper's per-node coverage
    /// vectors, before accumulation into the global goroutine tree).
    pub per_g: BTreeMap<Gid, CoverageSet>,
}

pub(crate) struct PendingSelect {
    pub(crate) cu: Cu,
    pub(crate) cases: usize,
    pub(crate) has_default: bool,
    pub(crate) blocked: bool,
    pub(crate) woke: bool,
}

pub(crate) fn flavor_of(f: SelCaseFlavor) -> CaseFlavor {
    match f {
        SelCaseFlavor::Send => CaseFlavor::Send,
        SelCaseFlavor::Recv => CaseFlavor::Recv,
        SelCaseFlavor::Default => CaseFlavor::Default,
    }
}

/// Which CU kinds an op-completion event is allowed to bind to. Events
/// whose CU kind does not match are internal sub-operations (e.g. the
/// mutex re-acquisition inside `Cond::wait`) and are skipped.
pub(crate) fn expected_kinds(ev: &EventKind) -> &'static [CuKind] {
    match ev {
        EventKind::ChSend { .. } => &[CuKind::Send],
        EventKind::ChRecv { .. } => &[CuKind::Recv, CuKind::Range],
        EventKind::ChClose { .. } => &[CuKind::Close],
        EventKind::MuLock { .. } | EventKind::RwRLock { .. } => &[CuKind::Lock],
        EventKind::MuUnlock { .. } | EventKind::RwRUnlock { .. } => &[CuKind::Unlock],
        EventKind::WgAdd { .. } => &[CuKind::Add],
        EventKind::WgDone { .. } => &[CuKind::Done],
        EventKind::WgWait { .. } | EventKind::CondWait { .. } => &[CuKind::Wait],
        EventKind::CondSignal { .. } => &[CuKind::Signal],
        EventKind::CondBroadcast { .. } => &[CuKind::Broadcast],
        _ => &[],
    }
}

/// Extract the coverage of one trace, growing `universe` with newly
/// discovered CUs and select cases.
///
/// This is a convenience wrapper over the fused data plane
/// ([`crate::plane::EctBuffers`]) that allocates fresh scratch per call;
/// the campaign runner holds a long-lived `EctBuffers` instead and
/// recycles the scratch across iterations.
pub fn extract_coverage(ect: &Ect, universe: &mut RequirementUniverse) -> RunCoverage {
    crate::plane::EctBuffers::new().analyze(ect, universe, false).coverage
}

/// The retained legacy multi-pass extractor: per-goroutine state in
/// `BTreeMap`s, covered requirements in `BTreeSet<ReqKey>`.
///
/// This is *not* used by the campaign loop — it exists as the reference
/// semantics the fused plane is differentially tested against
/// (`tests/differential.rs`) and as the baseline the `analysis_plane`
/// bench measures speedups over. Its event-by-event logic must stay
/// byte-for-byte what `extract_coverage` shipped before the dense plane
/// landed; do not "fix" it to match the plane — fix the plane to match
/// it.
pub mod reference {
    use super::*;
    use std::collections::BTreeSet;

    /// Coverage produced by one execution, in ordered-set form.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct RefRunCoverage {
        /// All requirements covered in this run.
        pub covered: BTreeSet<ReqKey>,
        /// Requirements covered per goroutine.
        pub per_g: BTreeMap<Gid, BTreeSet<ReqKey>>,
    }

    impl RefRunCoverage {
        fn cover(&mut self, g: Gid, key: ReqKey) {
            self.covered.insert(key);
            self.per_g.entry(g).or_default().insert(key);
        }
    }

    /// The pre-dense-plane `extract_coverage`, verbatim.
    pub fn extract_coverage(ect: &Ect, universe: &mut RequirementUniverse) -> RefRunCoverage {
        let mut cov = RefRunCoverage::default();
        // The goroutine's pending block site: set by GoBlock, consumed by
        // the next op-completion event of the same goroutine.
        let mut last_block: BTreeMap<Gid, Cu> = BTreeMap::new();
        // CUs of GoUnblock events emitted since the goroutine's last event.
        let mut pending_unblocks: BTreeMap<Gid, Vec<Cu>> = BTreeMap::new();
        let mut select_stack: BTreeMap<Gid, Vec<PendingSelect>> = BTreeMap::new();
        // Runtime-internal goroutines (GoAT's own watcher/stopper) are not
        // part of the application: none of their operations count as
        // coverage, mirroring the application-level filter of §III-E.
        let mut internal: BTreeSet<Gid> = std::iter::once(Gid::RUNTIME).collect();

        for ev in ect.iter() {
            let g = ev.g;
            if let EventKind::GoCreate { new_g, internal: true, .. } = &ev.kind {
                internal.insert(*new_g);
            }
            if internal.contains(&g) {
                continue;
            }
            match &ev.kind {
                EventKind::GoCreate { internal: false, .. } => {
                    if let Some(cu) = &ev.cu {
                        let id = universe.discover_cu(*cu);
                        cov.cover(g, ReqKey::op(id, ReqValue::Nop));
                    }
                    pending_unblocks.remove(&g);
                }
                EventKind::GoBlock { reason, holder_cu, holder } => {
                    // Req3 "blocking": credit the holder's acquisition site.
                    if let Some(hcu) = holder_cu {
                        let id = universe.discover_cu(*hcu);
                        cov.cover(holder.unwrap_or(g), ReqKey::op(id, ReqValue::Blocking));
                    }
                    if let Some(cu) = &ev.cu {
                        last_block.insert(g, *cu);
                        let id = universe.discover_cu(*cu);
                        if goat_model::op_requirements(cu.kind).contains(&ReqValue::Blocked) {
                            cov.cover(g, ReqKey::op(id, ReqValue::Blocked));
                        }
                        if *reason == BlockReason::Select {
                            if let Some(stack) = select_stack.get_mut(&g) {
                                if let Some(top) = stack.last_mut() {
                                    if top.cu.same_site(cu) {
                                        top.blocked = true;
                                    }
                                }
                            }
                        }
                    }
                    pending_unblocks.remove(&g);
                }
                EventKind::GoUnblock { .. } => {
                    if let Some(cu) = &ev.cu {
                        pending_unblocks.entry(g).or_default().push(*cu);
                        if cu.kind == CuKind::Select {
                            if let Some(stack) = select_stack.get_mut(&g) {
                                if let Some(top) = stack.last_mut() {
                                    if top.cu.same_site(cu) {
                                        top.woke = true;
                                    }
                                }
                            }
                        }
                    }
                }
                EventKind::SelectBegin { cases, has_default } => {
                    if let Some(cu) = &ev.cu {
                        let id = universe.discover_cu(*cu);
                        for (i, (fl, _)) in cases.iter().enumerate() {
                            universe.discover_select_case(id, i, flavor_of(*fl), *has_default);
                        }
                        if *has_default {
                            universe.discover_select_case(
                                id,
                                cases.len(),
                                CaseFlavor::Default,
                                true,
                            );
                        }
                        select_stack.entry(g).or_default().push(PendingSelect {
                            cu: *cu,
                            cases: cases.len(),
                            has_default: *has_default,
                            blocked: false,
                            woke: false,
                        });
                    }
                    pending_unblocks.remove(&g);
                }
                EventKind::SelectEnd { chosen, flavor, .. } => {
                    if let Some(cu) = &ev.cu {
                        let id = universe.discover_cu(*cu);
                        let entry = select_stack.get_mut(&g).and_then(|st| st.pop());
                        let (blocked, woke, cases, has_default) = match &entry {
                            Some(e) if e.cu.same_site(cu) => {
                                (e.blocked, e.woke, e.cases, e.has_default)
                            }
                            _ => (false, false, chosen.wrapping_add(1), false),
                        };
                        if *chosen == usize::MAX {
                            cov.cover(
                                g,
                                ReqKey::case(id, cases, CaseFlavor::Default, ReqValue::Nop),
                            );
                        } else {
                            let fl = flavor_of(*flavor);
                            let value = if blocked && !has_default {
                                ReqValue::Blocked
                            } else if woke {
                                ReqValue::Unblocking
                            } else {
                                ReqValue::Nop
                            };
                            cov.cover(g, ReqKey::case(id, *chosen, fl, value));
                        }
                    }
                    last_block.remove(&g);
                    pending_unblocks.remove(&g);
                }
                kind if kind.is_op_completion() => {
                    let allowed = expected_kinds(kind);
                    if let Some(cu) = &ev.cu {
                        if allowed.contains(&cu.kind) {
                            let id = universe.discover_cu(*cu);
                            let blocked =
                                last_block.get(&g).map(|b| b.same_site(cu)).unwrap_or(false)
                                    || matches!(kind, EventKind::CondWait { .. });
                            let woke = pending_unblocks
                                .get(&g)
                                .map(|v| v.iter().any(|u| u.same_site(cu)))
                                .unwrap_or(false);
                            let reqs = goat_model::coverage::op_requirements(cu.kind);
                            if blocked && reqs.contains(&ReqValue::Blocked) {
                                cov.cover(g, ReqKey::op(id, ReqValue::Blocked));
                            }
                            if woke && reqs.contains(&ReqValue::Unblocking) {
                                cov.cover(g, ReqKey::op(id, ReqValue::Unblocking));
                            }
                            if !blocked && !woke && reqs.contains(&ReqValue::Nop) {
                                cov.cover(g, ReqKey::op(id, ReqValue::Nop));
                            }
                        }
                    }
                    last_block.remove(&g);
                    pending_unblocks.remove(&g);
                }
                _ => {
                    pending_unblocks.remove(&g);
                }
            }
        }
        cov
    }
}

/// Extract baseline **synchronization-pair** coverage (§II-D's earlier
/// metric family, for comparison with Req1–Req5): every `GoUnblock`
/// whose target was blocked at a known CU contributes the ordered pair
/// *(waker's op site, sleeper's block site)*.
pub fn extract_sync_pairs(ect: &Ect) -> goat_model::SyncPairCoverage {
    let mut pairs = goat_model::SyncPairCoverage::new();
    let mut blocked_at: BTreeMap<Gid, Cu> = BTreeMap::new();
    for ev in ect.iter() {
        match &ev.kind {
            EventKind::GoBlock { .. } => {
                if let Some(cu) = &ev.cu {
                    blocked_at.insert(ev.g, *cu);
                }
            }
            EventKind::GoUnblock { g } => {
                if let (Some(waker_cu), Some(blocked_cu)) = (&ev.cu, blocked_at.get(g)) {
                    pairs.observe(waker_cu, blocked_cu);
                }
                blocked_at.remove(g);
            }
            _ => {}
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use goat_model::ReqTarget;
    use goat_runtime::{go, go_named, gosched, Chan, Config, Mutex, Runtime, Select, WaitGroup};

    fn cfg(seed: u64) -> Config {
        Config::new(seed).with_native_preempt_prob(0.0)
    }

    fn coverage_of(f: impl Fn() + Send + Sync + 'static) -> (RunCoverage, RequirementUniverse) {
        let r = Runtime::run(cfg(0), f);
        let ect = r.ect.expect("traced");
        let mut universe = RequirementUniverse::new();
        let cov = extract_coverage(&ect, &mut universe);
        (cov, universe)
    }

    fn has(
        universe: &RequirementUniverse,
        cov: &RunCoverage,
        kind: CuKind,
        value: ReqValue,
    ) -> bool {
        cov.covered.iter().any(|k| {
            k.value == value && k.target == ReqTarget::Op && universe.table().get(k.cu).kind == kind
        })
    }

    #[test]
    fn blocked_send_covers_blocked() {
        let (cov, u) = coverage_of(|| {
            let ch: Chan<u8> = Chan::new(0);
            let tx = ch.clone();
            go(move || tx.send(1)); // sender blocks first
            gosched();
            ch.recv();
        });
        assert!(has(&u, &cov, CuKind::Send, ReqValue::Blocked), "{cov:?}");
        // the receiver woke the sender: recv covers unblocking
        assert!(has(&u, &cov, CuKind::Recv, ReqValue::Unblocking));
    }

    #[test]
    fn unblocking_send_covers_unblocking() {
        let (cov, u) = coverage_of(|| {
            let ch: Chan<u8> = Chan::new(0);
            let rx = ch.clone();
            go(move || {
                rx.recv(); // receiver blocks first
            });
            gosched();
            ch.send(1); // wakes the receiver
        });
        assert!(has(&u, &cov, CuKind::Send, ReqValue::Unblocking), "{cov:?}");
        assert!(has(&u, &cov, CuKind::Recv, ReqValue::Blocked));
    }

    #[test]
    fn buffered_send_covers_nop() {
        let (cov, u) = coverage_of(|| {
            let ch: Chan<u8> = Chan::new(2);
            ch.send(1);
            ch.recv();
        });
        assert!(has(&u, &cov, CuKind::Send, ReqValue::Nop));
        assert!(has(&u, &cov, CuKind::Recv, ReqValue::Nop));
    }

    #[test]
    fn lock_contention_covers_blocked_and_blocking() {
        let (cov, u) = coverage_of(|| {
            let mu = Mutex::new();
            let m2 = mu.clone();
            mu.lock();
            go(move || {
                m2.lock(); // blocks on main's lock
                m2.unlock();
            });
            gosched();
            mu.unlock();
            gosched();
        });
        assert!(has(&u, &cov, CuKind::Lock, ReqValue::Blocked), "{cov:?}");
        assert!(has(&u, &cov, CuKind::Lock, ReqValue::Blocking), "{cov:?}");
        assert!(has(&u, &cov, CuKind::Unlock, ReqValue::Unblocking));
    }

    #[test]
    fn uncontended_unlock_covers_nop() {
        let (cov, u) = coverage_of(|| {
            let mu = Mutex::new();
            mu.lock();
            mu.unlock();
        });
        assert!(has(&u, &cov, CuKind::Unlock, ReqValue::Nop));
        assert!(!has(&u, &cov, CuKind::Lock, ReqValue::Blocked));
    }

    #[test]
    fn go_statement_covers_req5() {
        let (cov, u) = coverage_of(|| {
            go(|| {});
            gosched();
        });
        assert!(has(&u, &cov, CuKind::Go, ReqValue::Nop));
    }

    #[test]
    fn select_cases_discovered_and_covered() {
        let (cov, u) = coverage_of(|| {
            let a: Chan<u8> = Chan::new(1);
            let b: Chan<u8> = Chan::new(1);
            a.send(1);
            let _ = Select::new().recv(&a, |v| v).recv(&b, |v| v).run();
        });
        // two recv cases discovered, each with the blocking-select set
        let case_reqs: Vec<&ReqKey> =
            u.iter().filter(|k| matches!(k.target, ReqTarget::Case { .. })).collect();
        assert_eq!(case_reqs.len(), 6, "{case_reqs:?}");
        // the fired case covered a NOP (data was ready; nobody woken)
        let covered_cases: Vec<ReqKey> =
            cov.covered.iter().filter(|k| matches!(k.target, ReqTarget::Case { .. })).collect();
        assert_eq!(covered_cases.len(), 1);
        assert_eq!(covered_cases[0].value, ReqValue::Nop);
    }

    #[test]
    fn blocked_select_covers_blocked_case() {
        let (cov, _u) = coverage_of(|| {
            let a: Chan<u8> = Chan::new(0);
            let tx = a.clone();
            go(move || tx.send(1));
            let _ = Select::new().recv(&a, |v| v).run();
        });
        let vals: Vec<ReqValue> = cov
            .covered
            .iter()
            .filter(|k| matches!(k.target, ReqTarget::Case { .. }))
            .map(|k| k.value)
            .collect();
        assert_eq!(vals, vec![ReqValue::Blocked], "{cov:?}");
    }

    #[test]
    fn default_select_covers_default_case() {
        let (cov, u) = coverage_of(|| {
            let a: Chan<u8> = Chan::new(0);
            let _ = Select::new().recv(&a, |_| 0).default(|| 1).run();
        });
        let default_cov: Vec<ReqKey> = cov
            .covered
            .iter()
            .filter(|k| matches!(k.target, ReqTarget::Case { flavor: CaseFlavor::Default, .. }))
            .collect();
        assert_eq!(default_cov.len(), 1);
        // non-blocking select cases got the Req4 set (2 reqs) + default (1)
        let total_case_reqs =
            u.iter().filter(|k| matches!(k.target, ReqTarget::Case { .. })).count();
        assert_eq!(total_case_reqs, 3);
    }

    #[test]
    fn waitgroup_coverage() {
        let (cov, u) = coverage_of(|| {
            let wg = WaitGroup::new();
            wg.add(1);
            let w2 = wg.clone();
            go(move || w2.done());
            wg.wait(); // blocks until done
        });
        assert!(has(&u, &cov, CuKind::Add, ReqValue::Nop));
        assert!(has(&u, &cov, CuKind::Wait, ReqValue::Blocked), "{cov:?}");
        assert!(has(&u, &cov, CuKind::Done, ReqValue::Unblocking), "{cov:?}");
    }

    #[test]
    fn close_wakes_receiver_covers_unblocking() {
        let (cov, u) = coverage_of(|| {
            let ch: Chan<u8> = Chan::new(0);
            let rx = ch.clone();
            go_named("rx", move || {
                rx.recv();
            });
            gosched();
            ch.close();
            gosched();
        });
        assert!(has(&u, &cov, CuKind::Close, ReqValue::Unblocking), "{cov:?}");
    }

    #[test]
    fn per_goroutine_vectors_partition_coverage() {
        let (cov, _) = coverage_of(|| {
            let ch: Chan<u8> = Chan::new(0);
            let tx = ch.clone();
            go(move || tx.send(1));
            ch.recv();
        });
        let union: usize = cov.per_g.values().map(|c| c.len()).sum();
        assert!(union >= cov.covered.len());
        assert!(cov.per_g.len() >= 2, "coverage attributed to both goroutines");
    }

    #[test]
    fn sync_pairs_capture_wakeup_edges() {
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u8> = Chan::new(0);
            let rx = ch.clone();
            go(move || {
                rx.recv(); // blocks at this recv site
            });
            gosched();
            ch.send(1); // wakes it from this send site
        });
        let pairs = extract_sync_pairs(r.ect.as_ref().unwrap());
        assert!(!pairs.is_empty(), "{pairs}");
        let rendered = pairs.render();
        assert!(rendered.contains("[send]"), "{rendered}");
        assert!(rendered.contains("[recv]"), "{rendered}");
    }

    #[test]
    fn sync_pairs_miss_what_req_metric_sees() {
        // A run where nothing ever blocks: the sync-pair metric observes
        // NOTHING, while GoAT's requirements still record NOP coverage —
        // the §II-D argument, measured.
        let r = Runtime::run(cfg(0), || {
            let ch: Chan<u8> = Chan::new(4);
            ch.send(1);
            ch.recv();
            let _ = Select::new().recv(&ch, |v| v).default(|| None).run();
        });
        let ect = r.ect.as_ref().unwrap();
        let pairs = extract_sync_pairs(ect);
        assert_eq!(pairs.len(), 0, "no wakeups happened: {pairs}");
        let mut u = RequirementUniverse::new();
        let cov = extract_coverage(ect, &mut u);
        assert!(cov.covered.len() >= 3, "GoAT's metric still made progress");
    }

    #[test]
    fn coverage_is_deterministic() {
        let run = || {
            let r = Runtime::run(cfg(7), || {
                let ch: Chan<u8> = Chan::new(1);
                let tx = ch.clone();
                go(move || tx.send(1));
                ch.recv();
            });
            let mut u = RequirementUniverse::new();
            let c = extract_coverage(&r.ect.unwrap(), &mut u);
            (c.covered.len(), u.len())
        };
        assert_eq!(run(), run());
    }
}
