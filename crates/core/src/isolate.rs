//! Out-of-process run isolation (`GOAT_ISOLATE=proc`): worker sandbox,
//! crash forensics, and resource jails.
//!
//! In the default mode every iteration executes inside the campaign
//! process; a kernel that segfaults, aborts, or chews through all
//! memory takes the whole campaign (and its merge state) down with it.
//! With `GOAT_ISOLATE=proc` the runner instead drives a pool of
//! persistent **worker subprocesses** — one `goat --worker` child per
//! parallel lane — over a length-prefixed JSON frame protocol on
//! stdin/stdout:
//!
//! ```text
//!   orchestrator                       worker
//!        | ---- spawn `goat --worker` --> |   (rlimit jail applied)
//!        | <--------- Ready ------------- |   handshake
//!        | ---- Run{iter, program, cfg} > |
//!        | <--------- Ack{iter} --------- |   (IPC latency sample)
//!        | <-------- Heartbeat{iter} ---- |   every GOAT_WORKER_HEARTBEAT_MS
//!        | <----- Result{iter, result} -- |
//! ```
//!
//! The full [`Config`] travels in the `Run` frame, so a worker cannot
//! skew a run through its own environment: for non-crashing runs the
//! [`RunResult`] coming back is **byte-identical** to an in-process run
//! of the same seed (proven in `tests/determinism.rs`), and campaign
//! reports are unchanged between modes.
//!
//! Supervision is enforced from *outside* the sandbox: the orchestrator
//! demands some frame (ack, heartbeat, or result) within
//! `GOAT_WORKER_GRACE_MS`; silence means the worker is wedged and it is
//! SIGKILLed. A worker that dies — by signal, abort, rlimit kill, or
//! missed heartbeats — is autopsied into [`CrashForensics`] (exit
//! status or signal, stderr tail, last acknowledged iteration) and the
//! run is recorded as [`RunOutcome::Crashed`]; the campaign replaces
//! the worker and carries on, so one crashing seed no longer erases an
//! entire night's evidence.
//!
//! Workers jail themselves at startup with `setrlimit`: core dumps are
//! disabled, the address space is capped (`GOAT_WORKER_RLIMIT_AS_MB`,
//! default 4096, `0` = unlimited), and an optional CPU-time ceiling
//! (`GOAT_WORKER_RLIMIT_CPU_S`, default off) converts runaway spins
//! into a clean `SIGXCPU` death with forensics.
//!
//! Isolation degrades gracefully: if the worker command cannot be
//! spawned or never completes the `Ready` handshake (e.g. the embedding
//! binary has no `--worker` mode), the command is marked broken once
//! and every run transparently falls back in-process — sound precisely
//! because the two modes produce identical bytes.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, ErrorKind, Read, Write};
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::program::Program;
use goat_runtime::faultpoint::{self, WorkerFault};
use goat_runtime::{Config, CrashForensics, RunOutcome, RunResult, SchedCounters};

/// Environment variable selecting the isolation mode (`off` | `proc`).
pub const ISOLATE_ENV: &str = "GOAT_ISOLATE";

/// Environment variable naming the worker command to spawn (defaults to
/// the current executable, which works for the `goat` CLI).
pub const WORKER_CMD_ENV: &str = "GOAT_WORKER_CMD";

/// Environment variable setting the worker heartbeat period in
/// milliseconds (default 100).
pub const HEARTBEAT_MS_ENV: &str = "GOAT_WORKER_HEARTBEAT_MS";

/// Environment variable setting how long the orchestrator tolerates
/// frame silence (no ack/heartbeat/result) before SIGKILLing a worker,
/// in milliseconds (default 5000).
pub const GRACE_MS_ENV: &str = "GOAT_WORKER_GRACE_MS";

/// Environment variable setting the spawn-to-`Ready` handshake deadline
/// in milliseconds (default 10000).
pub const SPAWN_GRACE_MS_ENV: &str = "GOAT_WORKER_SPAWN_GRACE_MS";

/// Environment variable capping the worker address space in MiB
/// (default 4096; `0` disables the cap).
pub const RLIMIT_AS_MB_ENV: &str = "GOAT_WORKER_RLIMIT_AS_MB";

/// Environment variable capping worker CPU seconds (default `0` = off;
/// exceeding it kills the worker with `SIGXCPU`).
pub const RLIMIT_CPU_S_ENV: &str = "GOAT_WORKER_RLIMIT_CPU_S";

/// Hard cap on a single frame's payload; anything larger is treated as
/// a corrupt stream rather than an allocation request.
pub(crate) const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Stderr lines retained per worker for crash forensics.
const STDERR_TAIL_LINES: usize = 40;

/// Where iterations execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolateMode {
    /// In-process (the historical behaviour, and the default).
    #[default]
    Off,
    /// Each run executes inside a sandboxed worker subprocess.
    Proc,
}

impl IsolateMode {
    /// Parse a mode string (`off`/`0` → [`IsolateMode::Off`],
    /// `proc`/`process`/`1` → [`IsolateMode::Proc`]).
    pub fn parse(s: &str) -> Option<IsolateMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" => Some(IsolateMode::Off),
            "proc" | "process" | "1" => Some(IsolateMode::Proc),
            _ => None,
        }
    }

    /// The mode selected by [`ISOLATE_ENV`]; unset or unrecognized
    /// values mean [`IsolateMode::Off`].
    pub fn from_env() -> IsolateMode {
        std::env::var(ISOLATE_ENV).ok().and_then(|v| IsolateMode::parse(&v)).unwrap_or_default()
    }
}

impl std::fmt::Display for IsolateMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolateMode::Off => write!(f, "off"),
            IsolateMode::Proc => write!(f, "proc"),
        }
    }
}

/// One message on the worker wire, encoded as `[u32 LE length][JSON]`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) enum Frame {
    /// Worker → orchestrator: the handshake; sent once at startup after
    /// the rlimit jail is in place.
    Ready,
    /// Orchestrator → worker: execute one iteration.
    Run {
        /// 1-based campaign iteration (forensics context only).
        iter: u64,
        /// Program name, resolved by the worker's registry.
        program: String,
        /// The complete runtime configuration — every knob travels in
        /// the frame so worker-side environment cannot skew the run.
        cfg: Config,
    },
    /// Worker → orchestrator: the `Run` frame was received; the gap
    /// between send and ack is the IPC latency sample.
    Ack {
        /// Iteration being acknowledged.
        iter: u64,
    },
    /// Worker → orchestrator: liveness beacon while (possibly) busy.
    Heartbeat {
        /// Iteration the worker is currently serving (0 when idle).
        iter: u64,
    },
    /// Worker → orchestrator: the iteration's complete result.
    Result {
        /// Iteration the result belongs to.
        iter: u64,
        /// The run's full result, bit-for-bit what an in-process run
        /// of the same [`Config`] produces (boxed: this variant is two
        /// orders of magnitude larger than the others).
        result: Box<RunResult>,
    },
}

/// Serialize one frame into its wire form (length prefix + JSON).
pub(crate) fn encode_frame(frame: &Frame) -> io::Result<Vec<u8>> {
    let json = serde_json::to_string(frame)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("encode frame: {e}")))?;
    let payload = json.as_bytes();
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Write one frame as a single `write_all` + flush, so concurrent
/// writers holding the same lock can never interleave partial frames.
pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let buf = encode_frame(frame)?;
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame; [`ErrorKind::UnexpectedEof`] means the peer is gone,
/// [`ErrorKind::InvalidData`] means the stream is corrupt (oversized
/// length, non-UTF-8, or unparseable JSON).
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("frame does not parse: {e}")))
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn heartbeat_ms() -> u64 {
    env_u64(HEARTBEAT_MS_ENV, 100).max(1)
}

fn grace_ms() -> u64 {
    env_u64(GRACE_MS_ENV, 5000).max(1)
}

fn spawn_grace_ms() -> u64 {
    env_u64(SPAWN_GRACE_MS_ENV, 10_000).max(1)
}

/// Resource jail + fault raising, via raw libc calls (no crates).
#[cfg(unix)]
mod sys {
    /// `struct rlimit`: soft and hard limits, both `rlim_t` (u64 on the
    /// 64-bit platforms we target).
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        fn raise(sig: i32) -> i32;
        fn signal(sig: i32, handler: usize) -> usize;
    }

    /// `SIG_DFL`: the default disposition.
    const SIG_DFL: usize = 0;

    #[cfg(target_os = "macos")]
    const RLIMIT_AS: i32 = 5;
    #[cfg(not(target_os = "macos"))]
    const RLIMIT_AS: i32 = 9;
    const RLIMIT_CPU: i32 = 0;
    const RLIMIT_CORE: i32 = 4;

    fn set(resource: i32, limit: u64) {
        let rl = RLimit { cur: limit, max: limit };
        // A failed setrlimit (e.g. raising above a container hard cap)
        // leaves the inherited limit in place; the jail is best-effort.
        unsafe {
            setrlimit(resource, &rl);
        }
    }

    /// Apply the worker jail: no core dumps (forensics come from stderr
    /// and exit status, not core files), a capped address space, and an
    /// optional CPU-seconds ceiling.
    pub fn apply_rlimits() {
        set(RLIMIT_CORE, 0);
        let as_mb = super::env_u64(super::RLIMIT_AS_MB_ENV, 4096);
        if as_mb > 0 {
            set(RLIMIT_AS, as_mb.saturating_mul(1024 * 1024));
        }
        let cpu_s = super::env_u64(super::RLIMIT_CPU_S_ENV, 0);
        if cpu_s > 0 {
            set(RLIMIT_CPU, cpu_s);
        }
    }

    /// Deliver `sig` to the calling process with its *default*
    /// disposition (fault injection): the Rust runtime installs its own
    /// SIGSEGV handler for stack-overflow detection, which would
    /// otherwise swallow a raised fault signal.
    pub fn raise_signal(sig: i32) {
        unsafe {
            signal(sig, SIG_DFL);
            raise(sig);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn apply_rlimits() {}
    pub fn raise_signal(_sig: i32) {}
}

/// Human name for the signals a worker plausibly dies from.
fn signal_name(sig: i32) -> &'static str {
    match sig {
        4 => "SIGILL",
        6 => "SIGABRT",
        7 => "SIGBUS",
        8 => "SIGFPE",
        9 => "SIGKILL",
        11 => "SIGSEGV",
        24 => "SIGXCPU",
        _ => "unknown",
    }
}

#[cfg(unix)]
fn status_signal(status: &ExitStatus) -> Option<i32> {
    std::os::unix::process::ExitStatusExt::signal(status)
}

#[cfg(not(unix))]
fn status_signal(_status: &ExitStatus) -> Option<i32> {
    None
}

/// A [`RunResult`] synthesized by the orchestrator when the worker
/// never produced one (death or protocol corruption). Carries the
/// neutral fingerprint seed so memoization never confuses it with a
/// real execution.
fn synth_result(outcome: RunOutcome) -> RunResult {
    RunResult {
        outcome,
        ect: None,
        steps: 0,
        vclock: goat_trace::VTime(0),
        goroutines: 0,
        yields_injected: 0,
        priority_changes: 0,
        alive_at_end: Vec::new(),
        schedule: goat_runtime::ReplayLog::default(),
        replay_diverged: false,
        sched: SchedCounters::default(),
        fingerprint: goat_trace::tracebuf::FP_SEED,
        panic_detail: None,
    }
}

fn write_frame_locked(out: &Arc<Mutex<io::Stdout>>, frame: &Frame) -> io::Result<()> {
    let mut out = out.lock().expect("worker stdout lock");
    write_frame(&mut *out, frame)
}

/// Serve the worker side of the protocol on stdin/stdout until the
/// orchestrator closes the pipe; returns the process exit code.
///
/// `resolve` maps a program name from a `Run` frame to the program to
/// execute (the CLI passes the goker kernel registry). The worker jails
/// itself with [`sys::apply_rlimits`] before answering `Ready`, streams
/// `Heartbeat` frames from a side thread, and answers every `Run` with
/// `Ack` + `Result`. Injected worker faults (`GOAT_FAULT=worker:…`)
/// fire here, keyed on the run's seed.
pub fn serve_worker(resolve: &dyn Fn(&str) -> Option<Arc<dyn Program>>) -> i32 {
    sys::apply_rlimits();
    let stdout = Arc::new(Mutex::new(io::stdout()));
    let current_iter = Arc::new(AtomicU64::new(0));
    // Set when an injected fault must silence the liveness beacon so
    // the orchestrator's no-heartbeat watchdog can be exercised.
    let muted = Arc::new(AtomicBool::new(false));
    if write_frame_locked(&stdout, &Frame::Ready).is_err() {
        return 1;
    }
    {
        let stdout = Arc::clone(&stdout);
        let current_iter = Arc::clone(&current_iter);
        let muted = Arc::clone(&muted);
        let _ =
            std::thread::Builder::new().name("goat-worker-heartbeat".into()).spawn(move || loop {
                std::thread::sleep(Duration::from_millis(heartbeat_ms()));
                if muted.load(Ordering::Relaxed) {
                    continue;
                }
                let iter = current_iter.load(Ordering::Relaxed);
                if write_frame_locked(&stdout, &Frame::Heartbeat { iter }).is_err() {
                    return;
                }
            });
    }
    let mut stdin = io::stdin().lock();
    loop {
        let frame = match read_frame(&mut stdin) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => return 0,
            Err(e) => {
                eprintln!("goat-worker: protocol error on stdin: {e}");
                return 1;
            }
        };
        let Frame::Run { iter, program, cfg } = frame else {
            eprintln!("goat-worker: unexpected frame (expected Run)");
            return 1;
        };
        match faultpoint::worker_fault(cfg.seed) {
            Some(WorkerFault::Kill(sig)) => {
                muted.store(true, Ordering::Relaxed);
                eprintln!(
                    "goat-worker: injected fault: raising signal {sig} ({}) on iter {iter} seed {}",
                    signal_name(sig),
                    cfg.seed
                );
                sys::raise_signal(sig);
                // Only reached when `sig` was non-fatal (e.g. ignored).
                return 70;
            }
            Some(WorkerFault::Wedge) => {
                muted.store(true, Ordering::Relaxed);
                eprintln!(
                    "goat-worker: injected fault: wedging without ack on iter {iter} seed {}",
                    cfg.seed
                );
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            Some(WorkerFault::Garbage) => {
                eprintln!(
                    "goat-worker: injected fault: emitting garbage frame on iter {iter} seed {}",
                    cfg.seed
                );
                let mut out = stdout.lock().expect("worker stdout lock");
                // An impossible length prefix: decoded as a corrupt
                // stream, never as an allocation request.
                let _ = out.write_all(&[0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe, 0xef]);
                let _ = out.flush();
                drop(out);
                continue;
            }
            None => {}
        }
        current_iter.store(iter, Ordering::Relaxed);
        if write_frame_locked(&stdout, &Frame::Ack { iter }).is_err() {
            return 1;
        }
        let result = match resolve(&program) {
            Some(p) => goat_runtime::Runtime::run(cfg, crate::runner::Goat::instrumented(p)),
            None => synth_result(RunOutcome::InfraFailure {
                reason: format!("worker: unknown program {program:?}"),
            }),
        };
        if write_frame_locked(&stdout, &Frame::Result { iter, result: Box::new(result) }).is_err() {
            return 1;
        }
    }
}

/// What the reader thread saw on a worker's stdout.
enum Event {
    /// A well-formed frame (boxed: `Result` frames dwarf the other
    /// variants).
    Frame(Box<Frame>),
    /// The stream is corrupt (oversized/unparseable frame).
    Corrupt(String),
    /// The worker closed its stdout (it is dead or dying).
    Eof,
}

/// Orchestrator-side handle on one live worker subprocess.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    events: mpsc::Receiver<Event>,
    stderr_tail: Arc<Mutex<VecDeque<String>>>,
    /// Runs served so far (reuse accounting).
    runs: u64,
}

/// Pool of idle workers plus the set of commands that failed to spawn
/// or handshake; broken commands fall back in-process forever (and are
/// reported once).
///
/// Idle workers are keyed by command *and* the fault plan that was
/// active at spawn time (the plan travels in the worker's environment),
/// so a worker jailed under one `GOAT_FAULT` plan is never reused by a
/// campaign running under another.
#[derive(Default)]
struct PoolState {
    idle: HashMap<String, Vec<Worker>>,
    broken: HashSet<String>,
}

fn pool_key(cmd: &str) -> String {
    match faultpoint::current_spec() {
        Some(spec) => format!("{cmd}\u{1f}{spec}"),
        None => cmd.to_string(),
    }
}

fn pool() -> &'static Mutex<PoolState> {
    static POOL: OnceLock<Mutex<PoolState>> = OnceLock::new();
    POOL.get_or_init(Mutex::default)
}

fn mark_broken(cmd: &str, err: &str) {
    let mut st = pool().lock().expect("worker pool lock");
    if st.broken.insert(cmd.to_string()) {
        eprintln!(
            "goat: process isolation unavailable for worker command {cmd:?} ({err}); \
             falling back to in-process runs"
        );
    }
}

/// Spawn one worker and complete the `Ready` handshake.
fn spawn_worker(cmd: &str) -> Result<Worker, String> {
    let mut command = Command::new(cmd);
    command
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        // Campaign-level concerns stay in the orchestrator: a worker
        // must not write checkpoints or telemetry, and must never
        // isolate recursively.
        .env_remove("GOAT_TELEMETRY")
        .env_remove("GOAT_CHECKPOINT")
        .env_remove(ISOLATE_ENV);
    // Scoped fault plans only exist in this process; propagate the
    // active spec so `faultpoint::scoped` test plans reach the worker.
    match faultpoint::current_spec() {
        Some(spec) => {
            command.env("GOAT_FAULT", spec);
        }
        None => {
            command.env_remove("GOAT_FAULT");
        }
    }
    let mut child = command.spawn().map_err(|e| format!("spawn {cmd:?}: {e}"))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = child.stdout.take().expect("piped stdout");
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = mpsc::channel();
    let _ = std::thread::Builder::new().name("goat-worker-reader".into()).spawn(move || loop {
        match read_frame(&mut stdout) {
            Ok(f) => {
                if tx.send(Event::Frame(Box::new(f))).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                let _ = tx.send(Event::Eof);
                return;
            }
            Err(e) => {
                let _ = tx.send(Event::Corrupt(e.to_string()));
                return;
            }
        }
    });
    let stderr_tail = Arc::new(Mutex::new(VecDeque::new()));
    {
        let stderr_tail = Arc::clone(&stderr_tail);
        let _ = std::thread::Builder::new().name("goat-worker-stderr".into()).spawn(move || {
            for line in io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { return };
                let mut tail = stderr_tail.lock().expect("stderr tail lock");
                if tail.len() >= STDERR_TAIL_LINES {
                    tail.pop_front();
                }
                tail.push_back(line);
            }
        });
    }
    match rx.recv_timeout(Duration::from_millis(spawn_grace_ms())) {
        Ok(Event::Frame(f)) if matches!(*f, Frame::Ready) => {}
        other => {
            let _ = child.kill();
            let _ = child.wait();
            let what = match other {
                Ok(Event::Frame(_)) => "answered with a non-Ready frame".to_string(),
                Ok(Event::Corrupt(e)) => format!("sent a corrupt handshake: {e}"),
                Ok(Event::Eof) => "exited before completing the Ready handshake".to_string(),
                Err(_) => "never completed the Ready handshake".to_string(),
            };
            return Err(what);
        }
    }
    goat_metrics::global().counter("isolate.workers_spawned").inc();
    Ok(Worker { child, stdin, events: rx, stderr_tail, runs: 0 })
}

/// SIGKILL a misbehaving worker and reap it.
fn kill_worker(worker: &mut Worker) {
    let _ = worker.child.kill();
    let _ = worker.child.wait();
    goat_metrics::global().counter("isolate.workers_killed").inc();
}

/// Reap a worker that died on its own and collect the post-mortem.
fn autopsy(
    worker: &mut Worker,
    last_ack_iter: Option<u64>,
    no_heartbeat: Option<Duration>,
) -> CrashForensics {
    let status = worker.child.wait().ok();
    // Give the stderr drain thread a beat to pull the final lines out
    // of the (now closed) pipe before snapshotting the tail.
    std::thread::sleep(Duration::from_millis(50));
    let stderr_tail = {
        let tail = worker.stderr_tail.lock().expect("stderr tail lock");
        tail.iter().cloned().collect::<Vec<_>>().join("\n")
    };
    let signal = status.as_ref().and_then(status_signal);
    let exit_code = status.as_ref().and_then(ExitStatus::code);
    let summary = if let Some(grace) = no_heartbeat {
        format!("no heartbeat within {} ms; killed", grace.as_millis())
    } else if let Some(sig) = signal {
        format!("killed by signal {sig} ({})", signal_name(sig))
    } else if let Some(code) = exit_code {
        format!("exited with code {code}")
    } else {
        "died with unknown status".to_string()
    };
    CrashForensics { signal, exit_code, stderr_tail, last_ack_iter, summary }
}

/// Take an idle pooled worker for `cmd`, or spawn a fresh one. `None`
/// means the command is (now) broken and the caller must fall back.
fn checkout(cmd: &str) -> Option<Worker> {
    let key = pool_key(cmd);
    loop {
        let mut st = pool().lock().expect("worker pool lock");
        if st.broken.contains(cmd) {
            return None;
        }
        let Some(mut worker) = st.idle.get_mut(&key).and_then(Vec::pop) else {
            drop(st);
            return match spawn_worker(cmd) {
                Ok(w) => Some(w),
                Err(e) => {
                    mark_broken(cmd, &e);
                    None
                }
            };
        };
        drop(st);
        // Drain queued idle heartbeats; Eof/Corrupt in the backlog (or
        // an exited child) means the worker died while pooled.
        let mut dead = false;
        loop {
            match worker.events.try_recv() {
                Ok(Event::Frame(_)) => continue,
                Ok(_) => {
                    dead = true;
                    break;
                }
                Err(_) => break,
            }
        }
        if dead || worker.child.try_wait().map(|s| s.is_some()).unwrap_or(true) {
            let _ = worker.child.wait();
            goat_metrics::global().counter("isolate.workers_died").inc();
            continue;
        }
        goat_metrics::global().counter("isolate.workers_reused").inc();
        return Some(worker);
    }
}

/// Return a healthy worker to the idle pool.
fn checkin(cmd: &str, worker: Worker) {
    let mut st = pool().lock().expect("worker pool lock");
    st.idle.entry(pool_key(cmd)).or_default().push(worker);
}

/// Execute one iteration inside a sandboxed worker.
///
/// Returns `None` when isolation is unavailable for this worker command
/// (spawn or handshake failure) and the caller should run in-process —
/// a sound fallback because both modes produce byte-identical results.
/// Otherwise always returns a result: the worker's own on success, or a
/// synthesized [`RunOutcome::Crashed`] / [`RunOutcome::InfraFailure`]
/// when the worker died or corrupted the stream.
pub(crate) fn run_in_worker(
    cmd: Option<&str>,
    program: &str,
    iter: u64,
    cfg: &Config,
) -> Option<RunResult> {
    let cmd = match cmd {
        Some(c) => c.to_string(),
        None => std::env::current_exe().ok()?.to_str()?.to_string(),
    };
    let mut worker = checkout(&cmd)?;
    let run = Frame::Run { iter, program: program.to_string(), cfg: cfg.clone() };
    let mut sent_at = Instant::now();
    if write_frame(&mut worker.stdin, &run).is_err() {
        // A pooled worker can die between checkout and the first write;
        // one fresh respawn distinguishes that from a broken command.
        kill_worker(&mut worker);
        worker = match spawn_worker(&cmd) {
            Ok(w) => w,
            Err(e) => {
                mark_broken(&cmd, &e);
                return None;
            }
        };
        sent_at = Instant::now();
        if write_frame(&mut worker.stdin, &run).is_err() {
            kill_worker(&mut worker);
            return Some(synth_result(RunOutcome::InfraFailure {
                reason: "worker rejected the run frame twice".to_string(),
            }));
        }
    }
    let grace = Duration::from_millis(grace_ms());
    let mut last_ack = None;
    loop {
        match worker.events.recv_timeout(grace) {
            Ok(Event::Frame(frame)) => match *frame {
                Frame::Ack { iter: i } if i == iter => {
                    last_ack = Some(i);
                    goat_metrics::global()
                        .histogram("isolate.ipc_ns")
                        .record(sent_at.elapsed().as_nanos() as u64);
                }
                // Stale acks/heartbeats from a reused worker count as
                // liveness but carry no other information.
                Frame::Ack { .. } | Frame::Heartbeat { .. } => {}
                Frame::Result { iter: i, result } if i == iter => {
                    worker.runs += 1;
                    goat_metrics::global().counter("isolate.runs").inc();
                    checkin(&cmd, worker);
                    return Some(*result);
                }
                f => {
                    kill_worker(&mut worker);
                    return Some(synth_result(RunOutcome::InfraFailure {
                        reason: format!("worker protocol violation: unexpected {f:?}"),
                    }));
                }
            },
            Ok(Event::Corrupt(e)) => {
                kill_worker(&mut worker);
                return Some(synth_result(RunOutcome::InfraFailure {
                    reason: format!("worker sent a corrupt frame: {e}"),
                }));
            }
            Ok(Event::Eof) => {
                let forensics = autopsy(&mut worker, last_ack, None);
                goat_metrics::global().counter("isolate.workers_died").inc();
                return Some(synth_result(RunOutcome::Crashed { forensics }));
            }
            Err(RecvTimeoutError::Timeout) => {
                kill_worker(&mut worker);
                let forensics = autopsy(&mut worker, last_ack, Some(grace));
                return Some(synth_result(RunOutcome::Crashed { forensics }));
            }
            Err(RecvTimeoutError::Disconnected) => {
                kill_worker(&mut worker);
                let forensics = autopsy(&mut worker, last_ack, None);
                return Some(synth_result(RunOutcome::Crashed { forensics }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolate_mode_parses_and_displays() {
        assert_eq!(IsolateMode::parse("off"), Some(IsolateMode::Off));
        assert_eq!(IsolateMode::parse("0"), Some(IsolateMode::Off));
        assert_eq!(IsolateMode::parse(""), Some(IsolateMode::Off));
        assert_eq!(IsolateMode::parse("proc"), Some(IsolateMode::Proc));
        assert_eq!(IsolateMode::parse("PROCESS"), Some(IsolateMode::Proc));
        assert_eq!(IsolateMode::parse("1"), Some(IsolateMode::Proc));
        assert_eq!(IsolateMode::parse("yes"), None);
        assert_eq!(IsolateMode::Off.to_string(), "off");
        assert_eq!(IsolateMode::Proc.to_string(), "proc");
        assert_eq!(IsolateMode::default(), IsolateMode::Off);
    }

    #[test]
    fn run_frame_roundtrips_through_the_codec() {
        let cfg = Config::new(42).with_delay_bound(3);
        let frame = Frame::Run { iter: 7, program: "etcd6708".to_string(), cfg };
        let bytes = encode_frame(&frame).expect("encode");
        let back = read_frame(&mut &bytes[..]).expect("decode");
        match back {
            Frame::Run { iter, program, cfg } => {
                assert_eq!(iter, 7);
                assert_eq!(program, "etcd6708");
                assert_eq!(cfg.seed, 42);
                assert_eq!(cfg.delay_bound, 3);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn result_frame_roundtrips_with_forensics() {
        let result = synth_result(RunOutcome::Crashed {
            forensics: CrashForensics {
                signal: Some(6),
                exit_code: None,
                stderr_tail: "abort: boom".to_string(),
                last_ack_iter: Some(3),
                summary: "killed by signal 6 (SIGABRT)".to_string(),
            },
        });
        let bytes =
            encode_frame(&Frame::Result { iter: 3, result: Box::new(result) }).expect("encode");
        let back = read_frame(&mut &bytes[..]).expect("decode");
        let Frame::Result { iter, result } = back else { panic!("wrong frame") };
        assert_eq!(iter, 3);
        let RunOutcome::Crashed { forensics } = result.outcome else {
            panic!("wrong outcome: {}", result.outcome)
        };
        assert_eq!(forensics.signal, Some(6));
        assert_eq!(forensics.last_ack_iter, Some(3));
        assert_eq!(result.fingerprint, goat_trace::tracebuf::FP_SEED);
        assert!(result.ect.is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_not_allocated() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(b"\xde\xad\xbe\xef");
        let err = read_frame(&mut &bytes[..]).expect_err("must reject");
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn truncated_frame_reads_as_eof() {
        let full = encode_frame(&Frame::Ready).expect("encode");
        let err = read_frame(&mut &full[..full.len() - 1]).expect_err("must fail");
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
        assert!(read_frame(&mut &[][..]).is_err());
    }

    #[test]
    fn unparseable_frame_is_invalid_data() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"]!{[");
        let err = read_frame(&mut &bytes[..]).expect_err("must fail");
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn signal_names_cover_the_common_deaths() {
        assert_eq!(signal_name(6), "SIGABRT");
        assert_eq!(signal_name(9), "SIGKILL");
        assert_eq!(signal_name(11), "SIGSEGV");
        assert_eq!(signal_name(24), "SIGXCPU");
        assert_eq!(signal_name(63), "unknown");
    }
}
