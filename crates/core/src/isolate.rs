//! Out-of-process run isolation (`GOAT_ISOLATE=proc`): worker sandbox,
//! crash forensics, and resource jails.
//!
//! In the default mode every iteration executes inside the campaign
//! process; a kernel that segfaults, aborts, or chews through all
//! memory takes the whole campaign (and its merge state) down with it.
//! With `GOAT_ISOLATE=proc` the runner instead drives a pool of
//! persistent **worker subprocesses** — one `goat --worker` child per
//! parallel lane — over a length-prefixed frame protocol on
//! stdin/stdout. Framing is always `[u32 LE payload length][payload]`;
//! `GOAT_IPC` selects the payload encoding:
//!
//! * `bin` (the default) — the compact binary data plane of
//!   [`crate::wire`]: a per-checkout `Init` frame carries the
//!   campaign-constant [`Config`] base (and shared-memory geometry)
//!   once, each `Run` frame carries only the per-run delta (seed,
//!   delay bound, yield probability, strategy), and result traces
//!   travel through the varint-delta event codec of
//!   [`goat_trace::wire`];
//! * `json` — the debug/compat path: self-describing JSON frames with
//!   the full `Config` in every `Run`.
//!
//! ```text
//!   orchestrator                       worker
//!        | ---- spawn `goat --worker` --> |   (rlimit jail applied)
//!        | <--------- Ready ------------- |   handshake
//!        | ---- Init{base, shm geom} ---> |   (bin; once per checkout)
//!        | ---- Run{iter, delta} ×batch > |   (GOAT_IPC_BATCH per write)
//!        | <--------- Ack{iter} --------- |   (transport latency sample)
//!        | <-------- Heartbeat{iter} ---- |   every GOAT_WORKER_HEARTBEAT_MS
//!        | <-- Result{iter, result} ----- |   (or ResultShm{slot} via the
//!        |                                |    file-backed shm ring)
//! ```
//!
//! With `GOAT_IPC_SHM=1` the orchestrator maps a file-backed
//! shared-memory ring (one slot per batch lane) and the worker writes
//! each encoded result into a slot, sending only a tiny `ResultShm`
//! reference over the pipe; the orchestrator decodes straight out of
//! the mapping — no serialize→pipe→parse round trip for bulky bug
//! traces. Mapping failure on either side degrades silently to pipe
//! `Result` frames.
//!
//! Every knob still travels from the orchestrator (in `Init` + `Run`),
//! so a worker cannot skew a run through its own environment: for
//! non-crashing runs the [`RunResult`] coming back is **byte-identical**
//! to an in-process run of the same seed in every IPC mode (proven in
//! `tests/determinism.rs`), and campaign reports are unchanged between
//! modes.
//!
//! Supervision is enforced from *outside* the sandbox: the orchestrator
//! demands some frame (ack, heartbeat, or result) within
//! `GOAT_WORKER_GRACE_MS`; silence means the worker is wedged and it is
//! SIGKILLed. A worker that dies — by signal, abort, rlimit kill, or
//! missed heartbeats — is autopsied into [`CrashForensics`] (exit
//! status or signal, stderr tail, last acknowledged iteration) and the
//! run is recorded as [`RunOutcome::Crashed`]; the campaign replaces
//! the worker and carries on. Corrupt frames (length prefix over the
//! `GOAT_IPC_MAX_FRAME_MB` cap, undecodable payloads) and protocol
//! violations stay retried InfraFailures in both encodings.
//!
//! Workers jail themselves at startup with `setrlimit`: core dumps are
//! disabled, the address space is capped (`GOAT_WORKER_RLIMIT_AS_MB`,
//! default 4096, `0` = unlimited), and an optional CPU-time ceiling
//! (`GOAT_WORKER_RLIMIT_CPU_S`, default off) converts runaway spins
//! into a clean `SIGXCPU` death with forensics.
//!
//! Isolation degrades gracefully: if the worker command cannot be
//! spawned or never completes the `Ready` handshake (e.g. the embedding
//! binary has no `--worker` mode), the command is marked broken once
//! and every run transparently falls back in-process — sound precisely
//! because the two modes produce identical bytes.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, ErrorKind, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::program::Program;
use crate::wire::{self, WireFrame};
use goat_runtime::faultpoint::{self, WorkerFault};
use goat_runtime::{Config, CrashForensics, RunOutcome, RunResult, SchedCounters, StrategyKind};

/// Environment variable selecting the isolation mode (`off` | `proc`).
pub const ISOLATE_ENV: &str = "GOAT_ISOLATE";

/// Environment variable selecting the IPC payload encoding
/// (`bin` | `json`; unset means `bin`).
pub const IPC_ENV: &str = "GOAT_IPC";

/// Environment variable enabling the shared-memory result ring under
/// `GOAT_IPC=bin` (`1`/`on`/`true`; default off).
pub const IPC_SHM_ENV: &str = "GOAT_IPC_SHM";

/// Environment variable setting how many `Run` frames the orchestrator
/// sends per write (default 1; capped by the guided-campaign lag).
pub const IPC_BATCH_ENV: &str = "GOAT_IPC_BATCH";

/// Environment variable setting the frame-payload cap in MiB (default
/// 64, clamped to [1, 4096]); a length prefix above the cap is treated
/// as a corrupt stream, never as an allocation request.
pub const IPC_MAX_FRAME_MB_ENV: &str = "GOAT_IPC_MAX_FRAME_MB";

/// Environment variable naming the worker command to spawn (defaults to
/// the current executable, which works for the `goat` CLI).
pub const WORKER_CMD_ENV: &str = "GOAT_WORKER_CMD";

/// Environment variable setting the worker heartbeat period in
/// milliseconds (default 100).
pub const HEARTBEAT_MS_ENV: &str = "GOAT_WORKER_HEARTBEAT_MS";

/// Environment variable setting how long the orchestrator tolerates
/// frame silence (no ack/heartbeat/result) before SIGKILLing a worker,
/// in milliseconds (default 5000).
pub const GRACE_MS_ENV: &str = "GOAT_WORKER_GRACE_MS";

/// Environment variable setting the spawn-to-`Ready` handshake deadline
/// in milliseconds (default 10000).
pub const SPAWN_GRACE_MS_ENV: &str = "GOAT_WORKER_SPAWN_GRACE_MS";

/// Environment variable capping the worker address space in MiB
/// (default 4096; `0` disables the cap).
pub const RLIMIT_AS_MB_ENV: &str = "GOAT_WORKER_RLIMIT_AS_MB";

/// Environment variable capping worker CPU seconds (default `0` = off;
/// exceeding it kills the worker with `SIGXCPU`).
pub const RLIMIT_CPU_S_ENV: &str = "GOAT_WORKER_RLIMIT_CPU_S";

/// Stderr lines retained per worker for crash forensics.
const STDERR_TAIL_LINES: usize = 40;

/// Upper bound on one shm slot (and thus on a zero-pipe result); bigger
/// results fall back to the pipe. Kept modest so the mapping does not
/// eat into the worker's `RLIMIT_AS` jail.
const SHM_SLOT_MAX: usize = 16 * 1024 * 1024;

/// First allocation when reading a frame payload: even a corrupt
/// length prefix under the cap cannot force a giant upfront
/// allocation, because the buffer grows only as bytes actually arrive.
const READ_CHUNK: usize = 1024 * 1024;

/// The frame-payload cap ([`IPC_MAX_FRAME_MB_ENV`], default 64 MiB).
pub(crate) fn max_frame() -> usize {
    (env_u64(IPC_MAX_FRAME_MB_ENV, 64).clamp(1, 4096) as usize) << 20
}

/// Where iterations execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolateMode {
    /// In-process (the historical behaviour, and the default).
    #[default]
    Off,
    /// Each run executes inside a sandboxed worker subprocess.
    Proc,
}

impl IsolateMode {
    /// Parse a mode string (`off`/`0` → [`IsolateMode::Off`],
    /// `proc`/`process`/`1` → [`IsolateMode::Proc`]).
    pub fn parse(s: &str) -> Option<IsolateMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" => Some(IsolateMode::Off),
            "proc" | "process" | "1" => Some(IsolateMode::Proc),
            _ => None,
        }
    }

    /// The mode selected by [`ISOLATE_ENV`]; unset or unrecognized
    /// values mean [`IsolateMode::Off`].
    pub fn from_env() -> IsolateMode {
        std::env::var(ISOLATE_ENV).ok().and_then(|v| IsolateMode::parse(&v)).unwrap_or_default()
    }
}

impl std::fmt::Display for IsolateMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolateMode::Off => write!(f, "off"),
            IsolateMode::Proc => write!(f, "proc"),
        }
    }
}

/// The IPC payload encoding on the worker wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IpcMode {
    /// Compact binary frames ([`crate::wire`]) — the default.
    #[default]
    Bin,
    /// Self-describing JSON frames — the debug/compat path.
    Json,
}

impl IpcMode {
    /// Parse an encoding name (`bin`/`binary` → [`IpcMode::Bin`],
    /// `json` → [`IpcMode::Json`]; empty means the default).
    pub fn parse(s: &str) -> Option<IpcMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "bin" | "binary" => Some(IpcMode::Bin),
            "json" => Some(IpcMode::Json),
            _ => None,
        }
    }

    /// The encoding selected by [`IPC_ENV`]; unset or unrecognized
    /// values mean [`IpcMode::Bin`].
    pub fn from_env() -> IpcMode {
        std::env::var(IPC_ENV).ok().and_then(|v| IpcMode::parse(&v)).unwrap_or_default()
    }
}

impl std::fmt::Display for IpcMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpcMode::Bin => write!(f, "bin"),
            IpcMode::Json => write!(f, "json"),
        }
    }
}

/// Resolved IPC data-plane settings for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct IpcSpec {
    /// Payload encoding.
    pub mode: IpcMode,
    /// Use the shared-memory result ring (bin mode only).
    pub shm: bool,
    /// `Run` frames per pipe write (≥ 1).
    pub batch: usize,
}

impl Default for IpcSpec {
    fn default() -> Self {
        IpcSpec { mode: IpcMode::from_env(), shm: env_flag(IPC_SHM_ENV), batch: 1 }
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "on" | "true" | "yes"))
        .unwrap_or(false)
}

/// One message on the JSON worker wire, encoded as `[u32 LE length][JSON]`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) enum Frame {
    /// Worker → orchestrator: the handshake; sent once at startup after
    /// the rlimit jail is in place.
    Ready,
    /// Orchestrator → worker: execute one iteration.
    Run {
        /// 1-based campaign iteration (forensics context only).
        iter: u64,
        /// Program name, resolved by the worker's registry.
        program: String,
        /// The complete runtime configuration — every knob travels in
        /// the frame so worker-side environment cannot skew the run.
        cfg: Config,
    },
    /// Worker → orchestrator: the `Run` frame was received; the gap
    /// between send and ack is the IPC latency sample.
    Ack {
        /// Iteration being acknowledged.
        iter: u64,
    },
    /// Worker → orchestrator: liveness beacon while (possibly) busy.
    Heartbeat {
        /// Iteration the worker is currently serving (0 when idle).
        iter: u64,
    },
    /// Worker → orchestrator: the iteration's complete result.
    Result {
        /// Iteration the result belongs to.
        iter: u64,
        /// The run's full result, bit-for-bit what an in-process run
        /// of the same [`Config`] produces (boxed: this variant is two
        /// orders of magnitude larger than the others).
        result: Box<RunResult>,
    },
}

/// Serialize one JSON frame into its wire form (length prefix + JSON).
pub(crate) fn encode_frame(frame: &Frame) -> io::Result<Vec<u8>> {
    let json = serde_json::to_string(frame)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("encode frame: {e}")))?;
    let payload = json.as_bytes();
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Write one frame as a single `write_all` + flush, so concurrent
/// writers holding the same lock can never interleave partial frames.
pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let buf = encode_frame(frame)?;
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame payload (both encodings share the framing).
/// [`ErrorKind::UnexpectedEof`] means the peer is gone,
/// [`ErrorKind::InvalidData`] means the length prefix exceeds the
/// [`max_frame`] cap. The length is validated *before* any allocation,
/// and the buffer then grows only as bytes actually arrive, so a
/// corrupt under-cap prefix cannot force a giant upfront allocation.
pub(crate) fn read_payload(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    let cap = max_frame();
    if len > cap {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {cap}-byte cap"),
        ));
    }
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    let got = r.take(len as u64).read_to_end(&mut payload)?;
    if got < len {
        return Err(io::Error::new(
            ErrorKind::UnexpectedEof,
            format!("frame truncated: {got} of {len} bytes"),
        ));
    }
    Ok(payload)
}

/// Parse a JSON frame payload.
pub(crate) fn parse_json_frame(payload: &[u8]) -> io::Result<Frame> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("frame does not parse: {e}")))
}

/// Read one JSON frame (worker side + tests).
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let payload = read_payload(r)?;
    parse_json_frame(&payload)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn heartbeat_ms() -> u64 {
    env_u64(HEARTBEAT_MS_ENV, 100).max(1)
}

fn grace_ms() -> u64 {
    env_u64(GRACE_MS_ENV, 5000).max(1)
}

fn spawn_grace_ms() -> u64 {
    env_u64(SPAWN_GRACE_MS_ENV, 10_000).max(1)
}

/// Resource jail, fault raising, and shared-memory mapping via raw libc
/// calls (no crates).
#[cfg(unix)]
mod sys {
    /// `struct rlimit`: soft and hard limits, both `rlim_t` (u64 on the
    /// 64-bit platforms we target).
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        fn raise(sig: i32) -> i32;
        fn signal(sig: i32, handler: usize) -> usize;
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// `SIG_DFL`: the default disposition.
    const SIG_DFL: usize = 0;

    #[cfg(target_os = "macos")]
    const RLIMIT_AS: i32 = 5;
    #[cfg(not(target_os = "macos"))]
    const RLIMIT_AS: i32 = 9;
    const RLIMIT_CPU: i32 = 0;
    const RLIMIT_CORE: i32 = 4;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 1;

    fn set(resource: i32, limit: u64) {
        let rl = RLimit { cur: limit, max: limit };
        // A failed setrlimit (e.g. raising above a container hard cap)
        // leaves the inherited limit in place; the jail is best-effort.
        unsafe {
            setrlimit(resource, &rl);
        }
    }

    /// Apply the worker jail: no core dumps (forensics come from stderr
    /// and exit status, not core files), a capped address space, and an
    /// optional CPU-seconds ceiling.
    pub fn apply_rlimits() {
        set(RLIMIT_CORE, 0);
        let as_mb = super::env_u64(super::RLIMIT_AS_MB_ENV, 4096);
        if as_mb > 0 {
            set(RLIMIT_AS, as_mb.saturating_mul(1024 * 1024));
        }
        let cpu_s = super::env_u64(super::RLIMIT_CPU_S_ENV, 0);
        if cpu_s > 0 {
            set(RLIMIT_CPU, cpu_s);
        }
    }

    /// Deliver `sig` to the calling process with its *default*
    /// disposition (fault injection): the Rust runtime installs its own
    /// SIGSEGV handler for stack-overflow detection, which would
    /// otherwise swallow a raised fault signal.
    pub fn raise_signal(sig: i32) {
        unsafe {
            signal(sig, SIG_DFL);
            raise(sig);
        }
    }

    /// `MAP_SHARED`-map `len` bytes of `file`; `None` on failure (the
    /// caller falls back to pipe transport).
    pub fn map_file(file: &std::fs::File, len: usize, write: bool) -> Option<(*mut u8, usize)> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        let prot = if write { PROT_READ | PROT_WRITE } else { PROT_READ };
        let ptr = unsafe { mmap(std::ptr::null_mut(), len, prot, MAP_SHARED, file.as_raw_fd(), 0) };
        if ptr.is_null() || ptr as isize == -1 {
            return None;
        }
        Some((ptr, len))
    }

    /// Unmap a region mapped by [`map_file`].
    pub fn unmap(ptr: *mut u8, len: usize) {
        unsafe {
            munmap(ptr, len);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn apply_rlimits() {}
    pub fn raise_signal(_sig: i32) {}
    pub fn map_file(_file: &std::fs::File, _len: usize, _write: bool) -> Option<(*mut u8, usize)> {
        None
    }
    pub fn unmap(_ptr: *mut u8, _len: usize) {}
}

/// An owned `MAP_SHARED` mapping (unmapped on drop).
struct ShmMap {
    ptr: *mut u8,
    len: usize,
}

// The raw pointer is only a region handle; the region itself is shared
// memory whose cross-process ordering is anchored by the pipe frames
// (the worker writes a slot strictly before its `ResultShm` frame, and
// the orchestrator reads it strictly after).
unsafe impl Send for ShmMap {}

impl ShmMap {
    fn map(file: &std::fs::File, len: usize, write: bool) -> Option<ShmMap> {
        sys::map_file(file, len, write).map(|(ptr, len)| ShmMap { ptr, len })
    }

    /// Borrow `len` bytes at `off`; caller must have validated bounds.
    unsafe fn slice(&self, off: usize, len: usize) -> &[u8] {
        debug_assert!(off + len <= self.len);
        std::slice::from_raw_parts(self.ptr.add(off), len)
    }

    /// Copy `bytes` to offset `off`; caller must have validated bounds.
    unsafe fn write_at(&self, off: usize, bytes: &[u8]) {
        debug_assert!(off + bytes.len() <= self.len);
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.ptr.add(off), bytes.len());
    }
}

impl Drop for ShmMap {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
    }
}

/// Orchestrator side of one worker's shared-memory result ring.
struct ShmHandle {
    map: ShmMap,
    path: PathBuf,
    slot_len: usize,
    slots: usize,
    /// The ring file is unlinked once the worker has provably mapped it
    /// (first result received after `Init`), so crashed orchestrators
    /// leave at most one stale file per live worker behind.
    unlinked: bool,
}

impl ShmHandle {
    fn unlink(&mut self) {
        if !self.unlinked {
            self.unlinked = true;
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl Drop for ShmHandle {
    fn drop(&mut self) {
        self.unlink();
    }
}

/// Create and map one result ring (`slots × slot_len`, sized to the
/// batching window); `None` degrades to pipe transport.
fn create_shm(slots: usize, slot_len: usize) -> Option<ShmHandle> {
    static SHM_SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "goat-shm-{}-{}",
        std::process::id(),
        SHM_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let file =
        std::fs::OpenOptions::new().read(true).write(true).create_new(true).open(&path).ok()?;
    let len = slots.checked_mul(slot_len)?;
    if file.set_len(len as u64).is_err() {
        let _ = std::fs::remove_file(&path);
        return None;
    }
    match ShmMap::map(&file, len, false) {
        Some(map) => Some(ShmHandle { map, path, slot_len, slots, unlinked: false }),
        None => {
            let _ = std::fs::remove_file(&path);
            None
        }
    }
}

/// Human name for the signals a worker plausibly dies from.
fn signal_name(sig: i32) -> &'static str {
    match sig {
        4 => "SIGILL",
        6 => "SIGABRT",
        7 => "SIGBUS",
        8 => "SIGFPE",
        9 => "SIGKILL",
        11 => "SIGSEGV",
        24 => "SIGXCPU",
        _ => "unknown",
    }
}

#[cfg(unix)]
fn status_signal(status: &ExitStatus) -> Option<i32> {
    std::os::unix::process::ExitStatusExt::signal(status)
}

#[cfg(not(unix))]
fn status_signal(_status: &ExitStatus) -> Option<i32> {
    None
}

/// A [`RunResult`] synthesized by the orchestrator when the worker
/// never produced one (death or protocol corruption). Carries the
/// neutral fingerprint seed so memoization never confuses it with a
/// real execution.
fn synth_result(outcome: RunOutcome) -> RunResult {
    RunResult {
        outcome,
        ect: None,
        steps: 0,
        vclock: goat_trace::VTime(0),
        goroutines: 0,
        yields_injected: 0,
        priority_changes: 0,
        alive_at_end: Vec::new(),
        schedule: goat_runtime::ReplayLog::default(),
        replay_diverged: false,
        sched: SchedCounters::default(),
        fingerprint: goat_trace::tracebuf::FP_SEED,
        panic_detail: None,
    }
}

fn infra(reason: impl Into<String>) -> RunResult {
    synth_result(RunOutcome::InfraFailure { reason: reason.into() })
}

fn write_frame_locked(out: &Arc<Mutex<io::Stdout>>, frame: &Frame) -> io::Result<()> {
    let mut out = out.lock().expect("worker stdout lock");
    write_frame(&mut *out, frame)
}

fn write_wire_locked(out: &Arc<Mutex<io::Stdout>>, frame: &WireFrame) -> io::Result<()> {
    let mut buf = Vec::with_capacity(24);
    wire::encode_frame_into(frame, &mut buf)?;
    let mut out = out.lock().expect("worker stdout lock");
    out.write_all(&buf)?;
    out.flush()
}

/// How an injected worker fault redirects the serve loop.
enum FaultFlow {
    /// No fault (or it already happened to someone else's seed).
    Proceed,
    /// A garbage frame was emitted instead of serving the run.
    SkipRun,
    /// The worker must exit with this code (non-fatal raised signal).
    Exit(i32),
}

/// Fire any `GOAT_FAULT=worker:…` fault keyed on this run's seed;
/// shared by both serve loops so fault semantics are encoding-agnostic.
fn worker_fault_flow(
    stdout: &Arc<Mutex<io::Stdout>>,
    muted: &AtomicBool,
    iter: u64,
    seed: u64,
) -> FaultFlow {
    match faultpoint::worker_fault(seed) {
        Some(WorkerFault::Kill(sig)) => {
            muted.store(true, Ordering::Relaxed);
            eprintln!(
                "goat-worker: injected fault: raising signal {sig} ({}) on iter {iter} seed {seed}",
                signal_name(sig),
            );
            sys::raise_signal(sig);
            // Only reached when `sig` was non-fatal (e.g. ignored).
            FaultFlow::Exit(70)
        }
        Some(WorkerFault::Wedge) => {
            muted.store(true, Ordering::Relaxed);
            eprintln!(
                "goat-worker: injected fault: wedging without ack on iter {iter} seed {seed}"
            );
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Some(WorkerFault::Garbage) => {
            eprintln!(
                "goat-worker: injected fault: emitting garbage frame on iter {iter} seed {seed}"
            );
            let mut out = stdout.lock().expect("worker stdout lock");
            // An impossible length prefix: decoded as a corrupt
            // stream, never as an allocation request — in either
            // encoding, since framing is shared.
            let _ = out.write_all(&[0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe, 0xef]);
            let _ = out.flush();
            drop(out);
            FaultFlow::SkipRun
        }
        None => FaultFlow::Proceed,
    }
}

/// Serve the worker side of the protocol on stdin/stdout until the
/// orchestrator closes the pipe; returns the process exit code.
///
/// `resolve` maps a program name from a `Run`/`Init` frame to the
/// program to execute (the CLI passes the goker kernel registry). The
/// worker jails itself with `setrlimit` before answering `Ready`,
/// streams `Heartbeat` frames from a side thread, and answers every
/// `Run` with `Ack` + `Result` (or `ResultShm`). The payload encoding
/// is chosen by [`IPC_ENV`], which the orchestrator sets when spawning.
/// Injected worker faults (`GOAT_FAULT=worker:…`) fire here, keyed on
/// the run's seed.
pub fn serve_worker(resolve: &dyn Fn(&str) -> Option<Arc<dyn Program>>) -> i32 {
    sys::apply_rlimits();
    let stdout = Arc::new(Mutex::new(io::stdout()));
    let current_iter = Arc::new(AtomicU64::new(0));
    // Set when an injected fault must silence the liveness beacon so
    // the orchestrator's no-heartbeat watchdog can be exercised.
    let muted = Arc::new(AtomicBool::new(false));
    let mode = IpcMode::from_env();
    let send_ready = match mode {
        IpcMode::Json => write_frame_locked(&stdout, &Frame::Ready),
        IpcMode::Bin => write_wire_locked(&stdout, &WireFrame::Ready),
    };
    if send_ready.is_err() {
        return 1;
    }
    {
        let stdout = Arc::clone(&stdout);
        let current_iter = Arc::clone(&current_iter);
        let muted = Arc::clone(&muted);
        let _ =
            std::thread::Builder::new().name("goat-worker-heartbeat".into()).spawn(move || loop {
                std::thread::sleep(Duration::from_millis(heartbeat_ms()));
                if muted.load(Ordering::Relaxed) {
                    continue;
                }
                let iter = current_iter.load(Ordering::Relaxed);
                let sent = match mode {
                    IpcMode::Json => write_frame_locked(&stdout, &Frame::Heartbeat { iter }),
                    IpcMode::Bin => write_wire_locked(&stdout, &WireFrame::Heartbeat { iter }),
                };
                if sent.is_err() {
                    return;
                }
            });
    }
    match mode {
        IpcMode::Json => serve_json(resolve, &stdout, &current_iter, &muted),
        IpcMode::Bin => serve_bin(resolve, &stdout, &current_iter, &muted),
    }
}

/// The JSON serve loop: self-contained `Run{cfg}` frames.
fn serve_json(
    resolve: &dyn Fn(&str) -> Option<Arc<dyn Program>>,
    stdout: &Arc<Mutex<io::Stdout>>,
    current_iter: &AtomicU64,
    muted: &AtomicBool,
) -> i32 {
    let mut stdin = io::stdin().lock();
    loop {
        let frame = match read_frame(&mut stdin) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => return 0,
            Err(e) => {
                eprintln!("goat-worker: protocol error on stdin: {e}");
                return 1;
            }
        };
        let Frame::Run { iter, program, cfg } = frame else {
            eprintln!("goat-worker: unexpected frame (expected Run)");
            return 1;
        };
        match worker_fault_flow(stdout, muted, iter, cfg.seed) {
            FaultFlow::Exit(code) => return code,
            FaultFlow::SkipRun => continue,
            FaultFlow::Proceed => {}
        }
        current_iter.store(iter, Ordering::Relaxed);
        if write_frame_locked(stdout, &Frame::Ack { iter }).is_err() {
            return 1;
        }
        let result = match resolve(&program) {
            Some(p) => goat_runtime::Runtime::run(cfg, crate::runner::Goat::instrumented(p)),
            None => infra(format!("worker: unknown program {program:?}")),
        };
        if write_frame_locked(stdout, &Frame::Result { iter, result: Box::new(result) }).is_err() {
            return 1;
        }
    }
}

/// Worker side of the shared-memory result ring.
struct WorkerShm {
    map: ShmMap,
    slot_len: usize,
    slots: usize,
    /// Worker-local slot rotation; the orchestrator learns each slot
    /// from the `ResultShm` frame, so the counters need not be shared.
    next: u64,
}

/// The binary serve loop: per-checkout `Init`, per-run deltas, shm or
/// pipe results.
fn serve_bin(
    resolve: &dyn Fn(&str) -> Option<Arc<dyn Program>>,
    stdout: &Arc<Mutex<io::Stdout>>,
    current_iter: &AtomicU64,
    muted: &AtomicBool,
) -> i32 {
    let mut stdin = io::stdin().lock();
    let mut program: Option<String> = None;
    let mut base: Option<Config> = None;
    let mut shm: Option<WorkerShm> = None;
    // Encoded-result scratch, reused across runs.
    let mut scratch: Vec<u8> = Vec::new();
    loop {
        let payload = match read_payload(&mut stdin) {
            Ok(p) => p,
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => return 0,
            Err(e) => {
                eprintln!("goat-worker: protocol error on stdin: {e}");
                return 1;
            }
        };
        let frame = match wire::decode_frame(&payload) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("goat-worker: protocol error on stdin: {e}");
                return 1;
            }
        };
        match frame {
            WireFrame::Init { program: p, shm_path, slot_len, slots, base: b } => {
                program = Some(p);
                base = Some(*b);
                shm = if shm_path.is_empty() {
                    None
                } else {
                    std::fs::OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(&shm_path)
                        .ok()
                        .and_then(|f| {
                            let len = (slot_len as usize).checked_mul(slots as usize)?;
                            ShmMap::map(&f, len, true)
                        })
                        .map(|map| WorkerShm {
                            map,
                            slot_len: slot_len as usize,
                            slots: slots as usize,
                            next: 0,
                        })
                    // Mapping failure falls back to pipe Result frames;
                    // the orchestrator accepts both.
                };
            }
            WireFrame::Run { iter, seed, delay_bound, yield_prob, strategy } => {
                let (Some(program), Some(base)) = (&program, &base) else {
                    eprintln!("goat-worker: Run frame before Init");
                    return 1;
                };
                match worker_fault_flow(stdout, muted, iter, seed) {
                    FaultFlow::Exit(code) => return code,
                    FaultFlow::SkipRun => continue,
                    FaultFlow::Proceed => {}
                }
                current_iter.store(iter, Ordering::Relaxed);
                if write_wire_locked(stdout, &WireFrame::Ack { iter }).is_err() {
                    return 1;
                }
                let mut cfg = base.clone();
                cfg.seed = seed;
                cfg.delay_bound = delay_bound;
                cfg.yield_prob = yield_prob;
                cfg.strategy = strategy;
                let result = match resolve(program) {
                    Some(p) => {
                        goat_runtime::Runtime::run(cfg, crate::runner::Goat::instrumented(p))
                    }
                    None => infra(format!("worker: unknown program {program:?}")),
                };
                if shm.is_some() {
                    scratch.clear();
                    wire::encode_result(&result, &mut scratch);
                }
                let sent = match &mut shm {
                    Some(ring) if scratch.len() <= ring.slot_len && !scratch.is_empty() => {
                        let slot = ring.next % ring.slots as u64;
                        ring.next += 1;
                        // The slot write happens strictly before the
                        // ResultShm frame crosses the pipe; the pipe is
                        // the cross-process ordering point.
                        unsafe {
                            ring.map.write_at(slot as usize * ring.slot_len, &scratch);
                        }
                        write_wire_locked(
                            stdout,
                            &WireFrame::ResultShm { iter, slot, len: scratch.len() as u64 },
                        )
                    }
                    _ => write_wire_locked(
                        stdout,
                        &WireFrame::Result { iter, result: Box::new(result) },
                    ),
                };
                if sent.is_err() {
                    return 1;
                }
            }
            other => {
                eprintln!("goat-worker: unexpected frame {other:?} (expected Init/Run)");
                return 1;
            }
        }
    }
}

/// What the reader thread saw on a worker's stdout (already decoded, so
/// decode time lands in the reader thread, off the orchestrator's
/// merge path).
enum Event {
    /// The startup handshake.
    Ready,
    /// A `Run` frame was received by the worker.
    Ack(u64),
    /// Liveness beacon.
    Heartbeat,
    /// A complete result on the pipe.
    Result {
        /// Iteration the result belongs to.
        iter: u64,
        /// The decoded result (boxed: dwarfs the other variants).
        result: Box<RunResult>,
    },
    /// A result reference into the shared-memory ring.
    ResultShm {
        /// Iteration the result belongs to.
        iter: u64,
        /// Ring slot holding the encoded result.
        slot: u64,
        /// Encoded byte length within the slot.
        len: u64,
    },
    /// A well-formed frame that makes no sense from a worker.
    Unexpected(String),
    /// The stream is corrupt (oversized/undecodable frame).
    Corrupt(String),
    /// The worker closed its stdout (it is dead or dying).
    Eof,
}

/// Orchestrator-side handle on one live worker subprocess.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    events: mpsc::Receiver<Event>,
    stderr_tail: Arc<Mutex<VecDeque<String>>>,
    /// Runs served so far (reuse accounting).
    runs: u64,
    /// Hash of the `Init` state (program, base config, fault plan, shm
    /// geometry) the worker currently holds; `None` until the first
    /// `Init` is sent. A mismatch forces a fresh `Init`, so stale
    /// worker state can never leak across campaigns.
    init_hash: Option<u64>,
    /// The worker's shared-memory result ring, when enabled.
    shm: Option<ShmHandle>,
}

/// Pool of idle workers plus the set of commands that failed to spawn
/// or handshake; broken commands fall back in-process forever (and are
/// reported once).
///
/// Idle workers are keyed by command, IPC mode, shm geometry, *and* the
/// fault plan that was active at spawn time (the plan travels in the
/// worker's environment), so a worker spawned under one data-plane or
/// `GOAT_FAULT` configuration is never reused by a campaign running
/// under another.
#[derive(Default)]
struct PoolState {
    idle: HashMap<String, Vec<Worker>>,
    broken: HashSet<String>,
}

fn pool_key(cmd: &str, spec: &IpcSpec) -> String {
    let geom = match (spec.mode, spec.shm) {
        (IpcMode::Bin, true) => format!("shm:{}x{}", shm_slot_len(), spec.batch.max(1)),
        _ => "pipe".to_string(),
    };
    let fault = faultpoint::current_spec().unwrap_or_default();
    format!("{cmd}\u{1f}{}\u{1f}{geom}\u{1f}{fault}", spec.mode)
}

fn shm_slot_len() -> usize {
    max_frame().min(SHM_SLOT_MAX)
}

fn pool() -> &'static Mutex<PoolState> {
    static POOL: OnceLock<Mutex<PoolState>> = OnceLock::new();
    POOL.get_or_init(Mutex::default)
}

fn mark_broken(cmd: &str, err: &str) {
    let mut st = pool().lock().expect("worker pool lock");
    if st.broken.insert(cmd.to_string()) {
        eprintln!(
            "goat: process isolation unavailable for worker command {cmd:?} ({err}); \
             falling back to in-process runs"
        );
    }
}

/// Spawn one worker and complete the `Ready` handshake.
fn spawn_worker(cmd: &str, spec: &IpcSpec) -> Result<Worker, String> {
    let mut command = Command::new(cmd);
    command
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        // The payload encoding is the orchestrator's choice.
        .env(IPC_ENV, spec.mode.to_string())
        // Campaign-level concerns stay in the orchestrator: a worker
        // must not write checkpoints or telemetry, must never isolate
        // recursively, and takes its shm geometry from `Init`, not env.
        .env_remove("GOAT_TELEMETRY")
        .env_remove("GOAT_CHECKPOINT")
        .env_remove(ISOLATE_ENV)
        .env_remove(IPC_SHM_ENV)
        .env_remove(IPC_BATCH_ENV);
    // Scoped fault plans only exist in this process; propagate the
    // active spec so `faultpoint::scoped` test plans reach the worker.
    match faultpoint::current_spec() {
        Some(spec) => {
            command.env("GOAT_FAULT", spec);
        }
        None => {
            command.env_remove("GOAT_FAULT");
        }
    }
    let mut child = command.spawn().map_err(|e| format!("spawn {cmd:?}: {e}"))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = child.stdout.take().expect("piped stdout");
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = mpsc::channel();
    let mode = spec.mode;
    let _ = std::thread::Builder::new().name("goat-worker-reader".into()).spawn(move || loop {
        let payload = match read_payload(&mut stdout) {
            Ok(p) => p,
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                let _ = tx.send(Event::Eof);
                return;
            }
            Err(e) => {
                let _ = tx.send(Event::Corrupt(e.to_string()));
                return;
            }
        };
        goat_metrics::global().counter("isolate.ipc_bytes_rx").add(4 + payload.len() as u64);
        let decode_started = Instant::now();
        let event = match mode {
            IpcMode::Json => match parse_json_frame(&payload) {
                Ok(Frame::Ready) => Event::Ready,
                Ok(Frame::Ack { iter }) => Event::Ack(iter),
                Ok(Frame::Heartbeat { .. }) => Event::Heartbeat,
                Ok(Frame::Result { iter, result }) => {
                    goat_metrics::global()
                        .histogram("isolate.ipc_deser_ns")
                        .record(decode_started.elapsed().as_nanos() as u64);
                    Event::Result { iter, result }
                }
                Ok(f @ Frame::Run { .. }) => Event::Unexpected(format!("{f:?}")),
                Err(e) => {
                    let _ = tx.send(Event::Corrupt(e.to_string()));
                    return;
                }
            },
            IpcMode::Bin => match wire::decode_frame(&payload) {
                Ok(WireFrame::Ready) => Event::Ready,
                Ok(WireFrame::Ack { iter }) => Event::Ack(iter),
                Ok(WireFrame::Heartbeat { .. }) => Event::Heartbeat,
                Ok(WireFrame::Result { iter, result }) => {
                    goat_metrics::global()
                        .histogram("isolate.ipc_deser_ns")
                        .record(decode_started.elapsed().as_nanos() as u64);
                    Event::Result { iter, result }
                }
                Ok(WireFrame::ResultShm { iter, slot, len }) => {
                    Event::ResultShm { iter, slot, len }
                }
                Ok(f) => Event::Unexpected(format!("{f:?}")),
                Err(e) => {
                    let _ = tx.send(Event::Corrupt(e.to_string()));
                    return;
                }
            },
        };
        if tx.send(event).is_err() {
            return;
        }
    });
    let stderr_tail = Arc::new(Mutex::new(VecDeque::new()));
    {
        let stderr_tail = Arc::clone(&stderr_tail);
        let _ = std::thread::Builder::new().name("goat-worker-stderr".into()).spawn(move || {
            for line in io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { return };
                let mut tail = stderr_tail.lock().expect("stderr tail lock");
                if tail.len() >= STDERR_TAIL_LINES {
                    tail.pop_front();
                }
                tail.push_back(line);
            }
        });
    }
    match rx.recv_timeout(Duration::from_millis(spawn_grace_ms())) {
        Ok(Event::Ready) => {}
        other => {
            let _ = child.kill();
            let _ = child.wait();
            let what = match other {
                Ok(Event::Corrupt(e)) => format!("sent a corrupt handshake: {e}"),
                Ok(Event::Eof) => "exited before completing the Ready handshake".to_string(),
                Ok(_) => "answered with a non-Ready frame".to_string(),
                Err(_) => "never completed the Ready handshake".to_string(),
            };
            return Err(what);
        }
    }
    let shm = match (spec.mode, spec.shm) {
        (IpcMode::Bin, true) => create_shm(spec.batch.max(1), shm_slot_len()),
        _ => None,
    };
    goat_metrics::global().counter("isolate.workers_spawned").inc();
    Ok(Worker { child, stdin, events: rx, stderr_tail, runs: 0, init_hash: None, shm })
}

/// SIGKILL a misbehaving worker and reap it.
fn kill_worker(worker: &mut Worker) {
    let _ = worker.child.kill();
    let _ = worker.child.wait();
    goat_metrics::global().counter("isolate.workers_killed").inc();
}

/// Reap a worker that died on its own and collect the post-mortem.
fn autopsy(
    worker: &mut Worker,
    last_ack_iter: Option<u64>,
    no_heartbeat: Option<Duration>,
) -> CrashForensics {
    let status = worker.child.wait().ok();
    // Give the stderr drain thread a beat to pull the final lines out
    // of the (now closed) pipe before snapshotting the tail.
    std::thread::sleep(Duration::from_millis(50));
    let stderr_tail = {
        let tail = worker.stderr_tail.lock().expect("stderr tail lock");
        tail.iter().cloned().collect::<Vec<_>>().join("\n")
    };
    let signal = status.as_ref().and_then(status_signal);
    let exit_code = status.as_ref().and_then(ExitStatus::code);
    let summary = if let Some(grace) = no_heartbeat {
        format!("no heartbeat within {} ms; killed", grace.as_millis())
    } else if let Some(sig) = signal {
        format!("killed by signal {sig} ({})", signal_name(sig))
    } else if let Some(code) = exit_code {
        format!("exited with code {code}")
    } else {
        "died with unknown status".to_string()
    };
    CrashForensics { signal, exit_code, stderr_tail, last_ack_iter, summary }
}

/// Take an idle pooled worker for `cmd`, or spawn a fresh one. `None`
/// means the command is (now) broken and the caller must fall back.
fn checkout(cmd: &str, spec: &IpcSpec) -> Option<Worker> {
    let key = pool_key(cmd, spec);
    loop {
        let mut st = pool().lock().expect("worker pool lock");
        if st.broken.contains(cmd) {
            return None;
        }
        let Some(mut worker) = st.idle.get_mut(&key).and_then(Vec::pop) else {
            drop(st);
            return match spawn_worker(cmd, spec) {
                Ok(w) => Some(w),
                Err(e) => {
                    mark_broken(cmd, &e);
                    None
                }
            };
        };
        drop(st);
        // Drain queued idle heartbeats; Eof/Corrupt/protocol junk in
        // the backlog (or an exited child) means the worker died or
        // went insane while pooled.
        let mut dead = false;
        loop {
            match worker.events.try_recv() {
                Ok(Event::Eof | Event::Corrupt(_) | Event::Unexpected(_)) => {
                    dead = true;
                    break;
                }
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        if dead || worker.child.try_wait().map(|s| s.is_some()).unwrap_or(true) {
            let _ = worker.child.wait();
            goat_metrics::global().counter("isolate.workers_died").inc();
            continue;
        }
        goat_metrics::global().counter("isolate.workers_reused").inc();
        return Some(worker);
    }
}

/// Return a healthy worker to the idle pool.
fn checkin(cmd: &str, spec: &IpcSpec, worker: Worker) {
    let mut st = pool().lock().expect("worker pool lock");
    st.idle.entry(pool_key(cmd, spec)).or_default().push(worker);
}

/// Kill and reap every idle pooled worker, returning how many were
/// drained (counted in `isolate.workers_drained`).
///
/// Campaign teardown: a lone `-target <kernel>` invocation drains on
/// exit so no sandbox subprocesses outlive the run, while the suite
/// orchestrator keeps the pool warm across kernels (checkouts re-`Init`
/// per campaign, so cross-kernel reuse — counted in
/// `isolate.workers_reused` — is always sound) and drains exactly once
/// at suite end. In-flight (checked-out) workers are untouched: they
/// return via [`checkin`] and are collected by the next drain.
pub fn drain_idle_workers() -> usize {
    let workers: Vec<Worker> = {
        let mut st = pool().lock().expect("worker pool lock");
        st.idle.drain().flat_map(|(_, v)| v).collect()
    };
    let mut drained = 0usize;
    for mut worker in workers {
        let _ = worker.child.kill();
        let _ = worker.child.wait();
        drained += 1;
    }
    if drained > 0 {
        goat_metrics::global().counter("isolate.workers_drained").add(drained as u64);
    }
    drained
}

/// The campaign-constant part of a run's [`Config`]: everything the
/// per-run `Run` delta does not override, with the delta fields zeroed
/// so equal bases hash equal regardless of which run they came from.
fn canonical_base(cfg: &Config) -> Config {
    let mut base = cfg.clone();
    base.seed = 0;
    base.delay_bound = 0;
    base.yield_prob = 0.0;
    base.strategy = StrategyKind::Native;
    base
}

/// Hash the full `Init` state for a run: program, canonical base
/// config, active fault plan, and shm geometry. A checked-out worker
/// whose cached hash differs gets a fresh `Init` frame before the next
/// `Run`, so configuration can never leak across campaigns.
fn init_hash(program: &str, base_bytes: &[u8], worker: &Worker) -> u64 {
    let mut key = Vec::with_capacity(base_bytes.len() + program.len() + 64);
    key.extend_from_slice(program.as_bytes());
    key.push(0x1f);
    key.extend_from_slice(base_bytes);
    key.push(0x1f);
    if let Some(spec) = faultpoint::current_spec() {
        key.extend_from_slice(spec.as_bytes());
    }
    key.push(0x1f);
    if let Some(shm) = &worker.shm {
        key.extend_from_slice(format!("{}x{}", shm.slot_len, shm.slots).as_bytes());
    }
    wire::fnv1a64(&key)
}

/// Encode the full batch into one write buffer, prepending `Init` when
/// the worker's cached state is stale. Returns the buffer and the init
/// hash the worker will hold after the write lands.
fn encode_batch(
    worker: &Worker,
    program: &str,
    runs: &[(u64, Config)],
    spec: &IpcSpec,
) -> io::Result<(Vec<u8>, Option<u64>)> {
    let metrics = goat_metrics::global();
    let mut buf = Vec::new();
    let mut held = worker.init_hash;
    for (iter, cfg) in runs {
        let encode_started = Instant::now();
        match spec.mode {
            IpcMode::Json => {
                let frame =
                    Frame::Run { iter: *iter, program: program.to_string(), cfg: cfg.clone() };
                buf.extend_from_slice(&encode_frame(&frame)?);
            }
            IpcMode::Bin => {
                let base = canonical_base(cfg);
                let mut base_bytes = Vec::with_capacity(64);
                wire::encode_config(&base, &mut base_bytes);
                let h = init_hash(program, &base_bytes, worker);
                if held != Some(h) {
                    held = Some(h);
                    let (shm_path, slot_len, slots) = match &worker.shm {
                        Some(shm) => (
                            shm.path.to_string_lossy().into_owned(),
                            shm.slot_len as u64,
                            shm.slots as u64,
                        ),
                        None => (String::new(), 0, 0),
                    };
                    wire::encode_frame_into(
                        &WireFrame::Init {
                            program: program.to_string(),
                            shm_path,
                            slot_len,
                            slots,
                            base: Box::new(base),
                        },
                        &mut buf,
                    )?;
                }
                wire::encode_frame_into(
                    &WireFrame::Run {
                        iter: *iter,
                        seed: cfg.seed,
                        delay_bound: cfg.delay_bound,
                        yield_prob: cfg.yield_prob,
                        strategy: cfg.strategy,
                    },
                    &mut buf,
                )?;
            }
        }
        metrics.histogram("isolate.ipc_ser_ns").record(encode_started.elapsed().as_nanos() as u64);
    }
    Ok((buf, held))
}

/// Execute a batch of iterations inside one sandboxed worker, returning
/// one result per run in order.
///
/// Returns `None` when isolation is unavailable for this worker command
/// (spawn or handshake failure) and the caller should run in-process —
/// a sound fallback because both modes produce byte-identical results.
/// Otherwise always returns exactly `runs.len()` results: the worker's
/// own on success; a synthesized [`RunOutcome::Crashed`] for the run in
/// flight when the worker died; retryable
/// [`RunOutcome::InfraFailure`]s for runs the worker never reached (or
/// after stream corruption / protocol violations).
pub(crate) fn run_batch(
    cmd: Option<&str>,
    program: &str,
    runs: &[(u64, Config)],
    spec: &IpcSpec,
) -> Option<Vec<RunResult>> {
    let cmd = match cmd {
        Some(c) => c.to_string(),
        None => std::env::current_exe().ok()?.to_str()?.to_string(),
    };
    let metrics = goat_metrics::global();
    let mut worker = checkout(&cmd, spec)?;
    let (mut buf, mut held) = match encode_batch(&worker, program, runs, spec) {
        Ok(v) => v,
        Err(e) => {
            checkin(&cmd, spec, worker);
            return Some(vec![infra(format!("encode run frame: {e}")); runs.len()]);
        }
    };
    let mut mark = Instant::now();
    if worker.stdin.write_all(&buf).and_then(|()| worker.stdin.flush()).is_err() {
        // A pooled worker can die between checkout and the first write;
        // one fresh respawn distinguishes that from a broken command.
        kill_worker(&mut worker);
        worker = match spawn_worker(&cmd, spec) {
            Ok(w) => w,
            Err(e) => {
                mark_broken(&cmd, &e);
                return None;
            }
        };
        // Fresh worker, fresh shm handle: re-encode so it gets `Init`.
        (buf, held) = match encode_batch(&worker, program, runs, spec) {
            Ok(v) => v,
            Err(e) => {
                checkin(&cmd, spec, worker);
                return Some(vec![infra(format!("encode run frame: {e}")); runs.len()]);
            }
        };
        mark = Instant::now();
        if worker.stdin.write_all(&buf).and_then(|()| worker.stdin.flush()).is_err() {
            kill_worker(&mut worker);
            return Some(vec![infra("worker rejected the run frames twice"); runs.len()]);
        }
    }
    worker.init_hash = held;
    metrics.counter("isolate.ipc_bytes_tx").add(buf.len() as u64);
    drop(buf);
    let grace = Duration::from_millis(grace_ms());
    let mut out: Vec<RunResult> = Vec::with_capacity(runs.len());
    let mut last_ack = None;
    // Fill every not-yet-started run after a mid-batch failure; the
    // supervision layer retries InfraFailures one by one.
    macro_rules! fill_infra {
        ($out:ident, $reason:expr) => {{
            let reason = $reason;
            while $out.len() < runs.len() {
                $out.push(infra(reason.clone()));
            }
            return Some($out);
        }};
    }
    while out.len() < runs.len() {
        let expect = runs[out.len()].0;
        match worker.events.recv_timeout(grace) {
            Ok(Event::Ack(i)) if i == expect => {
                last_ack = Some(i);
                // Time from the batch write (first run) or the previous
                // result (later runs) to this ack: pure pipe + frame
                // handling latency, free of the runs' own compute.
                metrics
                    .histogram("isolate.ipc_transport_ns")
                    .record(mark.elapsed().as_nanos() as u64);
            }
            // Stale acks/heartbeats from a reused worker count as
            // liveness but carry no other information.
            Ok(Event::Ack(_) | Event::Heartbeat) => {}
            Ok(Event::Result { iter: i, result }) if i == expect => {
                worker.runs += 1;
                metrics.counter("isolate.runs").inc();
                out.push(*result);
                if let Some(shm) = &mut worker.shm {
                    // The worker has processed `Init` (it answered a
                    // run), so it holds the mapping: safe to unlink.
                    shm.unlink();
                }
                mark = Instant::now();
            }
            Ok(Event::ResultShm { iter: i, slot, len }) if i == expect => {
                let Some(shm) = &mut worker.shm else {
                    kill_worker(&mut worker);
                    fill_infra!(
                        out,
                        "worker protocol violation: ResultShm without a ring".to_string()
                    );
                };
                if slot as usize >= shm.slots || len as usize > shm.slot_len {
                    kill_worker(&mut worker);
                    fill_infra!(
                        out,
                        format!(
                            "worker protocol violation: shm slot {slot}/len {len} out of range"
                        )
                    );
                }
                let decode_started = Instant::now();
                // Zero-copy: decode straight out of the mapping. The
                // pipe frame orders the worker's slot write before this
                // read.
                let decoded = {
                    let bytes =
                        unsafe { shm.map.slice(slot as usize * shm.slot_len, len as usize) };
                    wire::decode_result(&mut goat_trace::wire::Reader::new(bytes))
                };
                match decoded {
                    Ok(result) => {
                        metrics
                            .histogram("isolate.ipc_deser_ns")
                            .record(decode_started.elapsed().as_nanos() as u64);
                        worker.runs += 1;
                        metrics.counter("isolate.runs").inc();
                        out.push(result);
                        shm.unlink();
                        mark = Instant::now();
                    }
                    Err(e) => {
                        kill_worker(&mut worker);
                        fill_infra!(out, format!("worker sent a corrupt shm result: {e}"));
                    }
                }
            }
            Ok(Event::Result { iter: i, .. } | Event::ResultShm { iter: i, .. }) => {
                kill_worker(&mut worker);
                fill_infra!(
                    out,
                    format!("worker protocol violation: result for iter {i}, expected {expect}")
                );
            }
            Ok(Event::Ready) => {
                kill_worker(&mut worker);
                fill_infra!(out, "worker protocol violation: unexpected Ready".to_string());
            }
            Ok(Event::Unexpected(f)) => {
                kill_worker(&mut worker);
                fill_infra!(out, format!("worker protocol violation: unexpected {f}"));
            }
            Ok(Event::Corrupt(e)) => {
                kill_worker(&mut worker);
                fill_infra!(out, format!("worker sent a corrupt frame: {e}"));
            }
            Ok(Event::Eof) => {
                let forensics = autopsy(&mut worker, last_ack, None);
                goat_metrics::global().counter("isolate.workers_died").inc();
                out.push(synth_result(RunOutcome::Crashed { forensics }));
                fill_infra!(out, "worker died mid-batch before reaching this run".to_string());
            }
            Err(RecvTimeoutError::Timeout) => {
                kill_worker(&mut worker);
                let forensics = autopsy(&mut worker, last_ack, Some(grace));
                out.push(synth_result(RunOutcome::Crashed { forensics }));
                fill_infra!(out, "worker died mid-batch before reaching this run".to_string());
            }
            Err(RecvTimeoutError::Disconnected) => {
                kill_worker(&mut worker);
                let forensics = autopsy(&mut worker, last_ack, None);
                out.push(synth_result(RunOutcome::Crashed { forensics }));
                fill_infra!(out, "worker died mid-batch before reaching this run".to_string());
            }
        }
    }
    checkin(&cmd, spec, worker);
    Some(out)
}

/// Execute one iteration inside a sandboxed worker (a batch of one).
pub(crate) fn run_in_worker(
    cmd: Option<&str>,
    program: &str,
    iter: u64,
    cfg: &Config,
    spec: &IpcSpec,
) -> Option<RunResult> {
    let runs = [(iter, cfg.clone())];
    run_batch(cmd, program, &runs, spec).map(|mut v| v.pop().expect("one result per run"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolate_mode_parses_and_displays() {
        assert_eq!(IsolateMode::parse("off"), Some(IsolateMode::Off));
        assert_eq!(IsolateMode::parse("0"), Some(IsolateMode::Off));
        assert_eq!(IsolateMode::parse(""), Some(IsolateMode::Off));
        assert_eq!(IsolateMode::parse("proc"), Some(IsolateMode::Proc));
        assert_eq!(IsolateMode::parse("PROCESS"), Some(IsolateMode::Proc));
        assert_eq!(IsolateMode::parse("1"), Some(IsolateMode::Proc));
        assert_eq!(IsolateMode::parse("yes"), None);
        assert_eq!(IsolateMode::Off.to_string(), "off");
        assert_eq!(IsolateMode::Proc.to_string(), "proc");
        assert_eq!(IsolateMode::default(), IsolateMode::Off);
    }

    #[test]
    fn ipc_mode_parses_and_displays() {
        assert_eq!(IpcMode::parse("bin"), Some(IpcMode::Bin));
        assert_eq!(IpcMode::parse("BINARY"), Some(IpcMode::Bin));
        assert_eq!(IpcMode::parse(""), Some(IpcMode::Bin));
        assert_eq!(IpcMode::parse("json"), Some(IpcMode::Json));
        assert_eq!(IpcMode::parse("xml"), None);
        assert_eq!(IpcMode::Bin.to_string(), "bin");
        assert_eq!(IpcMode::Json.to_string(), "json");
        assert_eq!(IpcMode::default(), IpcMode::Bin);
    }

    #[test]
    fn run_frame_roundtrips_through_the_codec() {
        let cfg = Config::new(42).with_delay_bound(3);
        let frame = Frame::Run { iter: 7, program: "etcd6708".to_string(), cfg };
        let bytes = encode_frame(&frame).expect("encode");
        let back = read_frame(&mut &bytes[..]).expect("decode");
        match back {
            Frame::Run { iter, program, cfg } => {
                assert_eq!(iter, 7);
                assert_eq!(program, "etcd6708");
                assert_eq!(cfg.seed, 42);
                assert_eq!(cfg.delay_bound, 3);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn result_frame_roundtrips_with_forensics() {
        let result = synth_result(RunOutcome::Crashed {
            forensics: CrashForensics {
                signal: Some(6),
                exit_code: None,
                stderr_tail: "abort: boom".to_string(),
                last_ack_iter: Some(3),
                summary: "killed by signal 6 (SIGABRT)".to_string(),
            },
        });
        let bytes =
            encode_frame(&Frame::Result { iter: 3, result: Box::new(result) }).expect("encode");
        let back = read_frame(&mut &bytes[..]).expect("decode");
        let Frame::Result { iter, result } = back else { panic!("wrong frame") };
        assert_eq!(iter, 3);
        let RunOutcome::Crashed { forensics } = result.outcome else {
            panic!("wrong outcome: {}", result.outcome)
        };
        assert_eq!(forensics.signal, Some(6));
        assert_eq!(forensics.last_ack_iter, Some(3));
        assert_eq!(result.fingerprint, goat_trace::tracebuf::FP_SEED);
        assert!(result.ect.is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_not_allocated() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(b"\xde\xad\xbe\xef");
        let err = read_frame(&mut &bytes[..]).expect_err("must reject");
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn undercap_length_lie_cannot_force_a_big_allocation() {
        // A corrupt prefix claiming 32 MiB (under the cap) followed by
        // 4 bytes: the incremental reader must fail with UnexpectedEof
        // having allocated at most the read chunk.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(32u32 << 20).to_le_bytes());
        bytes.extend_from_slice(b"\xde\xad\xbe\xef");
        let err = read_payload(&mut &bytes[..]).expect_err("must fail");
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_cap_is_env_configurable() {
        // Cannot mutate the environment safely in-process (other tests
        // read it concurrently); assert the parsing contract instead.
        assert_eq!(max_frame(), 64 << 20);
        assert_eq!((env_u64("GOAT_NOT_SET_EVER", 64).clamp(1, 4096) as usize) << 20, 64 << 20);
    }

    #[test]
    fn truncated_frame_reads_as_eof() {
        let full = encode_frame(&Frame::Ready).expect("encode");
        let err = read_frame(&mut &full[..full.len() - 1]).expect_err("must fail");
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
        assert!(read_frame(&mut &[][..]).is_err());
    }

    #[test]
    fn unparseable_frame_is_invalid_data() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"]!{[");
        let err = read_frame(&mut &bytes[..]).expect_err("must fail");
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn signal_names_cover_the_common_deaths() {
        assert_eq!(signal_name(6), "SIGABRT");
        assert_eq!(signal_name(9), "SIGKILL");
        assert_eq!(signal_name(11), "SIGSEGV");
        assert_eq!(signal_name(24), "SIGXCPU");
        assert_eq!(signal_name(63), "unknown");
    }

    #[test]
    fn pool_keys_separate_data_planes() {
        let json = IpcSpec { mode: IpcMode::Json, shm: false, batch: 1 };
        let bin = IpcSpec { mode: IpcMode::Bin, shm: false, batch: 1 };
        let bin_shm = IpcSpec { mode: IpcMode::Bin, shm: true, batch: 4 };
        let keys = [pool_key("goat", &json), pool_key("goat", &bin), pool_key("goat", &bin_shm)];
        assert_eq!(keys.iter().collect::<std::collections::HashSet<_>>().len(), 3);
        // Scoped fault plans split the key further: a worker spawned
        // under one plan is never handed to a campaign under another.
        let g = faultpoint::scoped("worker:garbage-frame");
        assert_ne!(pool_key("goat", &bin), keys[1]);
        drop(g);
        assert_eq!(pool_key("goat", &bin), keys[1]);
    }

    #[test]
    fn init_hash_tracks_fault_plan_and_base() {
        let base_a = {
            let mut b = Vec::new();
            wire::encode_config(&canonical_base(&Config::new(1)), &mut b);
            b
        };
        let base_b = {
            let mut b = Vec::new();
            wire::encode_config(&canonical_base(&Config::new(2).with_max_steps(7)), &mut b);
            b
        };
        // Seeds are canonicalized away; real base changes are not.
        assert_eq!(base_a, {
            let mut b = Vec::new();
            wire::encode_config(&canonical_base(&Config::new(99)), &mut b);
            b
        });
        assert_ne!(base_a, base_b);
        // Fault-plan changes alter the hash even for an identical base.
        let h_plain = wire::fnv1a64(&base_a);
        let g = faultpoint::scoped("worker:kill:9@seed=5");
        // init_hash needs a Worker; hash the same key material directly.
        let mut key = base_a.clone();
        key.extend_from_slice(faultpoint::current_spec().unwrap().as_bytes());
        assert_ne!(wire::fnv1a64(&key), h_plain);
        drop(g);
    }

    #[test]
    fn canonical_base_zeroes_exactly_the_run_delta() {
        let cfg = Config::new(77).with_delay_bound(4).with_yield_prob(0.9).with_max_steps(1234);
        let base = canonical_base(&cfg);
        assert_eq!(base.seed, 0);
        assert_eq!(base.delay_bound, 0);
        assert_eq!(base.yield_prob, 0.0);
        assert_eq!(base.strategy, StrategyKind::Native);
        // Everything else survives.
        assert_eq!(base.max_steps, 1234);
        assert_eq!(base.trace, cfg.trace);
        assert_eq!(base.pool, cfg.pool);
    }

    #[cfg(unix)]
    #[test]
    fn shm_ring_roundtrips_bytes_across_mappings() {
        let Some(mut handle) = create_shm(2, 4096) else {
            // mmap unavailable in this sandbox — the pipe fallback path
            // is what ships, so this is not a failure.
            return;
        };
        assert!(handle.path.exists());
        // Simulate the worker side: a second writable mapping of the
        // same file.
        let file = std::fs::OpenOptions::new().read(true).write(true).open(&handle.path).unwrap();
        let wmap = ShmMap::map(&file, 2 * 4096, true).expect("writable mapping");
        let msg = b"zero-copy result payload";
        unsafe {
            wmap.write_at(4096, msg);
        }
        let back = unsafe { handle.map.slice(4096, msg.len()) };
        assert_eq!(back, msg);
        handle.unlink();
        assert!(!handle.path.exists());
    }
}
