//! Coverage-guided arm selection: a deterministic epsilon-greedy bandit
//! over a small grid of (strategy, yield_prob, delay_bound) exploration
//! configurations.
//!
//! The campaign runner computes a coverage delta (newly covered
//! requirement bits vs. the campaign-global [`goat_model::CoverageSet`])
//! for every merged iteration; guided mode feeds that delta back as the
//! reward of the *arm* (exploration configuration) the iteration ran
//! under, and picks each iteration's arm epsilon-greedily over the
//! rewards seen so far.
//!
//! ## Determinism, including under the parallel executor
//!
//! Guided campaigns must stay byte-identical run-to-run *and*
//! sequential-vs-parallel. Two design rules make the selection a pure
//! function of `(campaign seed, iteration index, merged rewards)`:
//!
//! 1. **Stateless exploration randomness.** The epsilon draw and the
//!    explore-arm draw for iteration `i` come from a throwaway RNG
//!    seeded from `hash(seed0, i)` — no RNG state threads between
//!    iterations, so selection order doesn't matter and nothing needs
//!    persisting for checkpoint/resume.
//! 2. **Fixed feedback lag.** The greedy statistics for iteration `i`
//!    use exactly the rewards of iterations `0 ..= i − LAG` — never
//!    "whatever has merged by now". The parallel executor caps its
//!    claim window at [`GUIDED_LAG`], which guarantees those rewards
//!    are merged before `i` can be claimed; a worker that is *further*
//!    ahead of the merge point simply ignores the extra rewards, so
//!    every executor computes the identical arm for every iteration.
//!
//! Re-deriving instead of remembering: because selection is pure, the
//! merge loop recomputes `select(i)` when attributing iteration `i`'s
//! reward rather than plumbing the worker's choice through the result
//! channel — the two calls agree by construction.

use goat_runtime::StrategyKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Feedback lag `L`: the greedy statistics for iteration `i` see the
/// rewards of iterations `0 ..= i − L` only. Also the parallel claim
/// window in guided mode, which is what makes the lag a guarantee
/// rather than a race.
pub const GUIDED_LAG: usize = 8;

/// Exploration rate of the epsilon-greedy selection.
pub const GUIDED_EPSILON: f64 = 0.2;

/// One exploration configuration the bandit can schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arm {
    /// Scheduling strategy for the iteration.
    pub strategy: StrategyKind,
    /// Per-CU yield probability (ignored by the PCT strategy).
    pub yield_prob: f64,
    /// Delay bound `D` (ignored by the PCT strategy).
    pub delay_bound: u32,
}

/// The reward one merged iteration produced, attributed to its arm.
/// Persisted in checkpoints so a resumed guided campaign rebuilds the
/// exact bandit statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GuidedReward {
    /// Index into the arm grid.
    pub arm: usize,
    /// Newly covered requirements this iteration contributed.
    pub delta: u64,
    /// The iteration's verdict was a bug.
    pub bug: bool,
}

/// Per-arm totals for the report and telemetry.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArmReport {
    /// Strategy spec (`native`, `random`, `pct:<d>:<k>`).
    pub strategy: String,
    /// The arm's yield probability.
    pub yield_prob: f64,
    /// The arm's delay bound.
    pub delay_bound: u32,
    /// Iterations that ran under this arm.
    pub pulls: u64,
    /// Newly covered requirements attributed to this arm.
    pub new_coverage: u64,
    /// Bug verdicts attributed to this arm.
    pub bugs: u64,
}

/// Guided-mode block of the campaign summary: how the budget was spent
/// across arms. Fully deterministic (no wall-clock), so it is pinned by
/// the guided report golden.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GuidedSummary {
    /// Exploration rate used.
    pub epsilon: f64,
    /// Feedback lag used.
    pub lag: usize,
    /// Per-arm totals, in arm-grid order.
    pub arms: Vec<ArmReport>,
}

/// The deterministic epsilon-greedy bandit of one guided campaign.
#[derive(Debug)]
pub struct Bandit {
    arms: Vec<Arm>,
    seed0: u64,
    /// Reward of iteration `i` at index `i` — dense, appended in strict
    /// iteration order by the merge loop.
    rewards: Vec<GuidedReward>,
}

impl Bandit {
    /// Build the arm grid around a campaign's base configuration:
    /// the configured baseline, two native perturbation variants, the
    /// uniform-random scheduler, and two PCT depths.
    pub fn new(seed0: u64, base_strategy: StrategyKind, base_delay_bound: u32) -> Self {
        let d = base_delay_bound;
        let arms = vec![
            Arm { strategy: base_strategy, yield_prob: 0.5, delay_bound: d },
            Arm { strategy: StrategyKind::Native, yield_prob: 0.9, delay_bound: d.max(2) },
            Arm { strategy: StrategyKind::Native, yield_prob: 0.25, delay_bound: d.max(4) },
            Arm { strategy: StrategyKind::Random, yield_prob: 0.5, delay_bound: d },
            Arm {
                strategy: StrategyKind::Pct { depth: 3, length: 256 },
                yield_prob: 0.0,
                delay_bound: 0,
            },
            Arm {
                strategy: StrategyKind::Pct { depth: 8, length: 1024 },
                yield_prob: 0.0,
                delay_bound: 0,
            },
        ];
        Bandit { arms, seed0, rewards: Vec::new() }
    }

    /// The arm grid.
    pub fn arms(&self) -> &[Arm] {
        &self.arms
    }

    /// The recorded rewards (for checkpointing).
    pub fn rewards(&self) -> &[GuidedReward] {
        &self.rewards
    }

    /// Adopt checkpointed rewards (resume).
    pub fn restore(&mut self, rewards: Vec<GuidedReward>) {
        self.rewards = rewards;
    }

    /// Choose the arm for iteration `i` — a pure function of
    /// `(seed0, i)` and the rewards of iterations `0 ..= i − LAG`,
    /// which the claim-window cap guarantees are already recorded.
    pub fn select(&self, i: usize) -> usize {
        let n = self.arms.len();
        let avail = (i + 1).saturating_sub(GUIDED_LAG);
        assert!(
            self.rewards.len() >= avail,
            "guided lag violated: iteration {i} selected with {} rewards (need {avail})",
            self.rewards.len()
        );
        // Stateless per-iteration randomness: selection-call order and
        // checkpoint boundaries cannot perturb it.
        let mut rng = SmallRng::seed_from_u64(
            self.seed0 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x4755_4944_4544_u64,
        );
        if rng.gen_bool(GUIDED_EPSILON) {
            return rng.gen_range(0..n);
        }
        let mut pulls = vec![0u64; n];
        let mut gains = vec![0u64; n];
        for r in &self.rewards[..avail] {
            pulls[r.arm] += 1;
            gains[r.arm] += r.delta;
        }
        // Cold start: pull unpulled arms in grid order before going
        // greedy, so every arm gets a baseline estimate.
        if let Some(j) = (0..n).find(|&j| pulls[j] == 0) {
            return j;
        }
        let mut best = 0usize;
        let mut best_mean = gains[0] as f64 / pulls[0] as f64;
        for (j, (&g, &p)) in gains.iter().zip(pulls.iter()).enumerate().skip(1) {
            let mean = g as f64 / p as f64;
            // Strict '>' breaks ties toward the lowest arm index.
            if mean > best_mean {
                best = j;
                best_mean = mean;
            }
        }
        best
    }

    /// Record iteration `i`'s reward; must arrive in strict iteration
    /// order (the merge loop's order).
    pub fn record(&mut self, i: usize, arm: usize, delta: u64, bug: bool) {
        assert_eq!(i, self.rewards.len(), "guided rewards must merge in iteration order");
        self.rewards.push(GuidedReward { arm, delta, bug });
    }

    /// Fold the recorded rewards into the per-arm report block.
    pub fn summary(&self) -> GuidedSummary {
        let mut arms: Vec<ArmReport> = self
            .arms
            .iter()
            .map(|a| ArmReport {
                strategy: a.strategy.to_string(),
                yield_prob: a.yield_prob,
                delay_bound: a.delay_bound,
                pulls: 0,
                new_coverage: 0,
                bugs: 0,
            })
            .collect();
        for r in &self.rewards {
            let a = &mut arms[r.arm];
            a.pulls += 1;
            a.new_coverage += r.delta;
            a.bugs += u64::from(r.bug);
        }
        GuidedSummary { epsilon: GUIDED_EPSILON, lag: GUIDED_LAG, arms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_pure_in_the_lagged_prefix() {
        let mut a = Bandit::new(11, StrategyKind::Native, 2);
        let mut b = Bandit::new(11, StrategyKind::Native, 2);
        // Same lagged prefix, different tails: selections must agree as
        // long as iterations stay within LAG of the shorter history.
        for i in 0..GUIDED_LAG {
            let arm = a.select(i);
            assert_eq!(arm, b.select(i));
            a.record(i, arm, (i % 3) as u64, false);
            b.record(i, arm, (i % 3) as u64, false);
        }
        // `a` merges further ahead than `b` — the extra rewards must not
        // influence selections whose lagged window precedes them.
        let i = GUIDED_LAG;
        let arm = a.select(i);
        a.record(i, arm, 7, false);
        assert_eq!(a.select(i + 1), {
            let arm_b = b.select(i);
            b.record(i, arm_b, 7, false);
            b.select(i + 1)
        });
    }

    #[test]
    fn cold_start_cycles_unpulled_arms_when_not_exploring() {
        let mut bandit = Bandit::new(3, StrategyKind::Native, 0);
        let n = bandit.arms().len();
        // Selections must stay a pure function of the index and stay in
        // range; rewards are recorded as the merge loop would, keeping
        // the lag invariant satisfied along the way.
        for i in 0..32 {
            let arm = bandit.select(i);
            assert_eq!(arm, bandit.select(i));
            assert!(arm < n);
            bandit.record(i, arm, 0, false);
        }
    }

    #[test]
    fn greedy_prefers_the_rewarding_arm() {
        let mut bandit = Bandit::new(5, StrategyKind::Native, 0);
        let n = bandit.arms().len();
        // Arm 2 pays out, everything else is dry.
        for i in 0..n {
            bandit.record(i, i, if i == 2 { 50 } else { 0 }, false);
        }
        let mut greedy_hits = 0;
        let mut total = 0;
        for i in n..n + 100 {
            let arm = bandit.select(i);
            total += 1;
            if arm == 2 {
                greedy_hits += 1;
            }
            // Keep the reward history dense (the merge loop always
            // does); arm 2 stays the only arm with positive mean.
            bandit.record(i, arm, if arm == 2 { 50 } else { 0 }, false);
        }
        assert!(
            greedy_hits * 100 / total >= 60,
            "greedy selections should favor the paying arm: {greedy_hits}/{total}"
        );
    }

    #[test]
    fn summary_attributes_rewards_per_arm() {
        let mut bandit = Bandit::new(1, StrategyKind::Native, 1);
        bandit.record(0, 0, 5, false);
        bandit.record(1, 2, 3, true);
        bandit.record(2, 0, 0, false);
        let s = bandit.summary();
        assert_eq!(s.arms[0].pulls, 2);
        assert_eq!(s.arms[0].new_coverage, 5);
        assert_eq!(s.arms[2].bugs, 1);
        assert_eq!(s.arms.iter().map(|a| a.pulls).sum::<u64>(), 3);
    }
}
