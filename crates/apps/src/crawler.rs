//! A bounded-depth crawl pipeline.
//!
//! Architecture:
//!
//! * a **frontier** channel carries pending pages (synthetic URLs);
//! * **fetchers** take a page, "download" it (virtual-time sleep), and
//!   emit its out-links;
//! * a **dedup/dispatch** stage owns the visited set (behind a mutex)
//!   and pushes unseen links back into the bounded frontier;
//! * crawling ends when the page budget is exhausted; a context cancels
//!   the fetchers.
//!
//! The **seeded bug** is the istio16224/cockroach10214 mixed pattern at
//! pipeline scale: with `push_under_lock`, the dispatcher pushes links
//! into the *bounded* frontier while still holding the visited-set
//! mutex. When the frontier backs up, fetchers need that mutex to make
//! progress (they record fetch stats under it) — a cycle through the
//! lock and the full channel wedges the crawl.

use goat_runtime::context::Context;
use goat_runtime::{go_named, time, Chan, Mutex, Select, WaitGroup};
use std::time::Duration;

/// Crawl workload configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Total pages to crawl before stopping.
    pub page_budget: usize,
    /// Number of fetcher goroutines.
    pub fetchers: usize,
    /// Frontier channel capacity.
    pub frontier_cap: usize,
    /// Out-links discovered per fetched page.
    pub links_per_page: usize,
    /// BUG SWITCH: push discovered links into the bounded frontier while
    /// holding the visited-set mutex.
    pub push_under_lock: bool,
}

impl Config {
    /// The correct crawler: links are pushed after the lock is released,
    /// dropping overflow when the frontier is saturated.
    pub fn correct() -> Config {
        Config {
            page_budget: 16,
            fetchers: 3,
            frontier_cap: 8,
            links_per_page: 3,
            push_under_lock: false,
        }
    }

    /// The seeded frontier deadlock. The frontier is just large enough
    /// that whether it backs up before the page budget is exhausted
    /// depends on the interleaving — the bug is schedule-dependent.
    pub fn frontier_bug() -> Config {
        Config {
            page_budget: 16,
            fetchers: 3,
            frontier_cap: 6,
            links_per_page: 3,
            push_under_lock: true,
        }
    }
}

/// Run the crawl to completion (or into its seeded deadlock).
pub fn run(cfg: Config) {
    let frontier: Chan<u64> = Chan::new(cfg.frontier_cap);
    let fetched: Chan<(u64, Vec<u64>)> = Chan::new(cfg.fetchers);
    let visited_mu = Mutex::new();
    let (ctx, cancel) = Context::with_cancel();
    let wg = WaitGroup::new();

    frontier.send(1); // the seed URL

    // Fetchers.
    for f in 0..cfg.fetchers {
        wg.add(1);
        let frontier = frontier.clone();
        let fetched = fetched.clone();
        let visited_mu = visited_mu.clone();
        let ctx = ctx.clone();
        let wg = wg.clone();
        let links = cfg.links_per_page as u64;
        go_named(&format!("fetcher{f}"), move || {
            loop {
                let page = Select::new().recv(&frontier, Some).recv(ctx.done(), |_| None).run();
                let Some(Some(url)) = page else { break };
                // download latency
                time::sleep(Duration::from_micros(200));
                // record fetch statistics under the shared mutex — the
                // edge the seeded bug's cycle runs through
                visited_mu.lock();
                visited_mu.unlock();
                let outlinks: Vec<u64> =
                    (1..=links).map(|k| url.wrapping_mul(31).wrapping_add(k)).collect();
                // deliver the result, but never past a cancellation: the
                // dispatcher stops draining once the budget is reached
                let delivered = Select::new()
                    .send(&fetched, (url, outlinks), || true)
                    .recv(ctx.done(), |_| false)
                    .run();
                if !delivered {
                    break;
                }
            }
            wg.done();
        });
    }

    // Dedup/dispatch: owns the visited set, feeds the frontier.
    {
        let frontier = frontier.clone();
        let fetched = fetched.clone();
        let visited_mu = visited_mu.clone();
        let budget = cfg.page_budget;
        let push_under_lock = cfg.push_under_lock;
        let cancel2 = cancel.clone();
        go_named("dispatcher", move || {
            let mut visited = std::collections::BTreeSet::new();
            visited.insert(1u64);
            let mut crawled = 0usize;
            for (_url, outlinks) in fetched.range() {
                crawled += 1;
                if crawled >= budget {
                    cancel2.cancel(); // stop the fetchers
                    return;
                }
                if push_under_lock {
                    // BUG: the bounded frontier is fed while the visited
                    // mutex is held; when it fills, fetchers deadlock on
                    // the stats lock and nobody drains the frontier.
                    visited_mu.lock();
                    for link in outlinks {
                        if visited.insert(link) {
                            frontier.send(link);
                        }
                    }
                    visited_mu.unlock();
                } else {
                    visited_mu.lock();
                    let fresh: Vec<u64> =
                        outlinks.into_iter().filter(|l| visited.insert(*l)).collect();
                    visited_mu.unlock();
                    for link in fresh {
                        // correct: never block the pipeline on overflow
                        if frontier.try_send(link).is_err() {
                            break;
                        }
                    }
                }
            }
        });
    }

    wg.wait(); // fetchers observed the cancellation
}

#[cfg(test)]
mod tests {
    use super::*;
    use goat_core::{analyze_run, GoatVerdict};
    use goat_runtime::{Config as RtConfig, Runtime, SchedPolicy};

    #[test]
    fn correct_crawler_terminates_cleanly() {
        for seed in 0..10u64 {
            for policy in [SchedPolicy::Native, SchedPolicy::UniformRandom] {
                let r = Runtime::run(RtConfig::new(seed).with_policy(policy.clone()), || {
                    run(Config::correct())
                });
                assert!(r.clean(), "seed {seed} {policy:?}: {:?} {:?}", r.outcome, r.alive_at_end);
            }
        }
    }

    #[test]
    fn correct_crawler_survives_yield_injection() {
        for seed in 0..8u64 {
            let r =
                Runtime::run(RtConfig::new(seed).with_delay_bound(4), || run(Config::correct()));
            assert!(r.clean(), "seed {seed}: {:?}", r.outcome);
        }
    }

    #[test]
    fn seeded_bug_wedges_the_pipeline() {
        let mut detected = 0;
        for seed in 0..12u64 {
            let r = Runtime::run(RtConfig::new(seed), || run(Config::frontier_bug()));
            if analyze_run(&r).is_bug() {
                detected += 1;
            }
        }
        assert!(detected >= 6, "frontier bug manifested only {detected}/12 times");
    }

    #[test]
    fn bug_symptom_is_a_blocking_cycle_not_a_crash() {
        for seed in 0..12u64 {
            let r = Runtime::run(RtConfig::new(seed), || run(Config::frontier_bug()));
            let v = analyze_run(&r);
            assert!(
                !matches!(v, GoatVerdict::Crash { .. }),
                "seed {seed}: crawler should deadlock, not crash: {v}"
            );
        }
    }
}
