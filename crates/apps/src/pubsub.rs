//! A topic-based publish/subscribe broker.
//!
//! Architecture (all per run):
//!
//! * a **broker** goroutine owns the subscription table (behind an
//!   RWMutex) and fans every published message out to each subscriber's
//!   bounded mailbox;
//! * **publishers** push messages for a set of topics through a shared
//!   submission queue;
//! * **subscribers** drain their mailboxes and acknowledge on a results
//!   channel; they unsubscribe after a quota;
//! * shutdown: publishers finish → submission queue closes → broker
//!   closes every mailbox → subscribers drain and exit.
//!
//! The **seeded bug** reproduces the moby33293 pattern at scale: with
//! `deliver_blocking`, the broker performs *blocking* sends into
//! subscriber mailboxes while holding the subscription read lock, and a
//! quota-exhausted subscriber stops draining **without unsubscribing**
//! (the forgotten-unsubscribe of the original issue). Its mailbox fills,
//! the broker wedges on it while holding the lock, and every other
//! subscriber's unsubscribe path piles up behind the reader.

use goat_runtime::{go_named, Chan, RwLock, Select, WaitGroup};

/// Broker workload configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of publisher goroutines.
    pub publishers: usize,
    /// Messages each publisher submits.
    pub messages_per_publisher: usize,
    /// Number of subscriber goroutines.
    pub subscribers: usize,
    /// Mailbox capacity per subscriber.
    pub mailbox_cap: usize,
    /// Messages a subscriber consumes before unsubscribing (0 = all).
    pub quota: usize,
    /// BUG SWITCH: deliver with a blocking send while holding the
    /// subscription lock instead of dropping on a full mailbox.
    pub deliver_blocking: bool,
}

impl Config {
    /// The correct broker: bounded mailboxes with drop-on-full delivery.
    pub fn correct() -> Config {
        Config {
            publishers: 2,
            messages_per_publisher: 12,
            subscribers: 3,
            mailbox_cap: 4,
            quota: 0,
            deliver_blocking: false,
        }
    }

    /// The seeded bug: quota-limited subscribers plus blocking delivery
    /// under the subscription lock.
    pub fn slow_subscriber_bug() -> Config {
        Config {
            publishers: 2,
            messages_per_publisher: 12,
            subscribers: 3,
            mailbox_cap: 2,
            quota: 3,
            deliver_blocking: true,
        }
    }
}

/// Run the broker to completion (or into its seeded deadlock).
pub fn run(cfg: Config) {
    let submissions: Chan<u64> = Chan::new(8);
    let acks: Chan<u64> =
        Chan::new(cfg.publishers * cfg.messages_per_publisher * cfg.subscribers + 8);
    let sub_lock = RwLock::new(); // protects the subscription table
    let mailboxes: Vec<Chan<u64>> =
        (0..cfg.subscribers).map(|_| Chan::new(cfg.mailbox_cap)).collect();
    let unsubscribed: Chan<usize> = Chan::new(cfg.subscribers);
    let wg = WaitGroup::new();

    // Publishers.
    for p in 0..cfg.publishers {
        wg.add(1);
        let submissions = submissions.clone();
        let wg = wg.clone();
        let n = cfg.messages_per_publisher;
        go_named(&format!("publisher{p}"), move || {
            for i in 0..n {
                submissions.send((p as u64) << 32 | i as u64);
            }
            wg.done();
        });
    }

    // Broker: fan out each submission to every live mailbox.
    {
        let submissions = submissions.clone();
        let mailboxes = mailboxes.clone();
        let sub_lock = sub_lock.clone();
        let unsubscribed = unsubscribed.clone();
        let blocking = cfg.deliver_blocking;
        go_named("broker", move || {
            let mut dead = vec![false; mailboxes.len()];
            for msg in submissions.range() {
                // collect unsubscriptions (non-blocking)
                while let Some(Some(idx)) = unsubscribed.try_recv() {
                    dead[idx] = true;
                }
                sub_lock.rlock(); // hold the table while delivering
                for (idx, mb) in mailboxes.iter().enumerate() {
                    if dead[idx] {
                        continue;
                    }
                    if blocking {
                        // BUG: blocking send while holding the
                        // subscription lock; a quota-exhausted
                        // subscriber never drains this mailbox again.
                        mb.send(msg);
                    } else {
                        // correct: drop on full (bounded fan-out)
                        let _ = mb.try_send(msg);
                    }
                }
                sub_lock.runlock();
            }
            for (idx, mb) in mailboxes.iter().enumerate() {
                if !dead[idx] {
                    mb.close();
                }
            }
        });
    }

    // Subscribers.
    for (idx, mb) in mailboxes.iter().enumerate() {
        let mb = mb.clone();
        let acks = acks.clone();
        let sub_lock = sub_lock.clone();
        let unsubscribed = unsubscribed.clone();
        let quota = cfg.quota;
        go_named(&format!("subscriber{idx}"), move || {
            let mut consumed = 0usize;
            for msg in mb.range() {
                acks.send(msg);
                consumed += 1;
                if quota > 0 && consumed >= quota {
                    if idx == 0 {
                        // BUG (with blocking delivery): this subscriber
                        // stops draining but never tells the broker —
                        // the forgotten unsubscribe of moby33293.
                        return;
                    }
                    // proper unsubscribe: take the subscription write
                    // lock (piles up behind the wedged broker's read
                    // lock in the buggy configuration)
                    sub_lock.lock();
                    sub_lock.unlock();
                    unsubscribed.send(idx);
                    return;
                }
            }
        });
    }

    wg.wait(); // all publishers done
    submissions.close();
    // drain acknowledgements opportunistically until the broker closed
    // the mailboxes and subscribers exited
    let mut spins = 0;
    loop {
        let progressed = Select::new().recv(&acks, |v| v.is_some()).default(|| false).run();
        if !progressed {
            spins += 1;
            if spins > 4 {
                break;
            }
            goat_runtime::gosched();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goat_core::analyze_run;
    use goat_runtime::{Config as RtConfig, Runtime, SchedPolicy};

    #[test]
    fn correct_broker_is_clean_across_schedules() {
        for seed in 0..10u64 {
            for policy in [SchedPolicy::Native, SchedPolicy::UniformRandom] {
                let cfg = RtConfig::new(seed).with_policy(policy.clone());
                let r = Runtime::run(cfg, || run(Config::correct()));
                assert!(r.clean(), "seed {seed} {policy:?}: {:?} {:?}", r.outcome, r.alive_at_end);
            }
        }
    }

    #[test]
    fn correct_broker_survives_yield_injection() {
        for seed in 0..8u64 {
            let cfg = RtConfig::new(seed).with_delay_bound(4);
            let r = Runtime::run(cfg, || run(Config::correct()));
            assert!(r.clean(), "seed {seed}: {:?}", r.outcome);
        }
    }

    #[test]
    fn seeded_bug_wedges_the_broker() {
        // The blocking-delivery bug manifests on essentially every
        // schedule. Back-pressure propagates all the way into main's
        // wg.wait, so the symptom is a *global* deadlock (like the
        // paper's GDL rows), occasionally a leak when main squeaks out.
        let mut detected = 0;
        for seed in 0..10u64 {
            let r = Runtime::run(RtConfig::new(seed), || run(Config::slow_subscriber_bug()));
            if analyze_run(&r).is_bug() {
                detected += 1;
            }
        }
        assert!(detected >= 8, "bug manifested only {detected}/10 times");
    }

    #[test]
    fn wedged_broker_is_blocked_on_a_mailbox_send() {
        let mut seen_send_block = false;
        for seed in 0..10u64 {
            let r = Runtime::run(RtConfig::new(seed), || run(Config::slow_subscriber_bug()));
            if !analyze_run(&r).is_bug() {
                continue;
            }
            let ect = r.ect.expect("traced");
            let tree = goat_trace::GTree::from_ect(&ect);
            let broker_evt =
                tree.nodes().find(|n| n.name == "broker").map(|n| format!("{:?}", n.last_event));
            if broker_evt.is_some_and(|evt| evt.contains("Send")) {
                seen_send_block = true;
            }
        }
        assert!(seen_send_block, "the broker itself should wedge on a mailbox send");
    }
}
