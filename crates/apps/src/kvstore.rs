//! A primary/replica key-value store.
//!
//! Architecture:
//!
//! * the **primary** serves a stream of client commands (put/get/snap);
//!   puts are appended to a write-ahead channel consumed by replicas;
//! * **replicas** apply entries and acknowledge each one;
//! * an **ack collector** matches acknowledgements to outstanding puts
//!   so the client sees replicated-commit semantics;
//! * **readers** hit the store under a read lock; a periodic snapshot
//!   request takes the write lock.
//!
//! The **seeded bug** is the etcd-style mixed cycle (etcd7443/13135
//! pattern at application scale): with `ack_under_lock`, the primary
//! waits for the replica's acknowledgement *while still holding the
//! store mutex*; the replica, however, takes the store mutex before
//! applying. One unlucky ordering and the whole store wedges.

use goat_runtime::{go_named, Chan, Mutex, WaitGroup};

/// Store workload configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of put commands.
    pub puts: usize,
    /// Number of replicas.
    pub replicas: usize,
    /// Write-ahead channel capacity.
    pub wal_cap: usize,
    /// BUG SWITCH: the primary holds the store mutex across the
    /// replication acknowledgement rendezvous.
    pub ack_under_lock: bool,
}

impl Config {
    /// The correct store: the lock is released before awaiting acks.
    pub fn correct() -> Config {
        Config { puts: 10, replicas: 2, wal_cap: 4, ack_under_lock: false }
    }

    /// The seeded replication deadlock.
    pub fn replication_bug() -> Config {
        Config { puts: 10, replicas: 2, wal_cap: 1, ack_under_lock: true }
    }
}

/// Run the store workload to completion (or into its seeded deadlock).
pub fn run(cfg: Config) {
    let store_mu = Mutex::new();
    let wal: Chan<u64> = Chan::new(cfg.wal_cap);
    let acks: Chan<u64> = Chan::new(0); // rendezvous acknowledgement
    let done = WaitGroup::new();

    // Replicas: apply WAL entries under the store mutex, then ack.
    for rid in 0..cfg.replicas {
        done.add(1);
        let wal = wal.clone();
        let acks = acks.clone();
        let store_mu = store_mu.clone();
        let done = done.clone();
        go_named(&format!("replica{rid}"), move || {
            for entry in wal.range() {
                store_mu.lock(); // apply to the local copy
                store_mu.unlock();
                acks.send(entry);
            }
            done.done();
        });
    }

    // Primary: serve puts, replicate each, await one ack per entry.
    {
        let wal = wal.clone();
        let acks = acks.clone();
        let store_mu = store_mu.clone();
        let done = done.clone();
        let cfg2 = cfg.clone();
        done.add(1);
        go_named("primary", move || {
            for i in 0..cfg2.puts as u64 {
                store_mu.lock(); // apply locally
                if cfg2.ack_under_lock {
                    // BUG: replicate and await the ack while holding the
                    // store mutex the replica needs to apply the entry.
                    wal.send(i);
                    let _ = acks.recv();
                    store_mu.unlock();
                } else {
                    store_mu.unlock();
                    wal.send(i);
                    let _ = acks.recv();
                }
            }
            wal.close();
            done.done();
        });
    }

    // A reader that interleaves with replication.
    {
        let store_mu = store_mu.clone();
        let done = done.clone();
        let reads = cfg.puts / 2;
        done.add(1);
        go_named("reader", move || {
            for _ in 0..reads {
                store_mu.lock();
                store_mu.unlock();
                goat_runtime::gosched();
            }
            done.done();
        });
    }

    done.wait();
    // defensive drain (no surplus expected: the WAL range competes, so
    // exactly one replica acknowledges each entry)
    while acks.try_recv().is_some() {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use goat_core::{analyze_run, GoatVerdict};
    use goat_runtime::{Config as RtConfig, Runtime, SchedPolicy};

    #[test]
    fn correct_store_replicates_cleanly() {
        for seed in 0..10u64 {
            for policy in [SchedPolicy::Native, SchedPolicy::UniformRandom] {
                let r = Runtime::run(RtConfig::new(seed).with_policy(policy.clone()), || {
                    run(Config::correct())
                });
                assert!(r.clean(), "seed {seed} {policy:?}: {:?} {:?}", r.outcome, r.alive_at_end);
            }
        }
    }

    #[test]
    fn correct_store_survives_yield_injection() {
        for seed in 0..8u64 {
            let r =
                Runtime::run(RtConfig::new(seed).with_delay_bound(4), || run(Config::correct()));
            assert!(r.clean(), "seed {seed}: {:?}", r.outcome);
        }
    }

    #[test]
    fn seeded_bug_deadlocks_the_pipeline() {
        let mut detected = 0;
        for seed in 0..12u64 {
            let r = Runtime::run(RtConfig::new(seed), || run(Config::replication_bug()));
            let v = analyze_run(&r);
            if v.is_bug() {
                detected += 1;
                assert!(
                    matches!(v, GoatVerdict::GlobalDeadlock | GoatVerdict::PartialDeadlock { .. }),
                    "unexpected symptom {v}"
                );
            }
        }
        assert!(detected >= 6, "replication bug manifested only {detected}/12 times");
    }

    #[test]
    fn goat_campaign_exposes_the_bug_and_clears_the_fix() {
        use goat_core::{FnProgram, Goat, GoatConfig};
        use std::sync::Arc;
        let buggy = Arc::new(FnProgram::new("kv-bug", || run(Config::replication_bug())));
        let result = Goat::new(GoatConfig::default().with_iterations(100)).test(buggy);
        assert!(result.detected(), "campaign must expose the replication bug");

        let fixed = Arc::new(FnProgram::new("kv-fixed", || run(Config::correct())));
        let result =
            Goat::new(GoatConfig::default().with_iterations(30).with_delay_bound(3)).test(fixed);
        assert!(!result.detected(), "fixed store flagged: {:?}", result.bug);
    }
}
