//! # goat-apps — GoReal-style application corpus
//!
//! GoBench pairs its bug kernels (GoKer) with *real-program* subjects
//! (GoReal). This crate is the reproduction's analogue: three realistic
//! concurrent services built on the GoAT runtime, each with
//!
//! * a **correct** configuration, exercised across schedules, policies
//!   and delay bounds in tests (no false positives allowed), and
//! * one or more **seeded bug** variants reproducing a documented
//!   real-world bug pattern at application scale, which GoAT must expose.
//!
//! The services use the full primitive surface the paper's taxonomy
//! covers — channels (rendezvous and buffered), select with and without
//! default, mutexes, RWMutexes, wait groups, contexts and timers — so
//! they double as high-coverage integration subjects.
//!
//! | module | service | seeded bug pattern |
//! |---|---|---|
//! | [`pubsub`] | topic broker with fan-out | slow-subscriber back-pressure leak (moby33293 at scale) |
//! | [`kvstore`] | replicated key-value store | replication ack under store lock (etcd-style mixed cycle) |
//! | [`crawler`] | bounded-depth crawl pipeline | frontier push while holding the visited-set lock |

#![warn(missing_docs)]

pub mod crawler;
pub mod kvstore;
pub mod pubsub;

use goat_core::{FnProgram, Program};
use std::sync::Arc;

/// All application programs (correct and buggy), for sweep harnesses.
pub fn all_programs() -> Vec<Arc<dyn Program>> {
    vec![
        program("pubsub_correct", || pubsub::run(pubsub::Config::correct())),
        program("pubsub_slow_subscriber_leak", || {
            pubsub::run(pubsub::Config::slow_subscriber_bug())
        }),
        program("kvstore_correct", || kvstore::run(kvstore::Config::correct())),
        program(
            "kvstore_replication_deadlock",
            || kvstore::run(kvstore::Config::replication_bug()),
        ),
        program("crawler_correct", || crawler::run(crawler::Config::correct())),
        program("crawler_frontier_deadlock", || crawler::run(crawler::Config::frontier_bug())),
    ]
}

fn program(name: &str, f: impl Fn() + Send + Sync + 'static) -> Arc<dyn Program> {
    Arc::new(FnProgram::new(name, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_correct_and_buggy_pairs() {
        let names: Vec<String> = all_programs().iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names.len(), 6);
        assert_eq!(names.iter().filter(|n| n.contains("correct")).count(), 3);
    }
}
