//! Virtual time: `sleep` and `after`.
//!
//! The runtime's clock is logical: it advances a fixed increment per
//! scheduler step and fast-forwards to the next timer deadline whenever
//! every goroutine is blocked. Timeout-driven code (watchdogs, context
//! deadlines, `select` with `after`) therefore behaves deterministically
//! and runs in microseconds of wall time regardless of the durations
//! involved.

use crate::chan::Chan;
use crate::rt::{block_current, current};
use goat_trace::{BlockReason, EventKind};
use std::sync::Arc;
use std::time::Duration;

/// Block the current goroutine for `d` of virtual time.
///
/// ```
/// use goat_runtime::{Runtime, Config, time};
/// use std::time::Duration;
/// let r = Runtime::run(Config::new(0), || {
///     time::sleep(Duration::from_secs(3600)); // virtual: finishes instantly
/// });
/// assert!(r.clean());
/// assert!(r.vclock.as_nanos() >= 3_600_000_000_000);
/// ```
pub fn sleep(d: Duration) {
    let ctx = current();
    {
        let mut s = ctx.rt.state.lock();
        s.emit(ctx.gid, EventKind::GoSleep, None);
        s.add_timer_wake(d.as_nanos() as u64, ctx.gid);
    }
    block_current(&ctx, BlockReason::Sleep, None, None);
}

/// A channel that receives one `()` after `d` of virtual time (Go's
/// `time.After`). Useful as a select timeout case.
///
/// ```
/// use goat_runtime::{Runtime, Config, Select, Chan, time};
/// use std::time::Duration;
/// let r = Runtime::run(Config::new(0), || {
///     let never: Chan<u32> = Chan::new(0);
///     let timeout = time::after(Duration::from_millis(50));
///     let hit_timeout = Select::new()
///         .recv(&never, |_| false)
///         .recv(&timeout, |_| true)
///         .run();
///     assert!(hit_timeout);
/// });
/// assert!(r.clean());
/// ```
pub fn after(d: Duration) -> Chan<()> {
    let ch: Chan<()> = Chan::new(1);
    let ctx = current();
    let mut s = ctx.rt.state.lock();
    let core = Arc::clone(ch.core());
    s.add_timer_fire(d.as_nanos() as u64, core);
    drop(s);
    ch
}

/// A repeating ticker (Go's `time.Ticker`): delivers `()` on its channel
/// every `period` of virtual time until stopped. Ticks are dropped when
/// the previous one has not been consumed (Go semantics: capacity-1
/// buffer).
///
/// Like in Go, a live ticker counts as pending work: a program that
/// blocks forever while a ticker runs is reported as a hang rather than
/// a global deadlock.
pub struct Ticker {
    ch: Chan<()>,
    stopped: Arc<std::sync::atomic::AtomicBool>,
}

impl std::fmt::Debug for Ticker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticker")
            .field("stopped", &self.stopped.load(std::sync::atomic::Ordering::SeqCst))
            .finish()
    }
}

struct TickTarget {
    ch: std::sync::Weak<crate::chan::ChanCore<()>>,
    period_ns: u64,
    stopped: Arc<std::sync::atomic::AtomicBool>,
}

impl crate::rt::TimerTarget for TickTarget {
    fn fire(&self, s: &mut crate::rt::Sched) {
        if self.stopped.load(std::sync::atomic::Ordering::SeqCst) {
            return; // stopped: do not re-arm
        }
        let Some(core) = self.ch.upgrade() else { return };
        core.fire(s); // deliver one tick (dropped if unconsumed)
        s.add_timer_fire(
            self.period_ns,
            Arc::new(TickTarget {
                ch: self.ch.clone(),
                period_ns: self.period_ns,
                stopped: Arc::clone(&self.stopped),
            }),
        );
    }
}

impl Ticker {
    /// Start a ticker with the given period.
    ///
    /// # Panics
    /// Panics on a zero period (like Go), or outside a goroutine.
    pub fn new(period: Duration) -> Ticker {
        assert!(!period.is_zero(), "non-positive interval for Ticker");
        let ch: Chan<()> = Chan::new(1);
        let stopped = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ctx = current();
        let mut s = ctx.rt.state.lock();
        s.add_timer_fire(
            period.as_nanos() as u64,
            Arc::new(TickTarget {
                ch: Arc::downgrade(ch.core()),
                period_ns: period.as_nanos() as u64,
                stopped: Arc::clone(&stopped),
            }),
        );
        drop(s);
        Ticker { ch, stopped }
    }

    /// The tick channel (receive from it, or use it as a select case).
    pub fn chan(&self) -> &Chan<()> {
        &self.ch
    }

    /// Stop the ticker; no further ticks are delivered or armed.
    /// Idempotent, and (like Go) does not close the channel.
    pub fn stop(&self) {
        self.stopped.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::rt::{go, Runtime};
    use crate::select::Select;

    fn cfg(seed: u64) -> Config {
        Config::new(seed).with_native_preempt_prob(0.0)
    }

    #[test]
    fn sleep_orders_goroutines_by_deadline() {
        let r = Runtime::run(cfg(0), || {
            let log: Chan<u32> = Chan::new(4);
            let l1 = log.clone();
            go(move || {
                sleep(Duration::from_millis(20));
                l1.send(2);
            });
            let l2 = log.clone();
            go(move || {
                sleep(Duration::from_millis(10));
                l2.send(1);
            });
            sleep(Duration::from_millis(30));
            assert_eq!(log.recv(), Some(1));
            assert_eq!(log.recv(), Some(2));
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn after_fires_once() {
        let r = Runtime::run(cfg(0), || {
            let t = after(Duration::from_millis(5));
            assert_eq!(t.recv(), Some(()));
            // no second delivery; try_recv sees nothing
            assert_eq!(t.try_recv(), None);
        });
        assert!(r.clean());
    }

    #[test]
    fn timeout_select_prefers_ready_data() {
        let r = Runtime::run(cfg(0), || {
            let data: Chan<u32> = Chan::new(1);
            data.send(5);
            let timeout = after(Duration::from_secs(10));
            let got = Select::new().recv(&data, |v| v).recv(&timeout, |_| None).run();
            assert_eq!(got, Some(5));
        });
        assert!(r.clean());
    }

    #[test]
    fn blocked_select_unblocked_by_timer() {
        let r = Runtime::run(cfg(0), || {
            let never: Chan<u32> = Chan::new(0);
            let timeout = after(Duration::from_millis(1));
            let hit = Select::new().recv(&never, |_| false).recv(&timeout, |_| true).run();
            assert!(hit);
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn ticker_delivers_repeatedly_until_stopped() {
        let r = Runtime::run(cfg(0), || {
            let t = Ticker::new(Duration::from_millis(2));
            for _ in 0..5 {
                assert_eq!(t.chan().recv(), Some(()));
            }
            t.stop();
        });
        assert!(r.clean(), "{:?}", r.outcome);
        assert!(r.vclock.as_nanos() >= 10_000_000, "five 2ms periods elapsed");
    }

    #[test]
    fn ticker_drops_unconsumed_ticks() {
        let r = Runtime::run(cfg(0), || {
            let t = Ticker::new(Duration::from_millis(1));
            sleep(Duration::from_millis(20)); // many periods pass unconsumed
            assert_eq!(t.chan().recv(), Some(())); // only one buffered
            assert_eq!(t.chan().try_recv(), None, "backlog was dropped");
            t.stop();
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn blocked_program_with_live_ticker_is_a_hang_not_gdl() {
        let r = Runtime::run(cfg(0), || {
            let _t = Ticker::new(Duration::from_millis(1));
            let never: Chan<u8> = Chan::new(0);
            never.recv(); // main blocks forever; ticker keeps the clock alive
        });
        assert_eq!(r.outcome, crate::config::RunOutcome::StepLimit, "{:?}", r.outcome);
    }

    #[test]
    fn ticker_as_select_timeout_source() {
        let r = Runtime::run(cfg(0), || {
            let t = Ticker::new(Duration::from_millis(1));
            let data: Chan<u32> = Chan::new(0);
            let mut ticks = 0;
            while ticks < 3 {
                let tick = Select::new().recv(&data, |_| false).recv(t.chan(), |_| true).run();
                if tick {
                    ticks += 1;
                }
            }
            t.stop();
        });
        assert!(r.clean(), "{:?}", r.outcome);
    }

    #[test]
    fn virtual_clock_advances_past_deadlines() {
        let r = Runtime::run(cfg(0), || {
            sleep(Duration::from_millis(500));
        });
        assert!(r.vclock.as_nanos() >= 500_000_000);
        // and wall-clock-wise this test finished instantly
    }
}
